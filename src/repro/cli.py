"""Command-line interface: evaluate XPath queries and classify them.

Usage (also available as ``python -m repro``)::

    python -m repro query "//book[child::title]" catalogue.xml --stats
    python -m repro query "//book[child::title]" catalogue.xml --profile
    python -m repro query "//book[child::title]" catalogue.xml --workers 4
    python -m repro eval "//book[child::title]" catalogue.xml --engine auto
    python -m repro classify "//a[not(b)]"
    python -m repro plan "//a[not(b)]" --stats
    python -m repro figure1
    python -m repro store build catalogue.xml --store ./corpus
    python -m repro store ls --store ./corpus --workers 4
    python -m repro store query "//book" catalogue --store ./corpus --stats
    python -m repro serve --store ./corpus --workers 4 --stats
    python -m repro serve --store ./corpus --metrics

``query`` evaluates through the session façade
(:class:`repro.engine.XPathEngine`) and prints the full per-query
metadata (engine chosen, fragment, plan-cache hit, wall time), plus —
with ``--stats`` — the engine's counters (plan-cache hit rate, registry
occupancy, per-engine dispatch counts) and — with ``--profile`` — the
per-stage span tree of :mod:`repro.telemetry` (``parse``/``plan``/
``eval``, and the cross-process pool spans under ``--workers``);
``eval`` is the legacy
per-engine form; ``classify`` prints the Figure 1 fragment and combined
complexity of a query together with the reasons it falls outside smaller
fragments; ``plan`` shows how the query planner compiles a query
(fragment, selected evaluator, fallback chain), and with ``--stats``
also the process-default engine's plan-cache counters and dispatch
counts; ``figure1`` prints the fragment lattice.

``store`` manages a :class:`repro.store.CorpusStore` of persistent index
snapshots: ``store build`` snapshots XML files once (parse + index paid
here, never again), ``store ls`` lists the manifest (sorted by key, with
snapshot byte sizes and totals; ``--workers N`` previews the shard
layout), and ``store query`` serves a query over a snapshot-hydrated
document — zero rebuild — with ``--stats`` showing the engine's store
hit/miss/load counters.

``serve`` is the cross-process serving tier (``docs/serving.md``): it
shards the store's documents over ``--workers`` worker processes and
answers ``<key> <query>`` request lines from stdin over the id-native
wire format; ``query``/``store query`` accept ``--workers N`` to run a
single query through the same tier.  With ``--listen HOST:PORT`` the
same pool is served over TCP instead (the network front door of
``repro.serving.server``: binary ``RPW1`` protocol + JSON shim,
admission control, graceful drain on SIGINT/SIGTERM), and ``client``
connects to such a server and answers the same ``<key> <query>`` stdin
lines remotely::

    python -m repro serve --store ./corpus --listen 127.0.0.1:8040
    echo 'catalogue //book' | python -m repro client --connect 127.0.0.1:8040
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.complexity import render_figure1
from repro.engine import default_engine
from repro.errors import ReproError
from repro.evaluation import ENGINES, evaluate
from repro.fragments import classify
from repro.planner import get_plan
from repro.xmlmodel import parse_xml
from repro.xmlmodel.nodes import XMLNode


def _positive_int(text: str) -> int:
    """argparse type for flags that must be a positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _describe_node(node: XMLNode) -> str:
    name = node.name()
    if name:
        return f"{node.node_type.value}({name})@{node.order}"
    return f"{node.node_type.value}@{node.order}"


def _print_node_set(nodes: list, limit: int) -> None:
    print(f"result   : node-set of {len(nodes)} node(s)")
    limit = limit if limit > 0 else len(nodes)
    for node in nodes[:limit]:
        print(f"  - {_describe_node(node)}")
    if len(nodes) > limit:
        print(f"  … and {len(nodes) - limit} more")


def _print_query_result(args: argparse.Namespace, result, engine) -> None:
    """The shared `query` / `store query` result block (after the document line)."""
    if args.engine == "auto":
        print(f"engine   : auto ({result.engine} selected)")
    else:
        print(f"engine   : {result.engine}")
    print(f"query    : {result.query}")
    print(f"fragment : {result.classification.most_specific}")
    print(f"plan     : {'cache hit' if result.cache_hit else 'compiled'}, "
          f"{result.wall_time * 1e3:.2f} ms")
    if result.is_node_set:
        _print_node_set(result.nodes, args.limit)
    else:
        print(f"result   : {result.value!r}")
    if args.stats:
        print("engine stats:")
        for line in engine.stats().describe().splitlines():
            print(f"  {line}")
    _print_profile(args, result)


def _print_profile(args: argparse.Namespace, result) -> None:
    """The ``--profile`` span-tree block shared by the query commands."""
    if not getattr(args, "profile", False) or result.trace is None:
        return
    print("profile  :")
    for line in result.trace.describe().splitlines():
        print(f"  {line}")


def _print_sharded_result(args: argparse.Namespace, result, pool, key: str) -> None:
    """The result block of a query answered by the worker pool."""
    print(
        f"engine   : sharded ({pool.workers} worker process(es), "
        f"{pool.start_method})"
    )
    print(f"query    : {result.query}")
    print(f"shard    : worker {pool.shard_for(key)} "
          f"(snapshot {pool.store.stat(key).hash[:12]}…)")
    if result.is_node_set:
        _print_node_set(result.nodes, args.limit)
    else:
        print(f"result   : {result.value!r}")
    if args.stats:
        print("serving stats:")
        for line in pool.stats().describe().splitlines():
            print(f"  {line}")
    _print_profile(args, result)


def _command_query(args: argparse.Namespace) -> int:
    if args.workers:
        return _command_query_sharded(args)
    engine = default_engine()
    with open(args.document, "r", encoding="utf-8") as handle:
        doc = engine.add(handle.read())
    result = engine.evaluate(
        args.query, doc, engine=args.engine, trace=args.profile
    )
    print(f"document : {args.document} ({doc.document.size} nodes)")
    _print_query_result(args, result, engine)
    return 0


def _command_query_sharded(args: argparse.Namespace) -> int:
    """``query --workers N``: serve one file through an ephemeral store + pool.

    The worker pool's only document transport is a corpus store, so the
    file is snapshotted into a temporary store first (that cost is the
    one ``store build`` pays once in a real deployment).
    """
    import os
    import tempfile

    from repro.serving import ShardedPool
    from repro.store import CorpusStore

    if args.engine != "auto":
        print(
            "error: --workers uses planner dispatch inside each worker; "
            "drop --engine or --workers",
            file=sys.stderr,
        )
        return 2
    with open(args.document, "r", encoding="utf-8") as handle:
        text = handle.read()
    key = os.path.splitext(os.path.basename(args.document))[0]
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as root:
        store = CorpusStore(root)
        entry = store.put(text, key=key)
        with ShardedPool(store, workers=args.workers) as pool:
            result = pool.evaluate(args.query, key, trace=args.profile)
            print(
                f"document : {args.document} ({entry.nodes} nodes, "
                "snapshot-hydrated in workers)"
            )
            _print_sharded_result(args, result, pool, key)
    return 0


def _command_eval(args: argparse.Namespace) -> int:
    with open(args.document, "r", encoding="utf-8") as handle:
        document = parse_xml(handle.read())
    result = evaluate(args.query, document, engine=args.engine)
    engine = args.engine
    if engine == "auto":
        engine = f"auto ({get_plan(args.query).engine} selected)"
    print(f"document : {args.document} ({document.size} nodes)")
    print(f"engine   : {engine}")
    print(f"query    : {args.query}")
    if isinstance(result, list):
        _print_node_set(result, args.limit)
    else:
        print(f"result   : {result!r}")
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    classification = classify(args.query)
    print(f"query               : {classification.query}")
    print(f"most specific       : {classification.most_specific}")
    print(f"combined complexity : {classification.combined_complexity}")
    print(f"member of           : {', '.join(classification.fragments)}")
    if args.verbose and classification.violations:
        print("excluded from:")
        for fragment, reasons in classification.violations.items():
            print(f"  {fragment}:")
            for reason in reasons:
                print(f"    - {reason}")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    plan = get_plan(args.query)
    print(plan.explain())
    if args.stats:
        print(default_engine().stats().describe())
    return 0


def _command_figure1(args: argparse.Namespace) -> int:
    print(render_figure1())
    return 0


def _command_store_build(args: argparse.Namespace) -> int:
    from repro.store import CorpusStore

    if args.key is not None and len(args.documents) > 1:
        print("error: --key is only valid with a single document", file=sys.stderr)
        return 2
    import os

    keys = [
        args.key
        if args.key is not None
        else os.path.splitext(os.path.basename(path))[0]
        for path in args.documents
    ]
    duplicates = sorted({key for key in keys if keys.count(key) > 1})
    if duplicates:
        print(
            "error: colliding document basenames would overwrite manifest "
            f"key(s) {', '.join(duplicates)}; pass distinct files or use "
            "--key per invocation",
            file=sys.stderr,
        )
        return 2
    store = CorpusStore(args.store)
    for path, key in zip(args.documents, keys):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        entry = store.put(text, key=key)
        print(
            f"stored   : {path} -> {entry.key} "
            f"({entry.nodes} nodes, {entry.bytes} snapshot bytes, "
            f"hash {entry.hash[:12]}…)"
        )
    return 0


def _command_store_ls(args: argparse.Namespace) -> int:
    from repro.store import CorpusStore, shard_of

    store = CorpusStore(args.store)
    entries = store.list()  # sorted by key: ls output is deterministic
    if not entries:
        print("(store is empty)")
        return 0
    width = max(len(entry.key) for entry in entries)
    shard_header = f"  {'shard':>5}" if args.workers else ""
    print(
        f"{'key':<{width}}  {'nodes':>8}  {'bytes':>10}  "
        f"root tag      hash{shard_header}"
    )
    for entry in entries:
        root_tag = entry.root_tag or "-"
        shard = (
            f"  {shard_of(entry.hash, args.workers):>5}" if args.workers else ""
        )
        print(
            f"{entry.key:<{width}}  {entry.nodes:>8}  {entry.bytes:>10}  "
            f"{root_tag:<12}  {entry.hash[:12]}…{shard}"
        )
    distinct = len({entry.hash for entry in entries})
    print(
        f"total    : {len(entries)} key(s), {distinct} snapshot file(s), "
        f"{store.total_bytes()} snapshot byte(s)"
    )
    return 0


def _command_store_query(args: argparse.Namespace) -> int:
    from repro.engine import XPathEngine
    from repro.store import CorpusStore

    if args.workers:
        from repro.serving import ShardedPool

        if args.engine != "auto":
            print(
                "error: --workers uses planner dispatch inside each worker; "
                "drop --engine or --workers",
                file=sys.stderr,
            )
            return 2
        store = CorpusStore(args.store)
        entry = store.stat(args.key)  # fail on unknown keys before spawning
        with ShardedPool(store, workers=args.workers, mmap=True) as pool:
            result = pool.evaluate(args.query, args.key, trace=args.profile)
            print(
                f"document : {args.key} ({entry.nodes} nodes, "
                "snapshot-hydrated in workers)"
            )
            _print_sharded_result(args, result, pool, args.key)
        return 0
    # A command-local engine: attaching the store (and its mmap default)
    # to the process-default engine would leak past this command into
    # in-process callers of main().
    engine = XPathEngine().attach_store(CorpusStore(args.store), mmap=args.mmap)
    doc = engine.add_from_store(args.key)
    result = engine.evaluate(
        args.query, doc, engine=args.engine, trace=args.profile
    )
    print(f"document : {args.key} ({doc.document.size} nodes, snapshot-hydrated)")
    _print_query_result(args, result, engine)
    return 0


def _parse_hostport(text: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` flag value (IPv6 hosts may be bracketed)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not port_text.isdigit():
        raise argparse.ArgumentTypeError(
            f"{text!r} is not HOST:PORT (e.g. 127.0.0.1:8040)"
        )
    return host.strip("[]") or "127.0.0.1", int(port_text)


def _command_serve(args: argparse.Namespace) -> int:
    """``serve``: answer ``<key> <query>`` stdin lines over the worker pool.

    One request line in, one tab-separated result line out
    (``key\\tids=[...]`` / ``key\\tvalue=...`` / ``key\\terror=Type: …``);
    request errors are reported inline and never stop the loop.  EOF
    shuts the pool down gracefully.  With ``--listen HOST:PORT`` the pool
    is served over TCP instead: requests arrive as ``RPW1`` frames or
    JSON lines from the network, and SIGINT/SIGTERM drain gracefully.
    """
    from repro.serving import ShardedPool
    from repro.store import CorpusStore

    store = CorpusStore(args.store)
    with ShardedPool(
        store,
        workers=args.workers,
        mmap=not args.no_mmap,
        warm=not args.cold,
        max_restarts=args.max_restarts,
        request_timeout=args.request_timeout,
    ) as pool:
        if args.listen is not None:
            return _serve_network(args, pool, store)
        print(
            f"serving  : {len(store)} key(s) over {pool.workers} worker "
            f"process(es) ({pool.start_method}); send '<key> <query>' lines",
            file=sys.stderr,
        )
        served = 0
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                print(f"{parts[0]}\terror=request needs '<key> <query>'")
                continue
            key, query = parts
            try:
                result = pool.evaluate(query, key, ids=args.ids)
            except ReproError as error:
                print(f"{key}\terror={type(error).__name__}: {error}")
                continue
            served += 1
            if result.is_node_set:
                print(f"{key}\tids={result.ids!r}")
            else:
                print(f"{key}\tvalue={result.value!r}")
        if args.stats:
            print("serving stats:")
            for stats_line in pool.stats().describe().splitlines():
                print(f"  {stats_line}")
        if args.metrics:
            from repro.telemetry import render_prometheus

            print(render_prometheus(pool.metric_families()), end="")
        print(f"served   : {served} request(s)", file=sys.stderr)
    return 0


def _serve_network(args: argparse.Namespace, pool, store) -> int:
    """``serve --listen``: run the TCP front door until SIGINT/SIGTERM."""
    import signal
    import threading

    from repro.serving import XPathServer

    host, port = args.listen
    server = XPathServer(
        pool,
        host=host,
        port=port,
        max_inflight=args.max_inflight,
        idle_timeout=args.idle_timeout,
    )
    stop = threading.Event()
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, lambda *_: stop.set())
    try:
        bound_host, bound_port = server.start_background()
        print(
            f"listening: {bound_host}:{bound_port} "
            f"({len(store)} key(s), {pool.workers} worker process(es), "
            f"max {server.max_inflight} request(s) in flight)",
            file=sys.stderr,
            flush=True,
        )
        stop.wait()
        print("draining : flushing connected clients", file=sys.stderr)
        server.shutdown(graceful=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if args.stats:
        print("serving stats:")
        for stats_line in pool.stats().describe().splitlines():
            print(f"  {stats_line}")
    if args.metrics:
        from repro.telemetry import render_prometheus

        print(render_prometheus(server.metric_families()), end="")
    return 0


def _command_client(args: argparse.Namespace) -> int:
    """``client``: answer ``<key> <query>`` stdin lines over a TCP server.

    The same request/response convention as ``serve``'s stdin loop, but
    evaluation happens wherever ``--connect`` points; request errors
    (including typed ``OVERLOADED`` rejections) are reported inline and
    never stop the loop.
    """
    from repro.serving import ServingClient

    host, port = args.connect
    with ServingClient(host, port, timeout=args.timeout) as client:
        print(
            f"connected: {host}:{port} (server pid {client.server_pid}"
            + (f", {client.banner}" if client.banner else "")
            + ")",
            file=sys.stderr,
        )
        if args.ping:
            pid, rtt = client.ping()
            print(f"pong     : pid={pid} rtt={rtt * 1e3:.2f}ms")
            return 0
        served = 0
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                print(f"{parts[0]}\terror=request needs '<key> <query>'")
                continue
            key, query = parts
            try:
                result = client.evaluate(query, key, ids=args.ids)
            except ReproError as error:
                print(f"{key}\terror={type(error).__name__}: {error}")
                continue
            served += 1
            if result.is_node_set:
                print(f"{key}\tids={result.ids!r}")
            else:
                print(f"{key}\tvalue={result.value!r}")
        if args.stats:
            stats = client.server_stats()
            print("server stats:")
            for scope in ("server", "pool"):
                fields = " ".join(
                    f"{name}={value}" for name, value in sorted(stats[scope].items())
                )
                print(f"  {scope:<7}: {fields}")
        receipt = client.drain()
        print(
            f"served   : {served} request(s) this session "
            f"({receipt} per server receipt)",
            file=sys.stderr,
        )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Imported here so `repro query`-style invocations never pay for it.
    from repro.analysis import main as analysis_main

    return analysis_main(list(args.args))


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XPath 1.0 evaluation and fragment classification "
        "(reproduction of Gottlob/Koch/Pichler, PODS 2003)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query_parser = subparsers.add_parser(
        "query", help="evaluate a query via the XPathEngine session façade"
    )
    query_parser.add_argument("query", help="the XPath 1.0 query")
    query_parser.add_argument("document", help="path to the XML document")
    query_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="evaluation engine (default: auto — planner dispatch)",
    )
    query_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    query_parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's counters (plan cache, registry, dispatch)",
    )
    query_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=0,
        metavar="N",
        help="serve through N worker processes (cross-process sharded tier; "
        "snapshots the document into an ephemeral corpus store first)",
    )
    query_parser.add_argument(
        "--profile",
        action="store_true",
        help="also print the per-stage span tree "
        "(parse→plan→eval→materialise; with --workers the cross-process "
        "enqueue→dispatch→worker-eval→decode spans too)",
    )
    query_parser.set_defaults(func=_command_query)

    eval_parser = subparsers.add_parser("eval", help="evaluate a query on an XML file")
    eval_parser.add_argument("query", help="the XPath 1.0 query")
    eval_parser.add_argument("document", help="path to the XML document")
    eval_parser.add_argument(
        "--engine", choices=ENGINES, default="cvt", help="evaluation engine (default: cvt)"
    )
    eval_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    eval_parser.set_defaults(func=_command_eval)

    classify_parser = subparsers.add_parser("classify", help="classify a query (Figure 1)")
    classify_parser.add_argument("query", help="the XPath 1.0 query")
    classify_parser.add_argument(
        "--verbose", action="store_true", help="also print why smaller fragments exclude it"
    )
    classify_parser.set_defaults(func=_command_classify)

    plan_parser = subparsers.add_parser(
        "plan", help="show the compiled query plan (fragment + evaluator choice)"
    )
    plan_parser.add_argument("query", help="the XPath 1.0 query")
    plan_parser.add_argument(
        "--stats", action="store_true", help="also print plan-cache statistics"
    )
    plan_parser.set_defaults(func=_command_plan)

    figure1_parser = subparsers.add_parser("figure1", help="print the Figure 1 lattice")
    figure1_parser.set_defaults(func=_command_figure1)

    store_parser = subparsers.add_parser(
        "store", help="manage a corpus store of persistent index snapshots"
    )
    store_subparsers = store_parser.add_subparsers(
        dest="store_command", required=True
    )

    build_parser = store_subparsers.add_parser(
        "build", help="snapshot XML documents into the store (parse+index once)"
    )
    build_parser.add_argument(
        "documents", nargs="+", help="XML file(s) to snapshot"
    )
    build_parser.add_argument(
        "--store", required=True, help="store directory (created if missing)"
    )
    build_parser.add_argument(
        "--key",
        default=None,
        help="manifest key (single document only; default: file basename)",
    )
    build_parser.set_defaults(func=_command_store_build)

    ls_parser = store_subparsers.add_parser(
        "ls", help="list the store manifest (sorted by key, with totals)"
    )
    ls_parser.add_argument("--store", required=True, help="store directory")
    ls_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=0,
        metavar="N",
        help="also show which of N serving shards each key routes to",
    )
    ls_parser.set_defaults(func=_command_store_ls)

    store_query_parser = store_subparsers.add_parser(
        "query", help="evaluate a query over a snapshot-hydrated document"
    )
    store_query_parser.add_argument("query", help="the XPath 1.0 query")
    store_query_parser.add_argument("key", help="store key (or content hash)")
    store_query_parser.add_argument(
        "--store", required=True, help="store directory"
    )
    store_query_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="evaluation engine (default: auto — planner dispatch)",
    )
    store_query_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    store_query_parser.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the snapshot instead of copying it into the heap",
    )
    store_query_parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's counters (incl. store hits/misses/loads)",
    )
    store_query_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=0,
        metavar="N",
        help="serve through N worker processes (cross-process sharded tier)",
    )
    store_query_parser.add_argument(
        "--profile",
        action="store_true",
        help="also print the per-stage span tree for the query",
    )
    store_query_parser.set_defaults(func=_command_store_query)

    serve_parser = subparsers.add_parser(
        "serve",
        help="shard a corpus store over worker processes and answer "
        "'<key> <query>' lines from stdin",
    )
    serve_parser.add_argument("--store", required=True, help="store directory")
    serve_parser.add_argument(
        "--workers", type=_positive_int, default=4, metavar="N",
        help="worker process count (default: 4)",
    )
    serve_parser.add_argument(
        "--ids",
        action="store_true",
        help="id-native mode: require id-array answers (scalar queries error)",
    )
    serve_parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="copy snapshots into each worker's heap instead of mmap sharing",
    )
    serve_parser.add_argument(
        "--cold",
        action="store_true",
        help="skip the warm-up hydration pass (first query per key pays it)",
    )
    serve_parser.add_argument(
        "--stats",
        action="store_true",
        help="print the merged per-worker counters at shutdown",
    )
    serve_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus text exposition at shutdown "
        "(with --listen: the server's families too, not just the pool's)",
    )
    serve_parser.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        metavar="N",
        help="supervisor restarts per worker before its shard fails fast "
        "(default: 3)",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock bound per request; an overdue request's worker is "
        "presumed hung, killed and restarted (default: no bound)",
    )
    serve_parser.add_argument(
        "--listen",
        type=_parse_hostport,
        default=None,
        metavar="HOST:PORT",
        help="serve over TCP instead of stdin (RPW1 binary protocol + JSON "
        "shim; port 0 picks an ephemeral port; SIGINT/SIGTERM drain "
        "gracefully)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        metavar="N",
        help="admission bound on concurrently in-flight network requests "
        "(default: workers × dispatch window); excess requests are "
        "rejected with a typed OVERLOADED frame, never queued",
    )
    serve_parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close network connections idle this long (default: never)",
    )
    serve_parser.set_defaults(func=_command_serve)

    client_parser = subparsers.add_parser(
        "client",
        help="connect to a 'serve --listen' server and answer "
        "'<key> <query>' lines from stdin remotely",
    )
    client_parser.add_argument(
        "--connect",
        type=_parse_hostport,
        required=True,
        metavar="HOST:PORT",
        help="the server's listen address",
    )
    client_parser.add_argument(
        "--ids",
        action="store_true",
        help="id-native mode: require id-array answers (scalar queries error)",
    )
    client_parser.add_argument(
        "--ping",
        action="store_true",
        help="probe the server's liveness and exit (prints pid and RTT)",
    )
    client_parser.add_argument(
        "--stats",
        action="store_true",
        help="print the server's merged counters before disconnecting",
    )
    client_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout per send/receive (default: 30)",
    )
    client_parser.set_defaults(func=_command_client)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the project-native static analysis suite "
        "(lock discipline, wire exhaustiveness, async-blocking, "
        "immutability, exception hygiene, API-surface drift)",
        add_help=False,  # repro.analysis owns its own --help/options
    )
    lint_parser.add_argument(
        "args", nargs=argparse.REMAINDER,
        help="paths and options forwarded to `python -m repro.analysis`",
    )
    lint_parser.set_defaults(func=_command_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Delegated before parsing: argparse's REMAINDER does not forward
        # leading options (e.g. `repro lint --list-rules`), and the
        # analysis CLI owns its whole option surface.
        from repro.analysis import main as analysis_main

        return analysis_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
