"""Command-line interface: evaluate XPath queries and classify them.

Usage (also available as ``python -m repro``)::

    python -m repro query "//book[child::title]" catalogue.xml --stats
    python -m repro eval "//book[child::title]" catalogue.xml --engine auto
    python -m repro classify "//a[not(b)]"
    python -m repro plan "//a[not(b)]" --stats
    python -m repro figure1
    python -m repro store build catalogue.xml --store ./corpus
    python -m repro store ls --store ./corpus
    python -m repro store query "//book" catalogue --store ./corpus --stats

``query`` evaluates through the session façade
(:class:`repro.engine.XPathEngine`) and prints the full per-query
metadata (engine chosen, fragment, plan-cache hit, wall time), plus —
with ``--stats`` — the engine's counters (plan-cache hit rate, registry
occupancy, per-engine dispatch counts); ``eval`` is the legacy
per-engine form; ``classify`` prints the Figure 1 fragment and combined
complexity of a query together with the reasons it falls outside smaller
fragments; ``plan`` shows how the query planner compiles a query
(fragment, selected evaluator, fallback chain), and with ``--stats``
also the process-default engine's plan-cache counters and dispatch
counts; ``figure1`` prints the fragment lattice.

``store`` manages a :class:`repro.store.CorpusStore` of persistent index
snapshots: ``store build`` snapshots XML files once (parse + index paid
here, never again), ``store ls`` lists the manifest, and ``store query``
serves a query over a snapshot-hydrated document — zero rebuild — with
``--stats`` showing the engine's store hit/miss/load counters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.complexity import render_figure1
from repro.engine import default_engine
from repro.errors import ReproError
from repro.evaluation import ENGINES, evaluate
from repro.fragments import classify
from repro.planner import get_plan
from repro.xmlmodel import parse_xml
from repro.xmlmodel.nodes import XMLNode


def _describe_node(node: XMLNode) -> str:
    name = node.name()
    if name:
        return f"{node.node_type.value}({name})@{node.order}"
    return f"{node.node_type.value}@{node.order}"


def _print_node_set(nodes: list, limit: int) -> None:
    print(f"result   : node-set of {len(nodes)} node(s)")
    limit = limit if limit > 0 else len(nodes)
    for node in nodes[:limit]:
        print(f"  - {_describe_node(node)}")
    if len(nodes) > limit:
        print(f"  … and {len(nodes) - limit} more")


def _print_query_result(args: argparse.Namespace, result, engine) -> None:
    """The shared `query` / `store query` result block (after the document line)."""
    if args.engine == "auto":
        print(f"engine   : auto ({result.engine} selected)")
    else:
        print(f"engine   : {result.engine}")
    print(f"query    : {result.query}")
    print(f"fragment : {result.classification.most_specific}")
    print(f"plan     : {'cache hit' if result.cache_hit else 'compiled'}, "
          f"{result.wall_time * 1e3:.2f} ms")
    if result.is_node_set:
        _print_node_set(result.nodes, args.limit)
    else:
        print(f"result   : {result.value!r}")
    if args.stats:
        print("engine stats:")
        for line in engine.stats().describe().splitlines():
            print(f"  {line}")


def _command_query(args: argparse.Namespace) -> int:
    engine = default_engine()
    with open(args.document, "r", encoding="utf-8") as handle:
        doc = engine.add(handle.read())
    result = engine.evaluate(args.query, doc, engine=args.engine)
    print(f"document : {args.document} ({doc.document.size} nodes)")
    _print_query_result(args, result, engine)
    return 0


def _command_eval(args: argparse.Namespace) -> int:
    with open(args.document, "r", encoding="utf-8") as handle:
        document = parse_xml(handle.read())
    result = evaluate(args.query, document, engine=args.engine)
    engine = args.engine
    if engine == "auto":
        engine = f"auto ({get_plan(args.query).engine} selected)"
    print(f"document : {args.document} ({document.size} nodes)")
    print(f"engine   : {engine}")
    print(f"query    : {args.query}")
    if isinstance(result, list):
        _print_node_set(result, args.limit)
    else:
        print(f"result   : {result!r}")
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    classification = classify(args.query)
    print(f"query               : {classification.query}")
    print(f"most specific       : {classification.most_specific}")
    print(f"combined complexity : {classification.combined_complexity}")
    print(f"member of           : {', '.join(classification.fragments)}")
    if args.verbose and classification.violations:
        print("excluded from:")
        for fragment, reasons in classification.violations.items():
            print(f"  {fragment}:")
            for reason in reasons:
                print(f"    - {reason}")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    plan = get_plan(args.query)
    print(plan.explain())
    if args.stats:
        print(default_engine().stats().describe())
    return 0


def _command_figure1(args: argparse.Namespace) -> int:
    print(render_figure1())
    return 0


def _command_store_build(args: argparse.Namespace) -> int:
    from repro.store import CorpusStore

    if args.key is not None and len(args.documents) > 1:
        print("error: --key is only valid with a single document", file=sys.stderr)
        return 2
    import os

    keys = [
        args.key
        if args.key is not None
        else os.path.splitext(os.path.basename(path))[0]
        for path in args.documents
    ]
    duplicates = sorted({key for key in keys if keys.count(key) > 1})
    if duplicates:
        print(
            "error: colliding document basenames would overwrite manifest "
            f"key(s) {', '.join(duplicates)}; pass distinct files or use "
            "--key per invocation",
            file=sys.stderr,
        )
        return 2
    store = CorpusStore(args.store)
    for path, key in zip(args.documents, keys):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        entry = store.put(text, key=key)
        print(
            f"stored   : {path} -> {entry.key} "
            f"({entry.nodes} nodes, {entry.bytes} snapshot bytes, "
            f"hash {entry.hash[:12]}…)"
        )
    return 0


def _command_store_ls(args: argparse.Namespace) -> int:
    from repro.store import CorpusStore

    store = CorpusStore(args.store)
    entries = store.list()
    if not entries:
        print("(store is empty)")
        return 0
    width = max(len(entry.key) for entry in entries)
    print(f"{'key':<{width}}  {'nodes':>8}  {'bytes':>10}  root tag      hash")
    for entry in entries:
        root_tag = entry.root_tag or "-"
        print(
            f"{entry.key:<{width}}  {entry.nodes:>8}  {entry.bytes:>10}  "
            f"{root_tag:<12}  {entry.hash[:12]}…"
        )
    return 0


def _command_store_query(args: argparse.Namespace) -> int:
    from repro.engine import XPathEngine
    from repro.store import CorpusStore

    # A command-local engine: attaching the store (and its mmap default)
    # to the process-default engine would leak past this command into
    # in-process callers of main().
    engine = XPathEngine().attach_store(CorpusStore(args.store), mmap=args.mmap)
    doc = engine.add_from_store(args.key)
    result = engine.evaluate(args.query, doc, engine=args.engine)
    print(f"document : {args.key} ({doc.document.size} nodes, snapshot-hydrated)")
    _print_query_result(args, result, engine)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XPath 1.0 evaluation and fragment classification "
        "(reproduction of Gottlob/Koch/Pichler, PODS 2003)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query_parser = subparsers.add_parser(
        "query", help="evaluate a query via the XPathEngine session façade"
    )
    query_parser.add_argument("query", help="the XPath 1.0 query")
    query_parser.add_argument("document", help="path to the XML document")
    query_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="evaluation engine (default: auto — planner dispatch)",
    )
    query_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    query_parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's counters (plan cache, registry, dispatch)",
    )
    query_parser.set_defaults(func=_command_query)

    eval_parser = subparsers.add_parser("eval", help="evaluate a query on an XML file")
    eval_parser.add_argument("query", help="the XPath 1.0 query")
    eval_parser.add_argument("document", help="path to the XML document")
    eval_parser.add_argument(
        "--engine", choices=ENGINES, default="cvt", help="evaluation engine (default: cvt)"
    )
    eval_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    eval_parser.set_defaults(func=_command_eval)

    classify_parser = subparsers.add_parser("classify", help="classify a query (Figure 1)")
    classify_parser.add_argument("query", help="the XPath 1.0 query")
    classify_parser.add_argument(
        "--verbose", action="store_true", help="also print why smaller fragments exclude it"
    )
    classify_parser.set_defaults(func=_command_classify)

    plan_parser = subparsers.add_parser(
        "plan", help="show the compiled query plan (fragment + evaluator choice)"
    )
    plan_parser.add_argument("query", help="the XPath 1.0 query")
    plan_parser.add_argument(
        "--stats", action="store_true", help="also print plan-cache statistics"
    )
    plan_parser.set_defaults(func=_command_plan)

    figure1_parser = subparsers.add_parser("figure1", help="print the Figure 1 lattice")
    figure1_parser.set_defaults(func=_command_figure1)

    store_parser = subparsers.add_parser(
        "store", help="manage a corpus store of persistent index snapshots"
    )
    store_subparsers = store_parser.add_subparsers(
        dest="store_command", required=True
    )

    build_parser = store_subparsers.add_parser(
        "build", help="snapshot XML documents into the store (parse+index once)"
    )
    build_parser.add_argument(
        "documents", nargs="+", help="XML file(s) to snapshot"
    )
    build_parser.add_argument(
        "--store", required=True, help="store directory (created if missing)"
    )
    build_parser.add_argument(
        "--key",
        default=None,
        help="manifest key (single document only; default: file basename)",
    )
    build_parser.set_defaults(func=_command_store_build)

    ls_parser = store_subparsers.add_parser(
        "ls", help="list the store manifest"
    )
    ls_parser.add_argument("--store", required=True, help="store directory")
    ls_parser.set_defaults(func=_command_store_ls)

    store_query_parser = store_subparsers.add_parser(
        "query", help="evaluate a query over a snapshot-hydrated document"
    )
    store_query_parser.add_argument("query", help="the XPath 1.0 query")
    store_query_parser.add_argument("key", help="store key (or content hash)")
    store_query_parser.add_argument(
        "--store", required=True, help="store directory"
    )
    store_query_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="evaluation engine (default: auto — planner dispatch)",
    )
    store_query_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    store_query_parser.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the snapshot instead of copying it into the heap",
    )
    store_query_parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's counters (incl. store hits/misses/loads)",
    )
    store_query_parser.set_defaults(func=_command_store_query)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
