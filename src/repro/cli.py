"""Command-line interface: evaluate XPath queries and classify them.

Usage (also available as ``python -m repro``)::

    python -m repro eval "//book[child::title]" catalogue.xml --engine auto
    python -m repro classify "//a[not(b)]"
    python -m repro plan "//a[not(b)]" --stats
    python -m repro figure1

``eval`` prints the result of the query (node names / scalar value), the
engine used, and basic cost counters; ``classify`` prints the Figure 1
fragment and combined complexity of a query together with the reasons it
falls outside smaller fragments; ``plan`` shows how the query planner
compiles a query (fragment, selected evaluator, fallback chain), and with
``--stats`` also the process-wide plan-cache counters (size, hits,
misses, evictions, hit rate — see
:meth:`repro.planner.cache.PlanCache.stats`); ``figure1`` prints the
fragment lattice.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.complexity import render_figure1
from repro.errors import ReproError
from repro.evaluation import ENGINES, evaluate, make_evaluator
from repro.evaluation.values import NodeSet
from repro.fragments import classify
from repro.planner import default_plan_cache, get_plan
from repro.xmlmodel import parse_xml
from repro.xmlmodel.nodes import XMLNode


def _describe_node(node: XMLNode) -> str:
    name = node.name()
    if name:
        return f"{node.node_type.value}({name})@{node.order}"
    return f"{node.node_type.value}@{node.order}"


def _command_eval(args: argparse.Namespace) -> int:
    with open(args.document, "r", encoding="utf-8") as handle:
        document = parse_xml(handle.read())
    result = evaluate(args.query, document, engine=args.engine)
    engine = args.engine
    if engine == "auto":
        engine = f"auto ({get_plan(args.query).engine} selected)"
    print(f"document : {args.document} ({document.size} nodes)")
    print(f"engine   : {engine}")
    print(f"query    : {args.query}")
    if isinstance(result, list):
        print(f"result   : node-set of {len(result)} node(s)")
        limit = args.limit if args.limit > 0 else len(result)
        for node in result[:limit]:
            print(f"  - {_describe_node(node)}")
        if len(result) > limit:
            print(f"  … and {len(result) - limit} more")
    else:
        print(f"result   : {result!r}")
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    classification = classify(args.query)
    print(f"query               : {classification.query}")
    print(f"most specific       : {classification.most_specific}")
    print(f"combined complexity : {classification.combined_complexity}")
    print(f"member of           : {', '.join(classification.fragments)}")
    if args.verbose and classification.violations:
        print("excluded from:")
        for fragment, reasons in classification.violations.items():
            print(f"  {fragment}:")
            for reason in reasons:
                print(f"    - {reason}")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    plan = get_plan(args.query)
    print(plan.explain())
    if args.stats:
        stats = default_plan_cache().stats()
        print(
            f"plan cache          : {stats.size}/{stats.maxsize} plans, "
            f"{stats.hits} hit(s), {stats.misses} miss(es), "
            f"{stats.evictions} eviction(s), hit rate {stats.hit_rate:.0%}"
        )
    return 0


def _command_figure1(args: argparse.Namespace) -> int:
    print(render_figure1())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XPath 1.0 evaluation and fragment classification "
        "(reproduction of Gottlob/Koch/Pichler, PODS 2003)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    eval_parser = subparsers.add_parser("eval", help="evaluate a query on an XML file")
    eval_parser.add_argument("query", help="the XPath 1.0 query")
    eval_parser.add_argument("document", help="path to the XML document")
    eval_parser.add_argument(
        "--engine", choices=ENGINES, default="cvt", help="evaluation engine (default: cvt)"
    )
    eval_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of result nodes to print"
    )
    eval_parser.set_defaults(func=_command_eval)

    classify_parser = subparsers.add_parser("classify", help="classify a query (Figure 1)")
    classify_parser.add_argument("query", help="the XPath 1.0 query")
    classify_parser.add_argument(
        "--verbose", action="store_true", help="also print why smaller fragments exclude it"
    )
    classify_parser.set_defaults(func=_command_classify)

    plan_parser = subparsers.add_parser(
        "plan", help="show the compiled query plan (fragment + evaluator choice)"
    )
    plan_parser.add_argument("query", help="the XPath 1.0 query")
    plan_parser.add_argument(
        "--stats", action="store_true", help="also print plan-cache statistics"
    )
    plan_parser.set_defaults(func=_command_plan)

    figure1_parser = subparsers.add_parser("figure1", help="print the Figure 1 lattice")
    figure1_parser.set_defaults(func=_command_figure1)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
