"""Synthetic document generators used by tests, examples and benchmarks.

The generators cover the document shapes that the paper's complexity
arguments care about:

* deep chains (worst case for ancestor/descendant axes),
* wide flat trees (the shape used by the hardness reductions),
* complete k-ary trees (balanced workloads),
* "caterpillar" sibling chains (the shape on which naive, functional-style
  evaluation of multi-step queries explodes exponentially — experiment E8),
* seeded random trees (property-based testing), and
* a small auction-style document modelled on the XMark benchmark schema
  (realistic mixed-content workloads for the examples).
"""

from __future__ import annotations

import random
import string
from typing import Sequence

from repro.xmlmodel.document import Document, DocumentBuilder


def chain_document(depth: int, tag: str = "a") -> Document:
    """Return a document that is a single chain of ``depth`` nested elements."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = DocumentBuilder()
    for _ in range(depth):
        builder.start_element(tag)
    for _ in range(depth):
        builder.end_element()
    return builder.finish()


def wide_document(width: int, tag: str = "item", root_tag: str = "root") -> Document:
    """Return a document with one root element and ``width`` leaf children."""
    if width < 0:
        raise ValueError("width must be non-negative")
    builder = DocumentBuilder()
    builder.start_element(root_tag)
    for index in range(width):
        builder.add_element(tag, {"index": str(index)})
    builder.end_element()
    return builder.finish()


def complete_tree_document(
    branching: int, depth: int, tags: Sequence[str] = ("a", "b", "c")
) -> Document:
    """Return a complete ``branching``-ary tree of the given depth.

    Levels cycle through ``tags`` so that tag-based node tests select
    specific levels.
    """
    if branching < 1 or depth < 1:
        raise ValueError("branching and depth must be at least 1")
    builder = DocumentBuilder()

    def build(level: int) -> None:
        builder.start_element(tags[level % len(tags)])
        if level + 1 < depth:
            for _ in range(branching):
                build(level + 1)
        builder.end_element()

    build(0)
    return builder.finish()


def caterpillar_document(length: int, tags: Sequence[str] = ("a", "b")) -> Document:
    """Return the caterpillar document used for the exponential-blowup bench.

    The document is a root with ``length`` children whose tags alternate
    through ``tags`` (``a b a b …``).  A query of the form
    ``//a/following-sibling::b/following-sibling::a/…`` admits exponentially
    many navigation paths through this document, so an evaluator that does
    not deduplicate intermediate node sets takes exponential time while the
    dynamic-programming evaluators stay polynomial (experiment E8).
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    builder = DocumentBuilder()
    builder.start_element("doc")
    for index in range(length):
        builder.add_element(tags[index % len(tags)])
    builder.end_element()
    return builder.finish()


def random_document(
    node_budget: int,
    seed: int = 0,
    tags: Sequence[str] = ("a", "b", "c", "d"),
    max_children: int = 4,
    attribute_probability: float = 0.3,
    text_probability: float = 0.2,
) -> Document:
    """Return a pseudo-random document with roughly ``node_budget`` elements.

    The construction is deterministic for a fixed ``seed``, which lets
    hypothesis-style property tests shrink reliably.
    """
    if node_budget < 1:
        raise ValueError("node_budget must be at least 1")
    rng = random.Random(seed)
    builder = DocumentBuilder()
    remaining = node_budget - 1
    builder.start_element(rng.choice(tags))

    def grow() -> None:
        nonlocal remaining
        if rng.random() < attribute_probability:
            builder.current.set_attribute(
                rng.choice(("id", "kind", "lang")),
                "".join(rng.choices(string.ascii_lowercase, k=3)),
            )
        if rng.random() < text_probability:
            builder.text("".join(rng.choices(string.ascii_lowercase + " ", k=8)))
        children = rng.randint(0, max_children)
        for _ in range(children):
            if remaining <= 0:
                return
            remaining -= 1
            builder.start_element(rng.choice(tags))
            grow()
            builder.end_element()

    grow()
    builder.end_element()
    return builder.finish()


def labelled_list_document(labels_per_node: Sequence[Sequence[str]]) -> Document:
    """Return a depth-two document with one child per entry of ``labels_per_node``.

    Each child carries its labels as ``<label name="…"/>`` grandchildren —
    the multi-label encoding of Remark 3.1 that the hardness reductions use.
    """
    builder = DocumentBuilder()
    builder.start_element("root")
    for index, labels in enumerate(labels_per_node):
        builder.start_element("node", {"index": str(index)})
        for label in labels:
            builder.add_element("label", {"name": label})
        builder.end_element()
    builder.end_element()
    return builder.finish()


def auction_document(sellers: int = 5, items_per_seller: int = 4, seed: int = 7) -> Document:
    """Return a small auction-site document in the spirit of XMark.

    The document has regions, sellers, items with descriptions and bids,
    which exercises nested predicates, attribute tests, arithmetic on bid
    amounts and positional predicates in the examples.
    """
    rng = random.Random(seed)
    regions = ("europe", "namerica", "asia")
    builder = DocumentBuilder()
    builder.start_element("site")
    builder.start_element("regions")
    for region in regions:
        builder.start_element(region)
        builder.end_element()
    builder.end_element()
    builder.start_element("people")
    for seller_id in range(sellers):
        builder.start_element("person", {"id": f"person{seller_id}"})
        builder.start_element("name")
        builder.text(f"Seller {seller_id}")
        builder.end_element()
        builder.end_element()
    builder.end_element()
    builder.start_element("open_auctions")
    item_counter = 0
    for seller_id in range(sellers):
        for _ in range(items_per_seller):
            builder.start_element("open_auction", {"id": f"auction{item_counter}"})
            builder.start_element("seller")
            builder.current.set_attribute("person", f"person{seller_id}")
            builder.end_element()
            builder.start_element("initial")
            builder.text(f"{rng.randint(1, 200)}")
            builder.end_element()
            bid_count = rng.randint(0, 5)
            for bid_index in range(bid_count):
                builder.start_element("bidder")
                builder.start_element("increase")
                builder.text(f"{rng.randint(1, 50)}")
                builder.end_element()
                builder.end_element()
            builder.start_element("item", {"region": rng.choice(regions)})
            builder.start_element("description")
            builder.text(f"item number {item_counter}")
            builder.end_element()
            builder.end_element()
            builder.end_element()
            item_counter += 1
    builder.end_element()
    builder.end_element()
    return builder.finish()
