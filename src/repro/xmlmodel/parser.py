"""A from-scratch XML parser producing :class:`repro.xmlmodel.document.Document`.

The parser supports the subset of XML needed for realistic query workloads:
elements, attributes (single or double quoted), character data, comments,
CDATA sections, processing instructions, an optional XML declaration and a
DOCTYPE declaration (which is skipped), plus the five predefined entities
and decimal / hexadecimal character references.  Namespace declarations are
treated as ordinary attributes and prefixes are kept as part of names,
which is all the paper's constructions require.

The implementation is a small hand-written scanner rather than a wrapper
around :mod:`xml.etree` so that the whole evaluation pipeline — from bytes
to query answers — is built by this repository; ElementTree is only used in
the test-suite as an independent cross-check.
"""

from __future__ import annotations

import re

from repro.errors import XMLParseError
from repro.xmlmodel.document import Document, DocumentBuilder

_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_CHARS = re.compile(r"[-A-Za-z0-9_:.·]")
_WHITESPACE = " \t\r\n"

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class _Scanner:
    """Character-level scanner with position tracking for error messages."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise XMLParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def read_until(self, terminator: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise XMLParseError(f"unterminated construct, missing {terminator!r}", self.pos)
        chunk = self.text[self.pos : end]
        self.pos = end + len(terminator)
        return chunk

    def read_name(self) -> str:
        if self.eof() or not _NAME_START.match(self.peek()):
            raise XMLParseError("expected a name", self.pos)
        start = self.pos
        self.pos += 1
        while self.pos < self.length and _NAME_CHARS.match(self.text[self.pos]):
            self.pos += 1
        return self.text[start : self.pos]


def _decode_references(text: str, position: int) -> str:
    """Expand entity and character references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = text.find(";", index)
        if end < 0:
            raise XMLParseError("unterminated entity reference", position + index)
        entity = text[index + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise XMLParseError(f"unknown entity &{entity};", position + index)
        index = end + 1
    return "".join(out)


def parse_xml(text: str, keep_whitespace_text: bool = False) -> Document:
    """Parse an XML string into a :class:`Document`.

    Parameters
    ----------
    text:
        The XML document as a string.
    keep_whitespace_text:
        When False (the default), text nodes consisting solely of whitespace
        are dropped.  This keeps synthetic benchmark documents small and
        matches how the paper counts document size.
    """
    scanner = _Scanner(text)
    builder = DocumentBuilder()
    depth = 0
    seen_document_element = False

    scanner.skip_whitespace()
    while not scanner.eof():
        if scanner.startswith("<?"):
            _parse_processing_instruction(scanner, builder)
        elif scanner.startswith("<!--"):
            _parse_comment(scanner, builder)
        elif scanner.startswith("<!DOCTYPE"):
            _skip_doctype(scanner)
        elif scanner.startswith("<![CDATA["):
            if depth == 0:
                raise XMLParseError("character data outside document element", scanner.pos)
            scanner.expect("<![CDATA[")
            builder.text(scanner.read_until("]]>"))
        elif scanner.startswith("</"):
            _parse_end_tag(scanner, builder)
            depth -= 1
            if depth == 0:
                scanner.skip_whitespace()
        elif scanner.startswith("<"):
            if depth == 0 and seen_document_element:
                raise XMLParseError("multiple document elements", scanner.pos)
            self_closing = _parse_start_tag(scanner, builder)
            if depth == 0:
                seen_document_element = True
            if not self_closing:
                depth += 1
        else:
            start = scanner.pos
            raw = _read_character_data(scanner)
            if depth == 0:
                if raw.strip():
                    raise XMLParseError("character data outside document element", start)
                continue
            data = _decode_references(raw, start)
            if data.strip() or (keep_whitespace_text and data):
                builder.text(data)

    if depth != 0:
        raise XMLParseError("unexpected end of input: unclosed element", scanner.pos)
    if not seen_document_element:
        raise XMLParseError("document has no document element", scanner.pos)
    return builder.finish()


def _read_character_data(scanner: _Scanner) -> str:
    end = scanner.text.find("<", scanner.pos)
    if end < 0:
        end = scanner.length
    chunk = scanner.text[scanner.pos : end]
    scanner.pos = end
    return chunk


def _parse_processing_instruction(scanner: _Scanner, builder: DocumentBuilder) -> None:
    scanner.expect("<?")
    target = scanner.read_name()
    body = scanner.read_until("?>").strip()
    if target.lower() == "xml":
        return  # XML declaration: ignore
    builder.processing_instruction(target, body)


def _parse_comment(scanner: _Scanner, builder: DocumentBuilder) -> None:
    scanner.expect("<!--")
    builder.comment(scanner.read_until("-->"))


def _skip_doctype(scanner: _Scanner) -> None:
    scanner.expect("<!DOCTYPE")
    depth = 1
    while depth > 0:
        if scanner.eof():
            raise XMLParseError("unterminated DOCTYPE", scanner.pos)
        char = scanner.advance()
        if char == "<":
            depth += 1
        elif char == ">":
            depth -= 1


def _parse_start_tag(scanner: _Scanner, builder: DocumentBuilder) -> bool:
    """Parse a start tag; return True if it was self-closing."""
    scanner.expect("<")
    tag = scanner.read_name()
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("/>"):
            scanner.expect("/>")
            builder.start_element(tag, attributes)
            builder.end_element()
            return True
        if scanner.startswith(">"):
            scanner.expect(">")
            builder.start_element(tag, attributes)
            return False
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise XMLParseError("attribute value must be quoted", scanner.pos)
        scanner.advance()
        value_start = scanner.pos
        value = scanner.read_until(quote)
        if attr_name in attributes:
            raise XMLParseError(f"duplicate attribute {attr_name!r}", value_start)
        attributes[attr_name] = _decode_references(value, value_start)


def _parse_end_tag(scanner: _Scanner, builder: DocumentBuilder) -> None:
    scanner.expect("</")
    tag = scanner.read_name()
    scanner.skip_whitespace()
    scanner.expect(">")
    current = builder.current
    current_tag = getattr(current, "tag", None)
    if current_tag != tag:
        raise XMLParseError(
            f"mismatched end tag </{tag}>; open element is <{current_tag}>", scanner.pos
        )
    builder.end_element()
