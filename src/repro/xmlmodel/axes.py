"""The thirteen XPath 1.0 axes (minus the namespace axis) and their inverses.

Every axis is exposed in two forms:

* :func:`axis_nodes` returns, for a single context node, the nodes on the
  axis **in axis order** — forward axes in document order, reverse axes
  (``ancestor``, ``ancestor-or-self``, ``preceding``,
  ``preceding-sibling``) in reverse document order.  Axis order is what
  ``position()`` and ``last()`` are defined against.
* :func:`apply_axis_to_set` maps a *set* of context nodes to the set of all
  nodes reachable over the axis, in document order.  This set-at-a-time
  form, together with :func:`inverse_axis`, is what makes the linear-time
  Core XPath algorithm possible.

The functions operate on :class:`~repro.xmlmodel.nodes.XMLNode` trees that
have been frozen into a :class:`~repro.xmlmodel.document.Document` (so that
document order is available).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import XPathEvaluationError
from repro.xmlmodel.nodes import AttributeNode, ElementNode, XMLNode, sort_document_order

#: Names of the supported axes, as they appear in XPath syntax.
AXIS_NAMES = (
    "self",
    "child",
    "parent",
    "descendant",
    "descendant-or-self",
    "ancestor",
    "ancestor-or-self",
    "following",
    "following-sibling",
    "preceding",
    "preceding-sibling",
    "attribute",
)

#: Axes whose axis order is reverse document order.
REVERSE_AXES = frozenset(
    {"ancestor", "ancestor-or-self", "preceding", "preceding-sibling"}
)

#: The axes allowed in Core XPath (Definition 2.5) — all navigational axes,
#: excluding the attribute axis.
CORE_XPATH_AXES = frozenset(AXIS_NAMES) - {"attribute"}

#: Inverse axis table used for evaluating condition location paths backwards.
INVERSE_AXIS = {
    "self": "self",
    "child": "parent",
    "parent": "child",
    "descendant": "ancestor",
    "ancestor": "descendant",
    "descendant-or-self": "ancestor-or-self",
    "ancestor-or-self": "descendant-or-self",
    "following": "preceding",
    "preceding": "following",
    "following-sibling": "preceding-sibling",
    "preceding-sibling": "following-sibling",
}


def is_reverse_axis(axis: str) -> bool:
    """Return True if ``axis`` enumerates nodes in reverse document order."""
    return axis in REVERSE_AXES


def inverse_axis(axis: str) -> str:
    """Return the inverse of ``axis`` (e.g. child ↦ parent).

    The attribute axis has no navigational inverse; asking for it raises
    :class:`XPathEvaluationError`.
    """
    try:
        return INVERSE_AXIS[axis]
    except KeyError:
        raise XPathEvaluationError(f"axis {axis!r} has no inverse") from None


def principal_node_type(axis: str) -> str:
    """Return the principal node type of ``axis`` ("element" or "attribute")."""
    return "attribute" if axis == "attribute" else "element"


# ---------------------------------------------------------------------------
# Per-node axis enumeration (axis order)
# ---------------------------------------------------------------------------


def _self(node: XMLNode) -> Iterator[XMLNode]:
    yield node


def _child(node: XMLNode) -> Iterator[XMLNode]:
    yield from node.children


def _parent(node: XMLNode) -> Iterator[XMLNode]:
    if isinstance(node, AttributeNode):
        if node.parent is not None:
            yield node.parent
        return
    if node.parent is not None:
        yield node.parent


def _descendant(node: XMLNode) -> Iterator[XMLNode]:
    yield from node.iter_descendants()


def _descendant_or_self(node: XMLNode) -> Iterator[XMLNode]:
    yield from node.iter_descendants_or_self()


def _ancestor(node: XMLNode) -> Iterator[XMLNode]:
    yield from node.iter_ancestors()


def _ancestor_or_self(node: XMLNode) -> Iterator[XMLNode]:
    yield node
    yield from node.iter_ancestors()


def _following_sibling(node: XMLNode) -> Iterator[XMLNode]:
    if node.parent is None or isinstance(node, AttributeNode):
        return
    siblings = node.parent.children
    index = siblings.index(node)
    yield from siblings[index + 1 :]


def _preceding_sibling(node: XMLNode) -> Iterator[XMLNode]:
    if node.parent is None or isinstance(node, AttributeNode):
        return
    siblings = node.parent.children
    index = siblings.index(node)
    yield from reversed(siblings[:index])


def _following(node: XMLNode) -> Iterator[XMLNode]:
    """All nodes after ``node`` in document order, excluding descendants."""
    current = node
    while current is not None:
        for sibling in _following_sibling(current):
            yield from sibling.iter_descendants_or_self()
        current = current.parent


def _preceding(node: XMLNode) -> Iterator[XMLNode]:
    """All nodes before ``node`` in document order, excluding ancestors.

    Yields in reverse document order, as required for a reverse axis.
    """
    ancestors = set(node.iter_ancestors())
    ancestors.add(node)
    result = [
        other
        for other in node.root().iter_descendants_or_self()
        if other.order < node.order and other not in ancestors
    ]
    yield from reversed(result)


def _attribute(node: XMLNode) -> Iterator[XMLNode]:
    if isinstance(node, ElementNode):
        yield from node.attributes


_AXIS_FUNCTIONS = {
    "self": _self,
    "child": _child,
    "parent": _parent,
    "descendant": _descendant,
    "descendant-or-self": _descendant_or_self,
    "ancestor": _ancestor,
    "ancestor-or-self": _ancestor_or_self,
    "following": _following,
    "following-sibling": _following_sibling,
    "preceding": _preceding,
    "preceding-sibling": _preceding_sibling,
    "attribute": _attribute,
}


def axis_nodes(node: XMLNode, axis: str) -> list[XMLNode]:
    """Return the nodes on ``axis`` from ``node``, in axis order."""
    try:
        func = _AXIS_FUNCTIONS[axis]
    except KeyError:
        raise XPathEvaluationError(f"unknown axis {axis!r}") from None
    return list(func(node))


def node_test_matches(node: XMLNode, axis: str, node_test: str) -> bool:
    """Return True if ``node`` passes the node test ``node_test`` on ``axis``.

    Supported node tests are a name, ``*``, ``node()``, ``text()``,
    ``comment()`` and ``processing-instruction()``.
    """
    if node_test == "node()":
        return True
    if node_test == "text()":
        return node.node_type.value == "text"
    if node_test == "comment()":
        return node.node_type.value == "comment"
    if node_test == "processing-instruction()" or node_test.startswith(
        "processing-instruction("
    ):
        if node.node_type.value != "processing-instruction":
            return False
        if node_test == "processing-instruction()":
            return True
        target = node_test[len("processing-instruction(") : -1].strip("'\"")
        return node.name() == target
    principal = principal_node_type(axis)
    if principal == "attribute":
        if not isinstance(node, AttributeNode):
            return False
        return node_test == "*" or node.attr_name == node_test
    if not isinstance(node, ElementNode):
        return False
    return node_test == "*" or node.tag == node_test


def axis_step(node: XMLNode, axis: str, node_test: str) -> list[XMLNode]:
    """Return the nodes selected by ``axis::node_test`` from ``node``, in axis order."""
    return [
        candidate
        for candidate in axis_nodes(node, axis)
        if node_test_matches(candidate, axis, node_test)
    ]


# ---------------------------------------------------------------------------
# Set-at-a-time axis application (document order)
# ---------------------------------------------------------------------------


def apply_axis_to_set(nodes: Iterable[XMLNode], axis: str, node_test: str = "node()") -> list[XMLNode]:
    """Apply ``axis::node_test`` to every node in ``nodes``; return the union.

    The result is duplicate-free and in document order.  For tree axes this
    runs in time linear in the document size (each node is visited a
    bounded number of times), which is the key primitive of the linear-time
    Core XPath evaluator.
    """
    result: dict[int, XMLNode] = {}
    for node in nodes:
        for candidate in axis_nodes(node, axis):
            if node_test_matches(candidate, axis, node_test):
                result[candidate.uid] = candidate
    return sort_document_order(result.values())
