"""Serialisation of documents back to XML text.

The serializer is the inverse of :func:`repro.xmlmodel.parser.parse_xml`
(up to whitespace).  It is used by the benchmark harness to hand documents
to the :mod:`xml.etree.ElementTree` cross-check engine and by the examples
to show the documents produced by the hardness reductions.
"""

from __future__ import annotations

from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import (
    CommentNode,
    ElementNode,
    ProcessingInstructionNode,
    RootNode,
    TextNode,
    XMLNode,
)

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for inclusion in element content."""
    for char, replacement in _ESCAPES_TEXT.items():
        value = value.replace(char, replacement)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for inclusion in a double-quoted attribute value."""
    for char, replacement in _ESCAPES_ATTR.items():
        value = value.replace(char, replacement)
    return value


def serialize(document: Document, indent: str | None = None) -> str:
    """Serialise ``document`` to an XML string.

    Parameters
    ----------
    document:
        The document to serialise.
    indent:
        If given (e.g. ``"  "``), pretty-print with one level of that
        indentation per tree depth.  Text nodes suppress pretty-printing of
        their parent to keep mixed content intact.
    """
    parts: list[str] = []
    for child in document.root.children:
        _serialize_node(child, parts, indent, 0)
    text = "".join(parts)
    return text if indent is None else text.rstrip("\n") + "\n"


def _serialize_node(node: XMLNode, parts: list[str], indent: str | None, depth: int) -> None:
    prefix = "" if indent is None else indent * depth
    newline = "" if indent is None else "\n"
    if isinstance(node, TextNode):
        parts.append(escape_text(node.text))
        return
    if isinstance(node, CommentNode):
        parts.append(f"{prefix}<!--{node.text}-->{newline}")
        return
    if isinstance(node, ProcessingInstructionNode):
        data = f" {node.data}" if node.data else ""
        parts.append(f"{prefix}<?{node.target}{data}?>{newline}")
        return
    if isinstance(node, ElementNode):
        attrs = "".join(
            f' {attribute.attr_name}="{escape_attribute(attribute.value)}"'
            for attribute in node.attributes
        )
        if not node.children:
            parts.append(f"{prefix}<{node.tag}{attrs}/>{newline}")
            return
        has_text = any(isinstance(child, TextNode) for child in node.children)
        if has_text or indent is None:
            parts.append(f"{prefix}<{node.tag}{attrs}>")
            for child in node.children:
                _serialize_node(child, parts, None, 0)
            parts.append(f"</{node.tag}>{newline}")
        else:
            parts.append(f"{prefix}<{node.tag}{attrs}>{newline}")
            for child in node.children:
                _serialize_node(child, parts, indent, depth + 1)
            parts.append(f"{prefix}</{node.tag}>{newline}")
        return
    if isinstance(node, RootNode):
        for child in node.children:
            _serialize_node(child, parts, indent, depth)
        return
    raise TypeError(f"cannot serialise node of type {type(node).__name__}")
