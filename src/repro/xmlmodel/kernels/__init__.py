"""Pluggable kernel backends for the id-set algebra and axis kernels.

The id-native evaluation core bottoms out in a small number of *kernels*:
the sorted-array half of the :class:`~repro.xmlmodel.idset.IdSet` algebra
(intersection, union, difference on sorted id sequences), the
density-threshold conversions between the sorted-array and bitmask
materialisations, and the set-at-a-time axis kernels of
:class:`~repro.xmlmodel.index.DocumentIndex` (child/parent sweeps,
interval arithmetic for ``descendant``/``following``/``preceding``,
sibling-partition tests).  This package makes those kernels a swappable
**backend** behind one interface:

* :mod:`repro.xmlmodel.kernels.pure` — the reference implementation:
  pure-Python loops over flat integer arrays, exactly the code the
  id-native rewrite (PR 2) landed.  It has no third-party dependencies
  and is the differential baseline every other backend is tested
  against.
* :mod:`repro.xmlmodel.kernels.vectorized` — numpy-vectorised kernels
  over int32/int64 arrays; selected automatically when :mod:`numpy`
  imports, and typically ≥3× faster on 10k-node workloads (benchmark
  E20).

Selection happens once at import: ``REPRO_KERNEL_BACKEND=pure`` or
``=vectorized`` forces a backend (an unknown name raises
:class:`~repro.errors.KernelBackendError`), otherwise ``vectorized`` is
picked when numpy is importable and ``pure`` when it is not.  When the
pure backend is selected — explicitly or by fallback — numpy is never
imported.  The active backend is surfaced by
:meth:`repro.engine.XPathEngine.stats` and swappable for tests and
benchmarks via :func:`use_backend`.

Backends are *modules* implementing the :class:`KernelBackend` protocol.
All results are plain memberships: the same ids, in the same sorted
order, whichever backend computed them — the conformance suite
(``tests/xmlmodel/test_kernel_conformance.py``) and the Hypothesis
differential properties (``tests/properties/test_property_kernel_backends.py``)
fail if two backends ever disagree.

>>> from repro.xmlmodel.kernels import active_backend, use_backend
>>> active_backend().name in ("pure", "vectorized")
True
>>> with use_backend("pure") as backend:
...     backend.name
'pure'
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Protocol, Sequence, Union

from repro.errors import KernelBackendError

#: A sorted, duplicate-free id sequence.  Backends may return any
#: integer sequence honouring that contract: the pure backend returns
#: ``list``/``range`` values, the vectorized backend numpy arrays (and
#: ``range`` for contiguous intervals, so interval results stay O(1)).
SortedIds = Union[Sequence[int], range]

#: Environment variable forcing backend selection at import.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The backends this package knows how to resolve.
BACKEND_NAMES: tuple[str, ...] = ("pure", "vectorized")


class KernelBackend(Protocol):
    """The kernel surface :class:`IdSet` and :class:`DocumentIndex` delegate to.

    A backend is a module (or any object) providing these attributes.
    Set-algebra kernels receive the *sparse* (sorted-sequence) operands —
    the bitmask half of the algebra is shared, since Python-int boolean
    algebra already runs at C speed.  Axis kernels receive a per-index
    ``state`` built once by :meth:`index_state` (the pure backend uses
    the :class:`~repro.xmlmodel.index.DocumentIndex` itself; the
    vectorized backend builds numpy copies of its arrays) plus a
    non-empty sorted id sequence, and return the resulting sorted ids.
    """

    name: str

    # -- id-set algebra (sorted-sequence paths) -----------------------------
    def intersect_sorted(self, a: SortedIds, b: SortedIds) -> SortedIds: ...
    def union_sorted(self, a: SortedIds, b: SortedIds) -> SortedIds: ...
    def difference_sorted(self, a: SortedIds, b: SortedIds) -> SortedIds: ...

    # -- density-threshold conversions --------------------------------------
    def bits_from_ids(self, ids: SortedIds, universe: int) -> int: ...
    def ids_from_bits(self, bits: int, universe: int) -> SortedIds: ...
    def prepare_sorted(self, ids: SortedIds) -> SortedIds: ...

    # -- axis kernels --------------------------------------------------------
    def index_state(self, index: Any) -> Any: ...
    def child(self, state: Any, ids: SortedIds) -> SortedIds: ...
    def parent(self, state: Any, ids: SortedIds) -> SortedIds: ...
    def descendant(
        self, state: Any, ids: SortedIds, include_self: bool
    ) -> SortedIds: ...
    def ancestor(self, state: Any, ids: SortedIds) -> SortedIds: ...
    def following(self, state: Any, ids: SortedIds) -> SortedIds: ...
    def preceding(self, state: Any, ids: SortedIds) -> SortedIds: ...
    def following_sibling(self, state: Any, ids: SortedIds) -> SortedIds: ...
    def preceding_sibling(self, state: Any, ids: SortedIds) -> SortedIds: ...


def available_backends() -> tuple[str, ...]:
    """The backend names resolvable *right now* (numpy gates vectorized)."""
    try:
        import numpy  # noqa: F401  (availability probe only)
    except ImportError:
        return ("pure",)
    return BACKEND_NAMES


def backend_by_name(name: str) -> KernelBackend:
    """Resolve a backend by name, raising the typed error for unknown names."""
    if name == "pure":
        from repro.xmlmodel.kernels import pure

        return pure  # type: ignore[return-value]
    if name == "vectorized":
        try:
            import numpy  # noqa: F401
        except ImportError as error:
            raise KernelBackendError(
                "kernel backend 'vectorized' requires numpy, which is not "
                "importable; install numpy or select "
                f"{BACKEND_ENV_VAR}=pure"
            ) from error
        from repro.xmlmodel.kernels import vectorized

        return vectorized  # type: ignore[return-value]
    raise KernelBackendError(
        f"unknown kernel backend {name!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)}"
    )


def _select_backend() -> KernelBackend:
    """Import-time selection: env override first, then numpy auto-probe.

    The explicit override is resolved strictly (a missing numpy under
    ``=vectorized`` raises rather than silently degrading); without an
    override the probe falls back to pure, and — because the override
    path never probes — ``{BACKEND_ENV_VAR}=pure`` never imports numpy.
    """
    requested = os.environ.get(BACKEND_ENV_VAR)
    if requested is not None and requested.strip():
        return backend_by_name(requested.strip())
    try:
        import numpy  # noqa: F401
    except ImportError:
        return backend_by_name("pure")
    return backend_by_name("vectorized")


_active: KernelBackend = _select_backend()


def active_backend() -> KernelBackend:
    """The backend currently answering every kernel delegation."""
    return _active


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily swap the active backend (tests, benchmarks, demos).

    The swap is process-global, exactly like the import-time selection it
    overrides, so it is not safe under concurrent evaluation — use it
    around self-contained measurement or verification blocks only.
    """
    global _active
    previous = _active
    _active = backend_by_name(name)
    try:
        yield _active
    finally:
        _active = previous


__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "KernelBackend",
    "SortedIds",
    "active_backend",
    "available_backends",
    "backend_by_name",
    "use_backend",
]
