"""The numpy-vectorised kernel backend.

Every kernel here computes *exactly* the membership the pure backend
computes — the conformance suite asserts it op by op — but replaces the
per-id Python loops with whole-array numpy operations:

* the sparse set algebra runs on sorted int64 arrays via
  ``searchsorted`` membership probes (intersection/difference) and
  ``union1d``;
* the density-threshold conversions pack/unpack the bitmask through
  ``numpy.packbits``/``numpy.unpackbits`` instead of a per-byte table
  walk;
* ``child``/``following-sibling``/``preceding-sibling`` become O(|D|)
  boolean-mask selections over the structure arrays (a node is a child
  of S iff its parent is in S; a sibling test compares against the
  per-parent min/max member);
* ``descendant``/``following``/``preceding`` stay interval arithmetic,
  with the laminar-interval decomposition computed by a running-maximum
  scan and expanded by one ``repeat``/``arange`` step;
* ``ancestor`` uses the interval characterisation directly — ``j`` is an
  ancestor of some member iff the smallest member greater than ``j``
  lies inside ``j``'s subtree — via one ``searchsorted`` over the
  document, so deep trees cost O(|D| log |S|) rather than a chain walk
  per member.

Results are sorted numpy arrays (``range`` objects for contiguous
intervals); they flow back into :class:`~repro.xmlmodel.idset.IdSet`
unconverted and are turned into Python ints only at the API boundary
(:meth:`IdSet.tolist`, node materialisation).

This module is only imported once numpy has been resolved — backend
selection in :mod:`repro.xmlmodel.kernels` guarantees the pure path
never touches it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xmlmodel.index import DocumentIndex
    from repro.xmlmodel.kernels import SortedIds

#: The backend name, as selected by ``REPRO_KERNEL_BACKEND=vectorized``.
name = "vectorized"

_EMPTY = np.empty(0, dtype=np.int64)


def _as_array(ids: "SortedIds") -> Any:
    """View a sorted id sequence as an int64 numpy array (no-op if it is one)."""
    if isinstance(ids, np.ndarray):
        return ids
    if isinstance(ids, range):
        return np.arange(ids.start, ids.stop, dtype=np.int64)
    return np.asarray(ids, dtype=np.int64)


# -- id-set algebra (sorted-sequence paths) ---------------------------------


def intersect_sorted(a: "SortedIds", b: "SortedIds") -> "SortedIds":
    """Probe the smaller operand against the larger with ``searchsorted``."""
    small, large = _as_array(a), _as_array(b)
    if small.size > large.size:
        small, large = large, small
    if small.size == 0 or large.size == 0:
        return _EMPTY
    position = np.searchsorted(large, small)
    clipped = np.minimum(position, large.size - 1)
    hit = (position < large.size) & (large[clipped] == small)
    return small[hit]


def union_sorted(a: "SortedIds", b: "SortedIds") -> "SortedIds":
    """Sorted union of two sorted duplicate-free arrays."""
    return np.union1d(_as_array(a), _as_array(b))


def difference_sorted(a: "SortedIds", b: "SortedIds") -> "SortedIds":
    """Members of ``a`` absent from ``b`` (same probe as intersection)."""
    keep, drop = _as_array(a), _as_array(b)
    if keep.size == 0 or drop.size == 0:
        return keep
    position = np.searchsorted(drop, keep)
    clipped = np.minimum(position, drop.size - 1)
    hit = (position < drop.size) & (drop[clipped] == keep)
    return keep[~hit]


# -- density-threshold conversions ------------------------------------------


def bits_from_ids(ids: "SortedIds", universe: int) -> int:
    """Pack ids into the bitmask via a flag array and ``numpy.packbits``."""
    if isinstance(ids, range):
        if len(ids) == 0:
            return 0
        return ((1 << len(ids)) - 1) << ids[0]
    members = _as_array(ids)
    if members.size == 0:
        return 0
    flags = np.zeros(((universe + 7) >> 3) << 3, dtype=np.uint8)
    flags[members] = 1
    return int.from_bytes(np.packbits(flags, bitorder="little").tobytes(), "little")


def ids_from_bits(bits: int, universe: int) -> "SortedIds":
    """Unpack the bitmask via ``numpy.unpackbits`` + ``nonzero``."""
    if bits == 0:
        return _EMPTY
    buffer = np.frombuffer(bits.to_bytes((universe + 7) >> 3, "little"), dtype=np.uint8)
    flags = np.unpackbits(buffer, bitorder="little", count=universe)
    return np.nonzero(flags)[0]


def prepare_sorted(ids: "SortedIds") -> "SortedIds":
    """Convert long-lived sequences (tag partitions) to arrays exactly once."""
    if isinstance(ids, range):
        return ids
    return _as_array(ids)


# -- axis kernels ------------------------------------------------------------


class _IndexState:
    """Per-index numpy copies of the structure arrays the kernels read.

    Attribute names deliberately differ from the ``DocumentIndex`` slots
    (``parents`` vs ``parent`` …): these are private per-backend copies,
    not the frozen snapshot-shared arrays the immutability rule guards.
    """

    __slots__ = ("size", "parents", "ends", "firsts", "nexts", "prevs", "all_ids")

    def __init__(self, index: "DocumentIndex") -> None:
        self.size = index.size
        self.parents = np.asarray(index.parent, dtype=np.int64)
        self.ends = np.asarray(index.subtree_end, dtype=np.int64)
        self.firsts = np.asarray(index.first_child, dtype=np.int64)
        self.nexts = np.asarray(index.next_sibling, dtype=np.int64)
        self.prevs = np.asarray(index.prev_sibling, dtype=np.int64)
        self.all_ids = np.arange(index.size, dtype=np.int64)


def index_state(index: "DocumentIndex") -> _IndexState:
    """Build (once per index) the array state the kernels below consume."""
    return _IndexState(index)


def child(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """children(S) = { j : parent[j] ∈ S }, via one boolean-mask gather."""
    members = _as_array(ids)
    # Slot `size` (reached through parent == -1 wrapping to the last
    # index) stays False: members are always < size.
    mask = np.zeros(state.size + 1, dtype=bool)
    mask[members] = True
    return np.nonzero(mask[state.parents])[0]


def parent(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """One gather plus a sort and adjacent-difference dedup.

    (``numpy.unique`` would do, but its hash-based path costs ~3× a
    plain sort on 10k gathered parents.)
    """
    found = state.parents[_as_array(ids)]
    found = np.sort(found[found >= 0])
    if found.size <= 1:
        return found
    keep = np.empty(found.size, dtype=bool)
    keep[0] = True
    np.not_equal(found[1:], found[:-1], out=keep[1:])
    return found[keep]


def descendant(
    state: _IndexState, ids: "SortedIds", include_self: bool
) -> "SortedIds":
    """Laminar-interval decomposition by a running-max scan, then expansion."""
    members = _as_array(ids)
    ends = state.ends[members]
    if members.size == 1:
        lo = int(members[0]) + (0 if include_self else 1)
        return range(lo, int(ends[0]) + 1)
    # Subtree intervals are laminar: sorted by start, an interval is new
    # exactly when its start passes every earlier end.
    keep = np.empty(members.size, dtype=bool)
    keep[0] = True
    np.greater(members[1:], np.maximum.accumulate(ends)[:-1], out=keep[1:])
    lo = members[keep] + (0 if include_self else 1)
    hi = ends[keep] + 1
    lengths = hi - lo
    nonempty = lengths > 0
    lo, lengths = lo[nonempty], lengths[nonempty]
    if lo.size == 0:
        return range(0, 0)
    if lo.size == 1:
        return range(int(lo[0]), int(lo[0] + lengths[0]))
    # Expand disjoint ascending intervals in one repeat/arange step:
    # position p of part k holds lo[k] + (p - offset[k]).
    total = int(lengths.sum())
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    return np.repeat(lo - offsets, lengths) + np.arange(total, dtype=np.int64)


def ancestor(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """ancestors(S) = { j : min{ i ∈ S : i > j } ≤ subtree_end[j] }.

    The smallest member beyond ``j`` sits inside ``j``'s subtree iff
    ``j`` is a proper ancestor of some member — one ``searchsorted``
    over the whole document replaces every parent-chain walk, so cost is
    O(|D| log |S|) even on depth-|D| chains.
    """
    members = _as_array(ids)
    position = np.searchsorted(members, state.all_ids, side="right")
    clipped = np.minimum(position, members.size - 1)
    hit = (position < members.size) & (members[clipped] <= state.ends)
    return np.nonzero(hit)[0]


def following(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """following(S) = the contiguous interval past the earliest subtree end."""
    cutoff = int(state.ends[_as_array(ids)].min())
    return range(cutoff + 1, state.size)


def preceding(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """preceding(S) = { j < max S : subtree_end[j] < max S }, one masked scan."""
    cutoff = int(_as_array(ids)[-1])
    return np.nonzero(state.ends[:cutoff] < cutoff)[0]


def _per_parent_extreme(
    state: _IndexState, ids: "SortedIds", last: bool
) -> tuple[Any, Any]:
    """(parents present in S, the min — or max, with ``last`` — member each).

    Members arrive ascending, so the first occurrence of a parent in the
    gathered parent array marks its smallest member and the first
    occurrence in the reversed array its largest; ``numpy.unique``'s
    ``return_index`` hands back exactly those occurrences.
    """
    members = _as_array(ids)
    parents = state.parents[members]
    valid = parents >= 0
    parents, members = parents[valid], members[valid]
    if last:
        parents, members = parents[::-1], members[::-1]
    present, first_occurrence = np.unique(parents, return_index=True)
    return present, members[first_occurrence]


def following_sibling(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """j follows a sibling in S iff the least member under parent[j] is < j."""
    present, least = _per_parent_extreme(state, ids, last=False)
    if present.size == 0:
        return _EMPTY
    # Sentinel `size` never satisfies `< j`; slot `size` (parent == -1
    # wrapping to the last index) keeps the sentinel.
    least_member = np.full(state.size + 1, state.size, dtype=np.int64)
    least_member[present] = least
    return np.nonzero(least_member[state.parents] < state.all_ids)[0]


def preceding_sibling(state: _IndexState, ids: "SortedIds") -> "SortedIds":
    """j precedes a sibling in S iff the greatest member under parent[j] is > j."""
    present, greatest = _per_parent_extreme(state, ids, last=True)
    if present.size == 0:
        return _EMPTY
    greatest_member = np.full(state.size + 1, -1, dtype=np.int64)
    greatest_member[present] = greatest
    return np.nonzero(greatest_member[state.parents] > state.all_ids)[0]
