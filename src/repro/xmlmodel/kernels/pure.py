"""The pure-Python kernel backend: the reference every backend must match.

This module is the id-set algebra and the axis kernels exactly as the
id-native rewrite (PR 2) shipped them, factored out of
``xmlmodel/idset.py`` and ``xmlmodel/index.py`` unchanged: flat loops
over integer arrays, frozenset membership for sparse set algebra, and a
byte-table unpack for the bitmask→ids conversion.  It has no third-party
dependencies — importing it never imports numpy — and it doubles as the
differential baseline of the backend conformance suite, the same role
``NodeSetCoreXPathEvaluator`` plays for the evaluators.

Axis kernels take the :class:`~repro.xmlmodel.index.DocumentIndex`
itself as their per-index state (:func:`index_state` is the identity)
and a non-empty sorted id sequence; they return sorted, duplicate-free
id sequences (``list`` or, for contiguous intervals, ``range``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xmlmodel.index import DocumentIndex
    from repro.xmlmodel.kernels import SortedIds

#: The backend name, as selected by ``REPRO_KERNEL_BACKEND=pure``.
name = "pure"

#: Bit positions set in each possible byte value — the unpack table used to
#: convert a bitmask back into sorted ids eight members at a time.
_BYTE_IDS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


# -- id-set algebra (sorted-sequence paths) ---------------------------------


def intersect_sorted(a: "SortedIds", b: "SortedIds") -> "SortedIds":
    """Members of both sequences: scan the smaller against a hash of the larger."""
    small, large = sorted((a, b), key=len)
    members = frozenset(large)
    return [i for i in small if i in members]


def union_sorted(a: "SortedIds", b: "SortedIds") -> "SortedIds":
    """Members of either sequence, deduplicated and re-sorted."""
    return sorted(set(a).union(b))


def difference_sorted(a: "SortedIds", b: "SortedIds") -> "SortedIds":
    """Members of ``a`` not in ``b``."""
    members = frozenset(b)
    return [i for i in a if i not in members]


# -- density-threshold conversions ------------------------------------------


def bits_from_ids(ids: "SortedIds", universe: int) -> int:
    """Pack a sorted id sequence into a bitmask int (bit ``i`` ⇔ member ``i``)."""
    if isinstance(ids, range):
        if len(ids) == 0:
            return 0
        return ((1 << len(ids)) - 1) << ids[0]
    buffer = bytearray((universe + 7) >> 3)
    for i in ids:
        buffer[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buffer, "little")


def ids_from_bits(bits: int, universe: int) -> "SortedIds":
    """Unpack a bitmask into its sorted member list, one byte at a time."""
    out: list[int] = []
    append = out.append
    base = 0
    for byte in bits.to_bytes((universe + 7) >> 3, "little"):
        if byte:
            for bit in _BYTE_IDS[byte]:
                append(base + bit)
        base += 8
    return out


def prepare_sorted(ids: "SortedIds") -> "SortedIds":
    """Hook for backends that pre-convert long-lived sequences (identity here)."""
    return ids


# -- axis kernels ------------------------------------------------------------


def index_state(index: "DocumentIndex") -> "DocumentIndex":
    """The pure kernels read the index's own flat lists — no conversion."""
    return index


def child(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """First-child/next-sibling chain sweeps from every member."""
    first_child = state.first_child
    next_sibling = state.next_sibling
    out: list[int] = []
    append = out.append
    for i in ids:
        j = first_child[i]
        while j != -1:
            append(j)
            j = next_sibling[j]
    # Children of distinct parents are distinct, so only sorting is
    # needed (sibling runs interleave when one member sits inside
    # another member's subtree).
    out.sort()
    return out


def parent(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """One array lookup per member, deduplicated."""
    parent_ids = state.parent
    return sorted({parent_ids[i] for i in ids if parent_ids[i] != -1})


def _parts(parts: list[range]) -> "SortedIds":
    """Flatten disjoint ascending ranges; a single part stays a ``range``."""
    if not parts:
        return range(0, 0)
    if len(parts) == 1:
        return parts[0]
    out: list[int] = []
    for part in parts:
        out.extend(part)
    return out


def descendant(
    state: "DocumentIndex", ids: "SortedIds", include_self: bool
) -> "SortedIds":
    """The laminar-interval decomposition of a (or-self) descendant set.

    Members are visited in ascending id order; a member inside the
    interval already covered is skipped outright, so the produced ranges
    are disjoint and ascending.
    """
    subtree_end = state.subtree_end
    parts: list[range] = []
    covered_end = -1
    for i in ids:
        if i <= covered_end:
            continue
        covered_end = subtree_end[i]
        lo = i if include_self else i + 1
        if lo <= covered_end:
            parts.append(range(lo, covered_end + 1))
    return _parts(parts)


def ancestor(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """Parent-chain walks; stop as soon as a chain joins the result."""
    parent_ids = state.parent
    seen: set[int] = set()
    for i in ids:
        j = parent_ids[i]
        while j != -1 and j not in seen:
            seen.add(j)
            j = parent_ids[j]
    return sorted(seen)


def following(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """following(S) = the contiguous interval past the earliest subtree end."""
    subtree_end = state.subtree_end
    cutoff = min(subtree_end[i] for i in ids)
    return range(cutoff + 1, state.size)


def preceding(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """preceding(S) = [0, max S) minus the ancestors of max S.

    An id ``j < c`` has ``subtree_end[j] >= c`` exactly when it is an
    ancestor of ``c``, so the preceding set is the prefix interval with
    the ancestor chain punched out — O(depth) ranges.
    """
    cutoff = ids[-1]
    parent_ids = state.parent
    chain = []
    j = parent_ids[cutoff]
    while j != -1:
        chain.append(j)
        j = parent_ids[j]
    chain.reverse()
    bounds = chain + [cutoff]
    parts = [range(bounds[t] + 1, bounds[t + 1]) for t in range(len(bounds) - 1)]
    return _parts([part for part in parts if len(part)])


def following_sibling(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """Sibling-chain walks; a chain already in the result is closed rightward."""
    next_sibling = state.next_sibling
    seen: set[int] = set()
    for i in ids:
        j = next_sibling[i]
        while j != -1 and j not in seen:
            seen.add(j)
            j = next_sibling[j]
    return sorted(seen)


def preceding_sibling(state: "DocumentIndex", ids: "SortedIds") -> "SortedIds":
    """The mirror sweep over ``prev_sibling`` chains."""
    prev_sibling = state.prev_sibling
    seen: set[int] = set()
    for i in ids:
        j = prev_sibling[i]
        while j != -1 and j not in seen:
            seen.add(j)
            j = prev_sibling[j]
    return sorted(seen)
