"""The XML data-model substrate: nodes, documents, parsing, axes, generators."""

from repro.xmlmodel.axes import (
    AXIS_NAMES,
    CORE_XPATH_AXES,
    apply_axis_to_set,
    axis_nodes,
    axis_step,
    inverse_axis,
    is_reverse_axis,
    node_test_matches,
    principal_node_type,
)
from repro.xmlmodel.document import Document, DocumentBuilder, build_tree
from repro.xmlmodel.idset import IdSet
from repro.xmlmodel.index import DocumentIndex
from repro.xmlmodel.generators import (
    auction_document,
    caterpillar_document,
    chain_document,
    complete_tree_document,
    labelled_list_document,
    random_document,
    wide_document,
)
from repro.xmlmodel.nodes import (
    AttributeNode,
    CommentNode,
    ElementNode,
    NodeType,
    ProcessingInstructionNode,
    RootNode,
    TextNode,
    XMLNode,
    sort_document_order,
)
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import serialize

__all__ = [
    "AXIS_NAMES",
    "CORE_XPATH_AXES",
    "AttributeNode",
    "CommentNode",
    "Document",
    "DocumentBuilder",
    "DocumentIndex",
    "ElementNode",
    "IdSet",
    "NodeType",
    "ProcessingInstructionNode",
    "RootNode",
    "TextNode",
    "XMLNode",
    "apply_axis_to_set",
    "auction_document",
    "axis_nodes",
    "axis_step",
    "build_tree",
    "caterpillar_document",
    "chain_document",
    "complete_tree_document",
    "inverse_axis",
    "is_reverse_axis",
    "labelled_list_document",
    "node_test_matches",
    "parse_xml",
    "principal_node_type",
    "random_document",
    "serialize",
    "sort_document_order",
    "wide_document",
]
