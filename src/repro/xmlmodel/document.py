"""The :class:`Document` wrapper over a node tree.

A ``Document`` owns a frozen node tree: document-order positions have been
assigned, per-tag indexes built, and the node population ("dom" in the
paper's terminology) fixed.  All evaluators operate on documents rather
than on bare nodes so that they can rely on these precomputed structures —
the linear-time Core XPath algorithm, in particular, depends on being able
to enumerate ``dom`` and to compare document order in constant time.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.xmlmodel.index import DocumentIndex
from repro.xmlmodel.nodes import (
    AttributeNode,
    CommentNode,
    ElementNode,
    NodeType,
    ProcessingInstructionNode,
    RootNode,
    TextNode,
    XMLNode,
)


class Document:
    """A frozen XML document tree with document-order and tag indexes.

    Parameters
    ----------
    root:
        The :class:`RootNode` of the tree.  The constructor freezes the
        tree: it assigns ``order`` to every node (root, elements, text,
        comments, processing instructions and attributes) and builds the
        indexes used by the evaluators.
    """

    def __init__(self, root: RootNode) -> None:
        if not isinstance(root, RootNode):
            raise TypeError("Document requires a RootNode")
        self.root = root
        self._nodes: list[XMLNode] = []
        self._attributes: list[AttributeNode] = []
        self._elements_by_tag: dict[str, list[ElementNode]] = {}
        self._index: Optional[DocumentIndex] = None
        self._freeze()

    # -- construction helpers ------------------------------------------------

    def _freeze(self) -> None:
        """Assign document order and build indexes.

        Attribute nodes are ordered directly after their owning element and
        before that element's children, following the XPath data model.
        """
        counter = 0
        stack: list[XMLNode] = [self.root]
        ordered: list[XMLNode] = []
        attributes: list[AttributeNode] = []
        while stack:
            node = stack.pop()
            node.order = counter
            counter += 1
            node.document = self
            ordered.append(node)
            if isinstance(node, ElementNode):
                for attribute in node.attributes:
                    attribute.order = counter
                    counter += 1
                    attribute.document = self
                    attributes.append(attribute)
                self._elements_by_tag.setdefault(node.tag, []).append(node)
            stack.extend(reversed(node.children))
        self._nodes = ordered
        self._attributes = attributes

    # -- node populations ------------------------------------------------------

    @property
    def nodes(self) -> list[XMLNode]:
        """All tree nodes (root, elements, text, comments, PIs) in document order.

        Attribute nodes are excluded, matching the paper's ``dom`` which
        ranges over tree nodes; they remain reachable via the attribute axis.
        """
        return self._nodes

    @property
    def attributes(self) -> list[AttributeNode]:
        """All attribute nodes in document order."""
        return self._attributes

    @property
    def elements(self) -> list[ElementNode]:
        """All element nodes in document order."""
        return [node for node in self._nodes if isinstance(node, ElementNode)]

    def dom(self) -> list[XMLNode]:
        """Return the paper's ``dom``: the root plus all element nodes.

        The hardness constructions and the Singleton-Success checker range
        over this set.  Text/comment/PI nodes are still part of the document
        and reachable by axes, but the complexity accounting in the paper is
        in terms of elements.
        """
        return [
            node
            for node in self._nodes
            if node.node_type in (NodeType.ROOT, NodeType.ELEMENT)
        ]

    @property
    def index(self) -> DocumentIndex:
        """The :class:`DocumentIndex` for this document, built on first use.

        Building costs one O(|D|) pass and is cached for the lifetime of
        the document, so every evaluator (and every query in a batch)
        shares the same arrays.  A node's id in the index is its pre-order
        rank among the tree nodes (attributes have no id).

        Examples
        --------
        >>> from repro.xmlmodel import parse_xml
        >>> document = parse_xml("<a><b/><b/></a>")
        >>> document.has_index
        False
        >>> document.index.size == len(document.nodes)
        True
        >>> document.index is document.index    # built once, then cached
        True
        """
        if self._index is None:
            self._index = DocumentIndex(self._nodes)
        return self._index

    @property
    def has_index(self) -> bool:
        """True if the document index has already been built."""
        return self._index is not None

    def elements_with_tag(self, tag: str) -> list[ElementNode]:
        """Return all elements with the given tag, in document order."""
        return list(self._elements_by_tag.get(tag, []))

    @property
    def size(self) -> int:
        """The number of nodes in the document (|D| in the paper)."""
        return len(self._nodes) + len(self._attributes)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        doc_elem = self.root.document_element()
        tag = doc_elem.tag if doc_elem is not None else None
        return f"<Document root_tag={tag!r} size={self.size}>"


class DocumentBuilder:
    """Imperative builder producing a :class:`Document`.

    The builder exposes the small push/pop interface used by the XML parser
    and by the synthetic document generators::

        builder = DocumentBuilder()
        builder.start_element("library", {"city": "Vienna"})
        builder.start_element("book")
        builder.text("PODS 2003")
        builder.end_element()
        builder.end_element()
        document = builder.finish()
    """

    def __init__(self) -> None:
        self._root = RootNode()
        self._stack: list[XMLNode] = [self._root]
        self._finished = False

    @property
    def current(self) -> XMLNode:
        """The node new children are currently appended to."""
        return self._stack[-1]

    def start_element(
        self, tag: str, attributes: Optional[dict[str, str]] = None
    ) -> ElementNode:
        """Open a new element and make it the current node."""
        self._check_open()
        element = ElementNode(tag, attributes)
        self.current.append_child(element)
        self._stack.append(element)
        return element

    def end_element(self) -> None:
        """Close the current element."""
        self._check_open()
        if len(self._stack) == 1:
            raise ValueError("end_element() without matching start_element()")
        self._stack.pop()

    def add_element(
        self, tag: str, attributes: Optional[dict[str, str]] = None
    ) -> ElementNode:
        """Add an empty element without descending into it."""
        element = self.start_element(tag, attributes)
        self.end_element()
        return element

    def text(self, data: str) -> TextNode:
        """Append a text node to the current element."""
        self._check_open()
        node = TextNode(data)
        self.current.append_child(node)
        return node

    def comment(self, data: str) -> CommentNode:
        """Append a comment node to the current element."""
        self._check_open()
        node = CommentNode(data)
        self.current.append_child(node)
        return node

    def processing_instruction(self, target: str, data: str = "") -> ProcessingInstructionNode:
        """Append a processing-instruction node to the current element."""
        self._check_open()
        node = ProcessingInstructionNode(target, data)
        self.current.append_child(node)
        return node

    def finish(self) -> Document:
        """Close the builder and return the frozen :class:`Document`."""
        self._check_open()
        if len(self._stack) != 1:
            raise ValueError(
                f"{len(self._stack) - 1} element(s) left unclosed at finish()"
            )
        self._finished = True
        return Document(self._root)

    def _check_open(self) -> None:
        if self._finished:
            raise ValueError("builder already finished")


def build_tree(spec, builder: Optional[DocumentBuilder] = None) -> Document:
    """Build a document from a nested-tuple specification.

    The specification format is ``(tag, attributes_dict, children_list)``
    where ``attributes_dict`` and ``children_list`` may be omitted, and a
    bare string is a text node.  This compact form is used heavily in tests::

        build_tree(("a", [("b", {"id": "1"}, ["hello"]), ("b",)]))
    """
    own_builder = builder is None
    if builder is None:
        builder = DocumentBuilder()
    _build_tree_node(spec, builder)
    if own_builder:
        return builder.finish()
    return None  # type: ignore[return-value]


def _build_tree_node(spec, builder: DocumentBuilder) -> None:
    if isinstance(spec, str):
        builder.text(spec)
        return
    if not isinstance(spec, tuple) or not spec:
        raise TypeError(f"invalid tree spec: {spec!r}")
    tag = spec[0]
    attributes: dict[str, str] = {}
    children: list = []
    for part in spec[1:]:
        if isinstance(part, dict):
            attributes = part
        elif isinstance(part, list):
            children = part
        else:
            raise TypeError(f"invalid tree spec component: {part!r}")
    builder.start_element(tag, attributes)
    for child in children:
        _build_tree_node(child, builder)
    builder.end_element()
