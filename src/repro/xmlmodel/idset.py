"""Id sets: the native node-set representation of the indexed evaluators.

A :class:`DocumentIndex` names every tree node by its document-order id, a
small integer in ``[0, size)``.  The id-native Core XPath evaluator keeps
all of its frontiers and condition sets as :class:`IdSet` values over that
universe instead of Python sets of node objects, so set algebra never
hashes nodes and axis application never leaves flat integer land.

An :class:`IdSet` is immutable and keeps up to two interchangeable
materialisations of the same membership:

* ``ids`` — the members as a sorted sequence (a ``list`` or, for
  contiguous intervals such as a ``descendant`` result, a ``range``; the
  vectorized kernel backend stores numpy arrays here).  This is what the
  axis kernels iterate.
* ``bits`` — the members as a Python ``int`` bitmask (bit ``i`` set iff
  ``i`` is a member).  Boolean algebra on bitmasks runs at C speed
  regardless of cardinality, which is what makes ``and``/``or``/``not``
  conditions over whole documents cheap.

Either form is computed lazily from the other and cached, so repeated
algebra over the same set (the common case for cached condition sets)
pays the conversion at most once.

**Density threshold.**  Binary set algebra picks its strategy per
operation: if either operand is *dense* — at least ``1/DENSITY_FACTOR``
of the universe, or already bitmask-backed — the operation runs on
bitmasks; otherwise it runs on the sorted members directly.  Complements
always use bitmasks.  The rule is documented (and relied upon) in
``docs/architecture.md``.

**Kernel backends.**  The strategy choice lives here, but the work of
each strategy leg is delegated to the process-wide kernel backend
(:mod:`repro.xmlmodel.kernels`): sparse merges and the ids↔bits
conversions run as pure-Python loops under the ``pure`` backend and as
numpy array operations under ``vectorized``.  Bitmask boolean algebra is
shared — Python ``int`` bitwise operations already run at C speed.
Whatever the backend, membership results are identical; only the
concrete sequence type behind :attr:`IdSet.ids` differs (see
``docs/kernels.md``).

>>> a = IdSet.from_range(2, 6, universe=8)     # {2, 3, 4, 5}
>>> b = IdSet.from_iterable([0, 3, 5], universe=8)
>>> (a & b).tolist()
[3, 5]
>>> a.complement().tolist()
[0, 1, 6, 7]
>>> len(a | b), 4 in (a | b)
(5, True)
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator

from repro.xmlmodel.kernels import SortedIds, active_backend

__all__ = ["DENSITY_FACTOR", "IdSet", "SortedIds"]

#: A set counts as dense once it holds at least ``universe / DENSITY_FACTOR``
#: members; dense operands push binary set algebra onto the bitmask path.
DENSITY_FACTOR = 8


class IdSet:
    """An immutable set of document-order ids over a fixed universe.

    Build one with :meth:`empty`, :meth:`full`, :meth:`from_range`,
    :meth:`from_sorted` (input must already be sorted and duplicate-free)
    or :meth:`from_iterable` (input is normalised).  All binary operations
    require both operands to share the same ``universe``.
    """

    __slots__ = ("universe", "_ids", "_bits")

    def __init__(
        self,
        universe: int,
        ids: SortedIds | None = None,
        bits: int | None = None,
    ) -> None:
        if ids is None and bits is None:
            raise ValueError("IdSet needs at least one materialisation")
        self.universe = universe
        self._ids = ids
        self._bits = bits

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls, universe: int) -> "IdSet":
        """The empty set over ``[0, universe)``."""
        return cls(universe, ids=range(0, 0), bits=0)

    @classmethod
    def full(cls, universe: int) -> "IdSet":
        """The full universe ``{0, …, universe-1}``."""
        return cls(universe, ids=range(universe), bits=(1 << universe) - 1)

    @classmethod
    def from_range(cls, lo: int, hi: int, universe: int) -> "IdSet":
        """The contiguous interval ``{lo, …, hi-1}`` (empty when hi <= lo)."""
        if hi <= lo:
            return cls.empty(universe)
        return cls(universe, ids=range(lo, hi))

    @classmethod
    def from_sorted(cls, ids: SortedIds, universe: int) -> "IdSet":
        """Wrap an already-sorted, duplicate-free id sequence (not copied)."""
        return cls(universe, ids=ids)

    @classmethod
    def from_iterable(cls, ids: Iterable[int], universe: int) -> "IdSet":
        """Build from arbitrary ids, deduplicating and sorting."""
        return cls(universe, ids=sorted(set(ids)))

    @classmethod
    def from_bits(cls, bits: int, universe: int) -> "IdSet":
        """Wrap a bitmask (bit ``i`` set iff ``i`` is a member)."""
        return cls(universe, bits=bits)

    # -- materialisations -----------------------------------------------------

    @property
    def ids(self) -> SortedIds:
        """The members as a sorted sequence (materialised lazily)."""
        if self._ids is None:
            self._ids = active_backend().ids_from_bits(
                self._bits, self.universe  # type: ignore[arg-type]
            )
        return self._ids

    @property
    def bits(self) -> int:
        """The members as a bitmask (materialised lazily)."""
        if self._bits is None:
            self._bits = active_backend().bits_from_ids(
                self._ids, self.universe  # type: ignore[arg-type]
            )
        return self._bits

    @property
    def is_dense(self) -> bool:
        """True if algebra involving this set takes the bitmask path."""
        return self._bits is not None or len(self) * DENSITY_FACTOR >= self.universe

    def tolist(self) -> list[int]:
        """The members as a plain ``list`` of Python ints.

        This is the API-boundary conversion: whichever sequence type the
        active kernel backend produced (list, ``range``, ``array``,
        numpy array, memoryview), the result is an ordinary sorted list
        safe to serialise or hand to non-kernel code.
        """
        members = self.ids
        converter = getattr(members, "tolist", None)
        if converter is not None:
            result: list[int] = converter()
            return result
        return list(members)

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        if self._ids is not None:
            return len(self._ids)
        return self._bits.bit_count()  # type: ignore[union-attr]

    def __bool__(self) -> bool:
        if self._ids is not None:
            return len(self._ids) > 0
        return self._bits != 0

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids)

    def __contains__(self, i: int) -> bool:
        if not 0 <= i < self.universe:
            return False
        if self._bits is not None:
            return self._bits >> i & 1 == 1
        ids = self._ids
        position = bisect_left(ids, i)  # type: ignore[arg-type]
        return position < len(ids) and ids[position] == i  # type: ignore[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdSet):
            return NotImplemented
        return self.universe == other.universe and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.universe, self.bits))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "bits" if self._ids is None else type(self._ids).__name__
        return f"<IdSet {len(self)}/{self.universe} as {shape}>"

    # -- algebra --------------------------------------------------------------

    def _check_universe(self, other: "IdSet") -> None:
        if self.universe != other.universe:
            raise ValueError(
                f"universe mismatch: {self.universe} vs {other.universe}"
            )

    def __and__(self, other: "IdSet") -> "IdSet":
        self._check_universe(other)
        if self.is_dense or other.is_dense:
            return IdSet.from_bits(self.bits & other.bits, self.universe)
        return IdSet.from_sorted(
            active_backend().intersect_sorted(self.ids, other.ids), self.universe
        )

    def __or__(self, other: "IdSet") -> "IdSet":
        self._check_universe(other)
        if not self:
            return other
        if not other:
            return self
        if self.is_dense or other.is_dense:
            return IdSet.from_bits(self.bits | other.bits, self.universe)
        return IdSet.from_sorted(
            active_backend().union_sorted(self.ids, other.ids), self.universe
        )

    def __sub__(self, other: "IdSet") -> "IdSet":
        self._check_universe(other)
        if self.is_dense or other.is_dense:
            mask = (1 << self.universe) - 1
            return IdSet.from_bits(self.bits & (mask ^ other.bits), self.universe)
        return IdSet.from_sorted(
            active_backend().difference_sorted(self.ids, other.ids), self.universe
        )

    def complement(self) -> "IdSet":
        """The universe minus this set (always on the bitmask path)."""
        mask = (1 << self.universe) - 1
        return IdSet.from_bits(mask ^ self.bits, self.universe)
