"""Node classes of the XPath 1.0 data model.

The XPath data model views an XML document as a tree of seven node kinds;
this module implements the five that matter for query evaluation (root,
element, attribute, text and comment nodes) plus processing instructions.
Namespace nodes are intentionally omitted — the paper never uses them and
they do not interact with any of its complexity results.

Nodes are plain Python objects linked by ``parent`` / ``children``
references.  Document order is represented by an integer ``order`` assigned
by :class:`repro.xmlmodel.document.Document` when the tree is frozen;
comparing two nodes' ``order`` attributes compares their document positions.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # import cycle: document.py imports this module
    from repro.xmlmodel.document import Document


class NodeType(enum.Enum):
    """The node kinds of the XPath 1.0 data model (minus namespace nodes)."""

    ROOT = "root"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


_node_counter = itertools.count()


class XMLNode:
    """Common behaviour of every node in the data model.

    Parameters
    ----------
    node_type:
        The :class:`NodeType` of this node.

    Notes
    -----
    ``order`` is ``-1`` until the owning :class:`Document` freezes the tree
    and assigns document-order positions.  ``uid`` is a process-unique id
    used for hashing before the order is assigned.
    """

    __slots__ = ("node_type", "parent", "children", "order", "uid", "document")

    def __init__(self, node_type: NodeType) -> None:
        self.node_type = node_type
        self.parent: Optional[XMLNode] = None
        self.children: list[XMLNode] = []
        self.order: int = -1
        self.uid: int = next(_node_counter)
        self.document: Optional[Document] = None  # set by Document.freeze()

    # -- tree construction -------------------------------------------------

    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child of this node and return it."""
        if child.parent is not None:
            raise ValueError("node already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    # -- structural queries -------------------------------------------------

    def is_element(self) -> bool:
        """Return True if this is an element node."""
        return self.node_type is NodeType.ELEMENT

    def is_root(self) -> bool:
        """Return True if this is the conceptual root node of a document."""
        return self.node_type is NodeType.ROOT

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield every descendant (not including self) in document order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants_or_self(self) -> Iterator["XMLNode"]:
        """Yield this node and every descendant in document order."""
        yield self
        yield from self.iter_descendants()

    def iter_ancestors(self) -> Iterator["XMLNode"]:
        """Yield every ancestor of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XMLNode":
        """Return the root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def child_index(self) -> int:
        """Return this node's index among its parent's children (0-based).

        The root node has no parent and returns ``0``.
        """
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    # -- XPath string value -------------------------------------------------

    def string_value(self) -> str:
        """Return the XPath string-value of this node.

        For root and element nodes this is the concatenation of the
        string-values of all descendant text nodes, in document order.
        """
        parts = [
            node.text
            for node in self.iter_descendants_or_self()
            if isinstance(node, TextNode)
        ]
        return "".join(parts)

    # -- naming --------------------------------------------------------------

    def name(self) -> str:
        """Return the expanded-name of the node ('' for unnamed node kinds)."""
        return ""

    # -- dunder helpers -------------------------------------------------------

    # Equality and hashing are deliberately left at Python's identity
    # defaults: two node objects are the same node iff they are the same
    # object, and the C-level identity hash keeps set-heavy axis code off
    # the interpreter's method-dispatch path.

    def __lt__(self, other: "XMLNode") -> bool:
        if self.order < 0 or other.order < 0:
            raise ValueError("document order not assigned; freeze the document first")
        return self.order < other.order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} order={self.order}>"


class RootNode(XMLNode):
    """The conceptual root node that sits above the document element."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(NodeType.ROOT)

    def document_element(self) -> Optional["ElementNode"]:
        """Return the single element child of the root, if any."""
        for child in self.children:
            if isinstance(child, ElementNode):
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RootNode order={self.order}>"


class ElementNode(XMLNode):
    """An element node with a tag name and attribute nodes."""

    __slots__ = ("tag", "attributes")

    def __init__(self, tag: str, attributes: Optional[dict[str, str]] = None) -> None:
        super().__init__(NodeType.ELEMENT)
        self.tag = tag
        self.attributes: list[AttributeNode] = []
        if attributes:
            for attr_name, attr_value in attributes.items():
                self.set_attribute(attr_name, attr_value)

    def name(self) -> str:
        return self.tag

    def set_attribute(self, attr_name: str, attr_value: str) -> "AttributeNode":
        """Set attribute ``attr_name`` to ``attr_value``, replacing any old value."""
        for attribute in self.attributes:
            if attribute.attr_name == attr_name:
                attribute.value = attr_value
                return attribute
        attribute = AttributeNode(attr_name, attr_value)
        attribute.parent = self
        self.attributes.append(attribute)
        return attribute

    def get_attribute(self, attr_name: str) -> Optional[str]:
        """Return the value of attribute ``attr_name`` or None if absent."""
        for attribute in self.attributes:
            if attribute.attr_name == attr_name:
                return attribute.value
        return None

    def element_children(self) -> list["ElementNode"]:
        """Return the element children in document order."""
        return [child for child in self.children if isinstance(child, ElementNode)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElementNode {self.tag!r} order={self.order}>"


class AttributeNode(XMLNode):
    """An attribute node.

    Attribute nodes have an element parent but are *not* children of that
    element; they are only reachable through the ``attribute`` axis, exactly
    as prescribed by the XPath data model.
    """

    __slots__ = ("attr_name", "value")

    def __init__(self, attr_name: str, value: str) -> None:
        super().__init__(NodeType.ATTRIBUTE)
        self.attr_name = attr_name
        self.value = value

    def name(self) -> str:
        return self.attr_name

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AttributeNode {self.attr_name}={self.value!r} order={self.order}>"


class TextNode(XMLNode):
    """A text node holding character data."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__(NodeType.TEXT)
        self.text = text

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TextNode {self.text!r} order={self.order}>"


class CommentNode(XMLNode):
    """A comment node."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__(NodeType.COMMENT)
        self.text = text

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommentNode {self.text!r} order={self.order}>"


class ProcessingInstructionNode(XMLNode):
    """A processing-instruction node with a target and data string."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        super().__init__(NodeType.PROCESSING_INSTRUCTION)
        self.target = target
        self.data = data

    def name(self) -> str:
        return self.target

    def string_value(self) -> str:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PINode {self.target!r} order={self.order}>"


def sort_document_order(nodes: Iterable[XMLNode]) -> list[XMLNode]:
    """Return ``nodes`` as a list sorted into document order (duplicates removed)."""
    unique = {node.uid: node for node in nodes}
    return sorted(unique.values(), key=lambda node: node.order)
