"""Array-backed document index for constant-factor-cheap axis evaluation.

The evaluators in :mod:`repro.evaluation` spend nearly all of their time
applying axes.  The object-walk implementations traverse ``parent`` /
``children`` pointers and hash node objects into Python sets, which is
linear but with a heavy constant.  :class:`DocumentIndex` precomputes, in
one O(|D|) pass, a handful of flat integer arrays over the tree nodes in
document order:

* ``pre`` / ``post`` — pre- and post-order ranks.  Because tree nodes are
  stored in pre-order, a node's id *is* its pre-order rank, and the
  descendants of node ``i`` are exactly the contiguous id interval
  ``i+1 .. subtree_end[i]``.  The classic interval characterisations
  follow: ``ancestor(j, i)  ⇔  j < i ≤ subtree_end[j]``,
  ``following(i) = { j : j > subtree_end[i] }`` and
  ``preceding(i) = { j : subtree_end[j] < i }``.
* ``parent`` / ``first_child`` / ``next_sibling`` / ``prev_sibling`` —
  structure links as integer ids (``-1`` when absent), so axis sweeps
  never touch node objects.
* ``ids_by_tag`` / ``element_ids`` — per-tag (and per-node-kind)
  partitions of the ids, kept sorted in document order so a name test
  over a contiguous axis interval reduces to a binary search, and a name
  test over an arbitrary id set to a sorted-partition intersection.

Two set-at-a-time surfaces are exposed on top of these arrays:

* the **id-native kernels** (:meth:`axis_idset`, :meth:`filter_idset`)
  take and return :class:`~repro.xmlmodel.idset.IdSet` values — this is
  the hot path of the id-native Core XPath evaluator, which only
  materialises nodes once, via :meth:`idset_to_node_list`;
* the **raw-id / node-set forms** (:meth:`axis_id_set`,
  :meth:`axis_node_set`, :meth:`step_ids`) work on plain ``set[int]`` /
  node sets and serve the per-node evaluators and the PR-1 node-set core
  baseline.

All operations cover the navigational axes only — attribute nodes are
not tree nodes and keep using the object walk.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import XPathEvaluationError
from repro.xmlmodel.idset import IdSet
from repro.xmlmodel.kernels import KernelBackend, active_backend
from repro.xmlmodel.nodes import ElementNode, XMLNode

#: The plain-``set``-of-ints form used by the PR-1 node-set axis path;
#: the id-native kernels below use :class:`IdSet` instead.
RawIdSet = Set[int]


class DocumentIndex:
    """Flat-array index over the tree nodes of a frozen document.

    Parameters
    ----------
    nodes:
        The document's tree nodes in document (pre-order) order, root
        first — exactly ``Document.nodes``.  Attribute nodes must not be
        included.

    Examples
    --------
    Normally obtained via :attr:`repro.xmlmodel.document.Document.index`:

    >>> from repro.xmlmodel import parse_xml
    >>> from repro.xmlmodel.idset import IdSet
    >>> index = parse_xml("<a><b/><b><c/></b></a>").index
    >>> index.subtree_end[0]            # the root's subtree spans everything
    4
    >>> root = IdSet.from_sorted([0], index.size)
    >>> bs = index.filter_idset(index.axis_idset("descendant", root), "child", "b")
    >>> [index.node_of(i).tag for i in bs.ids]
    ['b', 'b']
    """

    __slots__ = (
        "nodes",
        "size",
        "parent",
        "subtree_end",
        "post",
        "first_child",
        "next_sibling",
        "prev_sibling",
        "ids_by_tag",
        "element_ids",
        "_ids_by_kind",
        "_test_idsets",
        "_kernel_states",
        "_id_by_uid",
    )

    def __init__(self, nodes: Sequence[XMLNode]) -> None:
        n = len(nodes)
        self.nodes: List[XMLNode] = list(nodes)
        self.size = n
        self.parent = [-1] * n
        self.subtree_end = [0] * n
        self.post = [0] * n
        self.first_child = [-1] * n
        self.next_sibling = [-1] * n
        self.prev_sibling = [-1] * n
        self.ids_by_tag: dict[str, list[int]] = {}
        self.element_ids: list[int] = []
        self._ids_by_kind: dict[str, list[int]] = {}
        self._test_idsets: dict[Tuple[str, str], IdSet] = {}
        self._kernel_states: dict[str, Any] = {}
        self._id_by_uid: dict[int, int] = {}

        id_by_uid = self._id_by_uid
        for i, node in enumerate(nodes):
            id_by_uid[node.uid] = i

        parent = self.parent
        first_child = self.first_child
        next_sibling = self.next_sibling
        prev_sibling = self.prev_sibling
        for i, node in enumerate(nodes):
            if node.parent is not None:
                parent[i] = id_by_uid[node.parent.uid]
            if node.children:
                child_ids = [id_by_uid[child.uid] for child in node.children]
                first_child[i] = child_ids[0]
                for left, right in zip(child_ids, child_ids[1:]):
                    next_sibling[left] = right
                    prev_sibling[right] = left
            if isinstance(node, ElementNode):
                self.ids_by_tag.setdefault(node.tag, []).append(i)
                self.element_ids.append(i)
            else:
                self._ids_by_kind.setdefault(node.node_type.value, []).append(i)

        # Descendants form a contiguous pre-order interval; the subtree of i
        # ends where the next node at depth <= depth[i] begins.  A single
        # reverse sweep fills both the interval ends and the post-order ranks.
        subtree_end = self.subtree_end
        for i in range(n - 1, -1, -1):
            end = i
            child = first_child[i]
            if child != -1:
                last = child
                while next_sibling[last] != -1:
                    last = next_sibling[last]
                end = subtree_end[last]
            subtree_end[i] = end

        post = self.post
        counter = 0
        stack: list[tuple[int, bool]] = [(0, False)] if n else []
        while stack:
            i, expanded = stack.pop()
            if expanded:
                post[i] = counter
                counter += 1
                continue
            stack.append((i, True))
            child = first_child[i]
            children = []
            while child != -1:
                children.append(child)
                child = next_sibling[child]
            for child in reversed(children):
                stack.append((child, False))

    # -- id/node conversion --------------------------------------------------

    def id_of(self, node: XMLNode) -> int:
        """Return the document-order id of ``node``.

        Raises :class:`KeyError` for nodes outside the indexed tree
        (attribute nodes, nodes of another document).
        """
        return self._id_by_uid[node.uid]

    def node_of(self, node_id: int) -> XMLNode:
        """Return the node with document-order id ``node_id``."""
        return self.nodes[node_id]

    def nodes_to_ids(self, nodes: Iterable[XMLNode]) -> RawIdSet:
        """Convert a collection of nodes to a set of ids."""
        id_by_uid = self._id_by_uid
        return {id_by_uid[node.uid] for node in nodes}

    def ids_to_nodes(self, ids: Iterable[int]) -> Set[XMLNode]:
        """Convert a collection of ids to a set of nodes."""
        nodes = self.nodes
        return {nodes[i] for i in ids}

    def ids_to_node_list(self, ids: Iterable[int]) -> List[XMLNode]:
        """Convert ids to a node list, preserving iteration order."""
        nodes = self.nodes
        return [nodes[i] for i in ids]

    def contains(self, node: XMLNode) -> bool:
        """Return True if ``node`` is a tree node of the indexed document."""
        return node.uid in self._id_by_uid

    # -- interval predicates ---------------------------------------------------

    def is_ancestor(self, ancestor_id: int, node_id: int) -> bool:
        """Interval containment test: is ``ancestor_id`` a proper ancestor?"""
        return ancestor_id < node_id <= self.subtree_end[ancestor_id]

    def descendant_interval(self, node_id: int) -> tuple[int, int]:
        """Return the half-open id interval ``(lo, hi)`` of proper descendants."""
        return node_id + 1, self.subtree_end[node_id] + 1

    # -- set-at-a-time axis application ---------------------------------------

    def axis_id_set(self, axis: str, ids: RawIdSet) -> RawIdSet:
        """Apply a navigational axis to a set of ids; return the result set.

        Every operation is linear in ``|ids| + |result|`` (plus O(|D|) for
        ``preceding``), with all per-node work done on flat integer arrays.
        """
        try:
            function = self._AXIS_ID_FUNCTIONS[axis]
        except KeyError:
            raise XPathEvaluationError(
                f"axis {axis!r} is not a navigational axis"
            ) from None
        return function(self, ids)

    def _self_ids(self, ids: RawIdSet) -> RawIdSet:
        return set(ids)

    def _child_ids(self, ids: RawIdSet) -> RawIdSet:
        first_child = self.first_child
        next_sibling = self.next_sibling
        result: RawIdSet = set()
        for i in ids:
            j = first_child[i]
            while j != -1:
                result.add(j)
                j = next_sibling[j]
        return result

    def _parent_ids(self, ids: RawIdSet) -> RawIdSet:
        parent = self.parent
        return {parent[i] for i in ids if parent[i] != -1}

    def _descendant_ids(self, ids: RawIdSet) -> RawIdSet:
        """Union of pre-order intervals; nested members are skipped outright.

        Subtree intervals are laminar (nested or disjoint), so after sorting
        the members every interval either extends the covered prefix or lies
        entirely inside it.
        """
        subtree_end = self.subtree_end
        result: RawIdSet = set()
        covered_end = -1
        for i in sorted(ids):
            if i <= covered_end:
                continue
            end = subtree_end[i]
            result.update(range(i + 1, end + 1))
            covered_end = end
        return result

    def _descendant_or_self_ids(self, ids: RawIdSet) -> RawIdSet:
        return set(ids) | self._descendant_ids(ids)

    def _ancestor_ids(self, ids: RawIdSet) -> RawIdSet:
        """Parent-chain walks; stop as soon as a chain joins the result."""
        parent = self.parent
        result: RawIdSet = set()
        for i in ids:
            j = parent[i]
            while j != -1 and j not in result:
                result.add(j)
                j = parent[j]
        return result

    def _ancestor_or_self_ids(self, ids: RawIdSet) -> RawIdSet:
        return set(ids) | self._ancestor_ids(ids)

    def _following_sibling_ids(self, ids: RawIdSet) -> RawIdSet:
        """Sibling-chain walks; a chain already in the result is closed rightward."""
        next_sibling = self.next_sibling
        result: RawIdSet = set()
        for i in ids:
            j = next_sibling[i]
            while j != -1 and j not in result:
                result.add(j)
                j = next_sibling[j]
        return result

    def _preceding_sibling_ids(self, ids: RawIdSet) -> RawIdSet:
        prev_sibling = self.prev_sibling
        result: RawIdSet = set()
        for i in ids:
            j = prev_sibling[i]
            while j != -1 and j not in result:
                result.add(j)
                j = prev_sibling[j]
        return result

    def _following_ids(self, ids: RawIdSet) -> RawIdSet:
        """following(S) = every id past the earliest member's subtree end."""
        if not ids:
            return set()
        cutoff = min(self.subtree_end[i] for i in ids)
        return set(range(cutoff + 1, self.size))

    def _preceding_ids(self, ids: RawIdSet) -> RawIdSet:
        """preceding(S) = ids whose subtree closes before the latest member."""
        if not ids:
            return set()
        cutoff = max(ids)
        subtree_end = self.subtree_end
        return {j for j in range(cutoff) if subtree_end[j] < cutoff}

    _AXIS_ID_FUNCTIONS = {
        "self": _self_ids,
        "child": _child_ids,
        "parent": _parent_ids,
        "descendant": _descendant_ids,
        "descendant-or-self": _descendant_or_self_ids,
        "ancestor": _ancestor_ids,
        "ancestor-or-self": _ancestor_or_self_ids,
        "following": _following_ids,
        "following-sibling": _following_sibling_ids,
        "preceding": _preceding_ids,
        "preceding-sibling": _preceding_sibling_ids,
    }

    def axis_node_set(self, axis: str, nodes_in: Iterable[XMLNode]) -> Set[XMLNode]:
        """Apply a navigational axis to a set of nodes; return a node set.

        This is :meth:`axis_id_set` with the id→node conversion fused in:
        the contiguous-interval axes (``descendant``,
        ``descendant-or-self``, ``following``) are materialised directly
        from slices of the document-order node list, skipping the
        intermediate integer set entirely.
        """
        ids = self.nodes_to_ids(nodes_in)
        nodes = self.nodes
        if axis == "descendant" or axis == "descendant-or-self":
            subtree_end = self.subtree_end
            include_self = axis == "descendant-or-self"
            result: Optional[Set[XMLNode]] = None
            covered_end = -1
            for i in sorted(ids):
                if i <= covered_end:
                    # Laminar intervals: i sits inside an earlier member's
                    # subtree, so its whole subtree (and, for -or-self, the
                    # node itself) is already in the result.
                    continue
                covered_end = subtree_end[i]
                block = nodes[i if include_self else i + 1 : covered_end + 1]
                if result is None:
                    result = set(block)
                else:
                    result.update(block)
            return result if result is not None else set()
        if axis == "following":
            if not ids:
                return set()
            cutoff = min(self.subtree_end[i] for i in ids)
            return set(nodes[cutoff + 1 :])
        return {nodes[i] for i in self.axis_id_set(axis, ids)}

    # -- per-node axis enumeration (axis order) --------------------------------

    def axis_ids(self, node_id: int, axis: str) -> List[int]:
        """Return the ids on ``axis`` from ``node_id`` in axis order.

        Forward axes come out in document order (ascending ids), reverse
        axes in reverse document order, matching
        :func:`repro.xmlmodel.axes.axis_nodes`.
        """
        if axis == "self":
            return [node_id]
        if axis == "child":
            result = []
            j = self.first_child[node_id]
            next_sibling = self.next_sibling
            while j != -1:
                result.append(j)
                j = next_sibling[j]
            return result
        if axis == "parent":
            j = self.parent[node_id]
            return [] if j == -1 else [j]
        if axis == "descendant":
            return list(range(node_id + 1, self.subtree_end[node_id] + 1))
        if axis == "descendant-or-self":
            return list(range(node_id, self.subtree_end[node_id] + 1))
        if axis == "ancestor" or axis == "ancestor-or-self":
            result = [node_id] if axis == "ancestor-or-self" else []
            parent = self.parent
            j = parent[node_id]
            while j != -1:
                result.append(j)
                j = parent[j]
            return result
        if axis == "following-sibling":
            result = []
            next_sibling = self.next_sibling
            j = next_sibling[node_id]
            while j != -1:
                result.append(j)
                j = next_sibling[j]
            return result
        if axis == "preceding-sibling":
            result = []
            prev_sibling = self.prev_sibling
            j = prev_sibling[node_id]
            while j != -1:
                result.append(j)
                j = prev_sibling[j]
            return result
        if axis == "following":
            return list(range(self.subtree_end[node_id] + 1, self.size))
        if axis == "preceding":
            subtree_end = self.subtree_end
            return [j for j in range(node_id - 1, -1, -1) if subtree_end[j] < node_id]
        raise XPathEvaluationError(f"axis {axis!r} is not a navigational axis")

    def step_ids(self, node_id: int, axis: str, node_test: str = "node()") -> List[int]:
        """Return the ids selected by ``axis::node_test`` from ``node_id``.

        Axis order is preserved (forward axes ascending, reverse axes
        descending), so the result can feed positional predicates directly.
        Name tests over the contiguous-interval axes (``descendant``,
        ``descendant-or-self``, ``following``) hit the per-tag partition:
        two binary searches instead of a filtered scan.
        """
        if node_test == "node()":
            return self.axis_ids(node_id, axis)
        if not node_test.endswith(")") and node_test != "*":
            if axis == "descendant":
                return self.tag_ids_in_interval(
                    node_test, node_id + 1, self.subtree_end[node_id] + 1
                )
            if axis == "descendant-or-self":
                return self.tag_ids_in_interval(
                    node_test, node_id, self.subtree_end[node_id] + 1
                )
            if axis == "following":
                return self.tag_ids_in_interval(
                    node_test, self.subtree_end[node_id] + 1, self.size
                )
        ids = self.axis_ids(node_id, axis)
        nodes = self.nodes
        if node_test == "*":
            return [j for j in ids if isinstance(nodes[j], ElementNode)]
        if not node_test.endswith(")"):
            return [
                j
                for j in ids
                if isinstance(nodes[j], ElementNode) and nodes[j].tag == node_test
            ]
        from repro.xmlmodel.axes import node_test_matches

        return [j for j in ids if node_test_matches(nodes[j], axis, node_test)]

    def tag_ids_in_interval(self, tag: str, lo: int, hi: int) -> List[int]:
        """Return the ids of ``tag`` elements with ``lo <= id < hi`` (sorted).

        This is the per-tag partition fast path: a name test over a
        contiguous axis interval (descendant, descendant-or-self,
        following) is two binary searches plus a slice.
        """
        partition = self.ids_by_tag.get(tag)
        if not partition:
            return []
        block = partition[bisect_left(partition, lo) : bisect_left(partition, hi)]
        # Snapshot-loaded indexes back partitions with array('i') /
        # memoryview buffers whose slices are not lists; normalise so the
        # documented list contract holds for every index residency.
        return block if isinstance(block, list) else list(block)

    # -- id-native axis kernels (IdSet in, IdSet out) --------------------------
    #
    # These are the hot path of the id-native Core XPath evaluator: node
    # sets stay :class:`~repro.xmlmodel.idset.IdSet` values end-to-end, so
    # a step is interval arithmetic (descendant/following/preceding),
    # array-chain sweeps (child/parent/sibling/ancestor) or a
    # sorted-partition intersection (name tests), never a walk over node
    # objects.

    def idset_from_nodes(self, nodes_in: Iterable[XMLNode]) -> IdSet:
        """Convert nodes to an :class:`IdSet` (KeyError for non-tree nodes)."""
        id_by_uid = self._id_by_uid
        return IdSet.from_iterable(
            (id_by_uid[node.uid] for node in nodes_in), self.size
        )

    def idset_to_node_list(self, ids: IdSet) -> List[XMLNode]:
        """Materialise an :class:`IdSet` as nodes in document order.

        Ids are pre-order ranks, so ascending id order *is* document
        order — no sort is needed.  This is the single node
        materialisation of the id-native evaluation path (and a Python-int
        boundary: backend array results are converted here in bulk).
        """
        nodes = self.nodes
        members = ids.ids
        if isinstance(members, range):
            return nodes[members.start : members.stop]
        converter = getattr(members, "tolist", None)
        if converter is not None:
            members = converter()
        return [nodes[i] for i in members]

    def axis_idset(self, axis: str, ids: IdSet) -> IdSet:
        """Apply a navigational axis to an :class:`IdSet`, id-natively."""
        try:
            function = self._AXIS_IDSET_FUNCTIONS[axis]
        except KeyError:
            raise XPathEvaluationError(
                f"axis {axis!r} is not a navigational axis"
            ) from None
        return function(self, ids)

    def _kernel(self) -> Tuple[KernelBackend, Any]:
        """The active backend plus this index's per-backend kernel state.

        State (numpy array copies for the vectorized backend, the index
        itself for pure) is built on first use and cached per backend
        name, so in-process backend switches (``use_backend``) never see
        a stale or foreign state.
        """
        backend = active_backend()
        state = self._kernel_states.get(backend.name)
        if state is None:
            state = backend.index_state(self)
            self._kernel_states[backend.name] = state
        return backend, state

    def _idset_self(self, ids: IdSet) -> IdSet:
        return ids

    def _idset_child(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(backend.child(state, ids.ids), self.size)

    def _idset_parent(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(backend.parent(state, ids.ids), self.size)

    def _idset_descendant(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(
            backend.descendant(state, ids.ids, False), self.size
        )

    def _idset_descendant_or_self(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(
            backend.descendant(state, ids.ids, True), self.size
        )

    def _idset_ancestor(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(backend.ancestor(state, ids.ids), self.size)

    def _idset_ancestor_or_self(self, ids: IdSet) -> IdSet:
        return ids | self._idset_ancestor(ids)

    def _idset_following_sibling(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(
            backend.following_sibling(state, ids.ids), self.size
        )

    def _idset_preceding_sibling(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(
            backend.preceding_sibling(state, ids.ids), self.size
        )

    def _idset_following(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(backend.following(state, ids.ids), self.size)

    def _idset_preceding(self, ids: IdSet) -> IdSet:
        if not ids:
            return IdSet.empty(self.size)
        backend, state = self._kernel()
        return IdSet.from_sorted(backend.preceding(state, ids.ids), self.size)

    _AXIS_IDSET_FUNCTIONS = {
        "self": _idset_self,
        "child": _idset_child,
        "parent": _idset_parent,
        "descendant": _idset_descendant,
        "descendant-or-self": _idset_descendant_or_self,
        "ancestor": _idset_ancestor,
        "ancestor-or-self": _idset_ancestor_or_self,
        "following": _idset_following,
        "following-sibling": _idset_following_sibling,
        "preceding": _idset_preceding,
        "preceding-sibling": _idset_preceding_sibling,
    }

    # -- id-native node tests ---------------------------------------------------

    def test_idset(self, node_test: str) -> Optional[IdSet]:
        """The partition of ids passing ``node_test``, as a cached IdSet.

        Covers the node tests whose members form a static partition of the
        document: names, ``*``, ``node()``, ``text()``, ``comment()`` and
        ``processing-instruction()``.  Returns ``None`` for tests that need
        per-node inspection (``processing-instruction('target')``).  The
        IdSets are cached per kernel backend (the vectorized backend
        pre-converts partitions to arrays via ``prepare_sorted``), so
        their materialisations are shared by every query on this document.
        """
        backend = active_backend()
        key = (backend.name, node_test)
        cached = self._test_idsets.get(key)
        if cached is not None:
            return cached
        if node_test == "node()":
            result = IdSet.full(self.size)
        elif node_test == "*":
            result = IdSet.from_sorted(
                backend.prepare_sorted(self.element_ids), self.size
            )
        elif node_test in ("text()", "comment()", "processing-instruction()"):
            kind = node_test[:-2]
            result = IdSet.from_sorted(
                backend.prepare_sorted(self._ids_by_kind.get(kind, [])),
                self.size,
            )
        elif node_test.endswith(")"):
            return None  # parametrised test: filter per node
        else:
            result = IdSet.from_sorted(
                backend.prepare_sorted(self.ids_by_tag.get(node_test, [])),
                self.size,
            )
        self._test_idsets[key] = result
        return result

    def filter_idset(self, ids: IdSet, axis: str, node_test: str) -> IdSet:
        """Restrict ``ids`` to the members passing ``node_test`` on ``axis``.

        Name tests intersect with the sorted per-tag partition (a bitmask
        ``&`` once either side is dense); only parametrised tests such as
        ``processing-instruction('target')`` fall back to per-node checks.
        """
        if node_test == "node()":
            return ids
        partition = self.test_idset(node_test)
        if partition is not None:
            return ids & partition
        from repro.xmlmodel.axes import node_test_matches

        nodes = self.nodes
        return IdSet.from_sorted(
            [i for i in ids if node_test_matches(nodes[i], axis, node_test)],
            self.size,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocumentIndex size={self.size} tags={len(self.ids_by_tag)}>"
