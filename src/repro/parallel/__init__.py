"""Parallel evaluation of positive queries via compilation to monotone circuits."""

from repro.parallel.compiler import (
    FALSE_GATE,
    TRUE_GATE,
    CompiledQuery,
    compile_positive_query,
)
from repro.parallel.evaluator import (
    ParallelRunReport,
    evaluate_in_layers,
    gate_levels,
    parallel_evaluate,
)

__all__ = [
    "CompiledQuery",
    "FALSE_GATE",
    "ParallelRunReport",
    "TRUE_GATE",
    "compile_positive_query",
    "evaluate_in_layers",
    "gate_levels",
    "parallel_evaluate",
]
