"""Layer-parallel evaluation of compiled query circuits.

Remark 5.6 of the paper observes that once query evaluation is phrased as
(semi-unbounded) circuit evaluation, a parallel algorithm is immediate:
all gates at the same depth can be evaluated simultaneously, so the
parallel running time is the circuit depth and the total work is the
circuit size.  :func:`parallel_evaluate` performs exactly that schedule and
reports both quantities, which the E10 bench compares against the
sequential operation counts of the other evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import GATE_INPUT, Circuit
from repro.parallel.compiler import CompiledQuery, compile_positive_query
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import XPathExpr


@dataclass
class ParallelRunReport:
    """Statistics of one layer-parallel evaluation."""

    selected: list[XMLNode]
    depth: int
    size: int
    work_per_level: list[int] = field(default_factory=list)

    @property
    def max_width(self) -> int:
        """The widest level — the number of processors needed to realise the schedule."""
        return max(self.work_per_level, default=0)

    @property
    def speedup_bound(self) -> float:
        """Work / depth: the idealised speedup over sequential evaluation."""
        return self.size / self.depth if self.depth else float(self.size)


def gate_levels(circuit: Circuit) -> dict[str, int]:
    """Assign every gate its level (longest distance from an input gate)."""
    levels: dict[str, int] = {}
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        if gate.kind == GATE_INPUT:
            levels[name] = 0
        else:
            levels[name] = 1 + max(levels[input_name] for input_name in gate.inputs)
    return levels


def evaluate_in_layers(compiled: CompiledQuery) -> ParallelRunReport:
    """Evaluate ``compiled`` level by level, as a parallel machine would."""
    circuit = compiled.circuit
    levels = gate_levels(circuit)
    depth = max(levels.values(), default=0)
    assignment = compiled.constant_assignment()
    values: dict[str, bool] = {}
    work_per_level: list[int] = []
    for level in range(depth + 1):
        level_gates = [name for name, gate_level in levels.items() if gate_level == level]
        work_per_level.append(len(level_gates))
        # Every gate in this level depends only on lower levels, so the
        # whole batch could run simultaneously on |level_gates| processors.
        for name in level_gates:
            gate = circuit.gates[name]
            if gate.kind == GATE_INPUT:
                values[name] = assignment[name]
            elif gate.kind == "and":
                values[name] = all(values[input_name] for input_name in gate.inputs)
            else:
                values[name] = any(values[input_name] for input_name in gate.inputs)
    selected = [
        node for node, gate_name in compiled.output_gates.items() if values[gate_name]
    ]
    selected.sort(key=lambda node: node.order)
    return ParallelRunReport(
        selected=selected,
        depth=depth,
        size=circuit.size(),
        work_per_level=work_per_level,
    )


def parallel_evaluate(query: XPathExpr | str, document: Document) -> ParallelRunReport:
    """Compile a positive Core XPath query to a circuit and evaluate it in layers."""
    compiled = compile_positive_query(query, document)
    return evaluate_in_layers(compiled)
