"""Compile positive Core XPath queries into monotone Boolean circuits.

The LOGCFL upper bounds of the paper (Theorems 4.1, 5.5, 6.2) mean that
evaluating a positive query is — up to logspace reductions — the same
problem as evaluating a shallow semi-unbounded circuit (Proposition 2.2:
LOGCFL = SAC¹).  This module makes that correspondence concrete: given a
*positive Core XPath* query and a document, it emits a monotone circuit
with one gate per (sub-expression, node) pair whose output gates say which
document nodes the query selects.

Gate structure (mirroring the set-at-a-time algebra of the linear-time
evaluator):

* ``C[e, x]`` — condition gates: node ``x`` satisfies condition ``e``;
  ``and``/``or`` become fan-in-2 ∧/∨ gates, a location path used as a
  condition becomes a chain of unbounded fan-in ∨-gates over the witness
  candidates of each step (evaluated back to front);
* ``F[i, y]`` — main-path gates: node ``y`` is reachable from the start
  context through the first ``i`` steps of the query;
* the output gates are ``F[k, y]`` for every node ``y``.

∧-gates have fan-in ≤ 2 and ∨-gates are unbounded, so the produced circuit
is semi-unbounded, exactly the SAC¹ shape; its depth is reported by the
parallel evaluator as the idealised parallel running time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import GATE_AND, GATE_INPUT, GATE_OR, Circuit, Gate
from repro.errors import FragmentViolationError
from repro.xmlmodel.axes import axis_step, node_test_matches
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import BinaryOp, FunctionCall, LocationPath, Step, XPathExpr
from repro.xpath.parser import parse

TRUE_GATE = "CONST_TRUE"
FALSE_GATE = "CONST_FALSE"


@dataclass
class CompiledQuery:
    """A query compiled to a monotone circuit.

    ``output_gates`` maps each candidate result node to the gate whose
    value says whether that node is selected.
    """

    document: Document
    query: XPathExpr
    circuit: Circuit
    output_gates: dict[XMLNode, str]

    def constant_assignment(self) -> dict[str, bool]:
        """The input assignment for the two constant gates."""
        return {TRUE_GATE: True, FALSE_GATE: False}

    def selected_nodes(self) -> list[XMLNode]:
        """Evaluate the circuit (sequentially) and return the selected nodes."""
        values = self.circuit.evaluate(self.constant_assignment())
        return [node for node, gate in self.output_gates.items() if values[gate]]


class _CircuitBuilder:
    """Accumulates gates, giving each (role, expression, node) pair a unique name."""

    def __init__(self) -> None:
        self.gates: list[Gate] = [Gate(TRUE_GATE, GATE_INPUT), Gate(FALSE_GATE, GATE_INPUT)]
        self._names: set[str] = {TRUE_GATE, FALSE_GATE}
        self._memo: dict[tuple, str] = {}
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def add(self, prefix: str, kind: str, inputs: list[str]) -> str:
        """Add a gate; empty input lists collapse to the appropriate constant."""
        if not inputs:
            return FALSE_GATE if kind == GATE_OR else TRUE_GATE
        if len(inputs) == 1:
            return inputs[0]
        name = self.fresh(prefix)
        self.gates.append(Gate(name, kind, tuple(inputs)))
        return name

    def memoised(self, key: tuple) -> str | None:
        return self._memo.get(key)

    def remember(self, key: tuple, gate: str) -> str:
        self._memo[key] = gate
        return gate


def compile_positive_query(query: XPathExpr | str, document: Document) -> CompiledQuery:
    """Compile a positive Core XPath query over ``document`` into a circuit."""
    expr = parse(query) if isinstance(query, str) else query
    builder = _CircuitBuilder()
    outputs = _compile_top_level(expr, document, builder)
    # Ensure the circuit has a single well-defined output gate (an OR over
    # all per-node outputs: "the query selects at least one node").
    any_gate = builder.add("ANY", GATE_OR, sorted(set(outputs.values())))
    circuit = Circuit(builder.gates, any_gate)
    return CompiledQuery(document, expr, circuit, outputs)


def _compile_top_level(
    expr: XPathExpr, document: Document, builder: _CircuitBuilder
) -> dict[XMLNode, str]:
    if isinstance(expr, BinaryOp) and expr.op == "|":
        left = _compile_top_level(expr.left, document, builder)
        right = _compile_top_level(expr.right, document, builder)
        merged: dict[XMLNode, str] = {}
        for node in document.nodes:
            inputs = [table[node] for table in (left, right) if node in table]
            inputs = [gate for gate in inputs if gate != FALSE_GATE]
            merged[node] = builder.add("UNION", GATE_OR, inputs) if inputs else FALSE_GATE
        return merged
    if isinstance(expr, LocationPath):
        return _compile_main_path(expr, document, builder)
    raise FragmentViolationError(
        "positive Core XPath",
        [f"cannot compile {type(expr).__name__} to a circuit (expected a location path)"],
    )


def _compile_main_path(
    path: LocationPath, document: Document, builder: _CircuitBuilder
) -> dict[XMLNode, str]:
    """Forward sweep: F[i, y] = y reachable through the first i steps."""
    start = document.root if path.absolute else document.root
    frontier: dict[XMLNode, str] = {start: TRUE_GATE}
    for step_expr in path.steps:
        next_frontier: dict[XMLNode, list[str]] = {}
        for source, source_gate in frontier.items():
            if source_gate == FALSE_GATE:
                continue
            for target in axis_step(source, step_expr.axis, step_expr.node_test.text()):
                next_frontier.setdefault(target, []).append(source_gate)
        frontier = {}
        for target, incoming in next_frontier.items():
            reach_gate = builder.add("REACH", GATE_OR, sorted(set(incoming)))
            predicate_gate = _compile_predicates(step_expr, target, document, builder)
            frontier[target] = builder.add("STEP", GATE_AND, [reach_gate, predicate_gate])
    return frontier


def _compile_predicates(
    step_expr: Step, node: XMLNode, document: Document, builder: _CircuitBuilder
) -> str:
    gates = [
        _compile_condition(predicate, node, document, builder)
        for predicate in step_expr.predicates
    ]
    gates = [gate for gate in gates if gate != TRUE_GATE]
    if any(gate == FALSE_GATE for gate in gates):
        return FALSE_GATE
    return builder.add("PREDS", GATE_AND, gates) if gates else TRUE_GATE


def _compile_condition(
    expr: XPathExpr, node: XMLNode, document: Document, builder: _CircuitBuilder
) -> str:
    """C[e, x]: the gate that is true iff condition ``e`` holds at ``x``."""
    key = (id(expr), node.uid)
    cached = builder.memoised(key)
    if cached is not None:
        return cached
    if isinstance(expr, BinaryOp) and expr.op in ("and", "or"):
        left = _compile_condition(expr.left, node, document, builder)
        right = _compile_condition(expr.right, node, document, builder)
        kind = GATE_AND if expr.op == "and" else GATE_OR
        if expr.op == "and" and FALSE_GATE in (left, right):
            gate = FALSE_GATE
        elif expr.op == "or" and TRUE_GATE in (left, right):
            gate = TRUE_GATE
        else:
            inputs = [g for g in (left, right) if g not in (TRUE_GATE if expr.op == "and" else FALSE_GATE,)]
            gate = builder.add("BOOL", kind, inputs)
        return builder.remember(key, gate)
    if isinstance(expr, FunctionCall) and expr.name in ("true", "false") and not expr.args:
        return builder.remember(key, TRUE_GATE if expr.name == "true" else FALSE_GATE)
    if isinstance(expr, LocationPath):
        gate = _compile_condition_path(expr, node, document, builder)
        return builder.remember(key, gate)
    if isinstance(expr, FunctionCall) and expr.name == "not":
        raise FragmentViolationError(
            "positive Core XPath", ["negation cannot be compiled to a monotone circuit"]
        )
    raise FragmentViolationError(
        "positive Core XPath", [f"condition {expr} is outside positive Core XPath"]
    )


def _compile_condition_path(
    path: LocationPath, node: XMLNode, document: Document, builder: _CircuitBuilder
) -> str:
    """C[π, x]: does the location path π select at least one node from x?"""
    start = document.root if path.absolute else node
    return _compile_steps_exist(tuple(path.steps), start, document, builder)


def _compile_steps_exist(
    steps: tuple[Step, ...], start: XMLNode, document: Document, builder: _CircuitBuilder
) -> str:
    if not steps:
        return TRUE_GATE
    key = (tuple(id(s) for s in steps), start.uid, "exists")
    cached = builder.memoised(key)
    if cached is not None:
        return cached
    head, rest = steps[0], steps[1:]
    witnesses = []
    for candidate in axis_step(start, head.axis, head.node_test.text()):
        predicate_gate = _compile_predicates(head, candidate, document, builder)
        if predicate_gate == FALSE_GATE:
            continue
        continuation = _compile_steps_exist(rest, candidate, document, builder)
        if continuation == FALSE_GATE:
            continue
        witnesses.append(builder.add("WITNESS", GATE_AND, [predicate_gate, continuation]))
    gate = builder.add("EXISTS", GATE_OR, sorted(set(witnesses)))
    return builder.remember(key, gate)
