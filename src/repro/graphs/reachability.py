"""Directed reachability — the NL-complete oracle for the Theorem 4.3 bench.

A plain breadth-first search; it provides both plain reachability and the
"within k steps" variant that the reduction's correctness argument uses.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.digraph import DiGraph


def reachable_set(graph: DiGraph, source: int) -> set[int]:
    """All vertices reachable from ``source`` (including ``source`` itself)."""
    seen = {source}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        for successor in graph.successors(vertex):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


def is_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """True if ``target`` is reachable from ``source`` (0 or more edges)."""
    return target in reachable_set(graph, source)


def reachable_within(graph: DiGraph, source: int, target: int, steps: int) -> bool:
    """True if ``target`` is reachable from ``source`` using at most ``steps`` edges."""
    frontier = {source}
    if target in frontier:
        return True
    for _ in range(steps):
        frontier = {
            successor for vertex in frontier for successor in graph.successors(vertex)
        } | frontier
        if target in frontier:
            return True
    return False


def shortest_path_length(graph: DiGraph, source: int, target: int) -> int | None:
    """Length of a shortest path from ``source`` to ``target`` (None if unreachable)."""
    if source == target:
        return 0
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        for successor in graph.successors(vertex):
            if successor not in distances:
                distances[successor] = distances[vertex] + 1
                if successor == target:
                    return distances[successor]
                frontier.append(successor)
    return None
