"""Graph generators, including the example graph of Figure 5."""

from __future__ import annotations

import random

from repro.graphs.digraph import DiGraph, from_adjacency_matrix

#: The (transposed) adjacency matrix printed in Figure 5(b).
FIGURE5_TRANSPOSED_MATRIX = (
    (0, 1, 0, 1),
    (1, 0, 0, 0),
    (1, 1, 0, 1),
    (0, 0, 1, 0),
)


def figure5_graph() -> DiGraph:
    """The four-vertex directed graph of Figure 5(a).

    The paper prints its *transposed* adjacency matrix (Figure 5(b)); the
    edges here are obtained by reading that matrix as
    ``matrix[target][source]``.
    """
    return from_adjacency_matrix(FIGURE5_TRANSPOSED_MATRIX, transposed=True)


def random_digraph(num_vertices: int, edge_probability: float = 0.25, seed: int = 0) -> DiGraph:
    """A G(n, p) style random directed graph (deterministic per seed)."""
    rng = random.Random(seed)
    graph = DiGraph(num_vertices)
    for source in range(num_vertices):
        for target in range(num_vertices):
            if source != target and rng.random() < edge_probability:
                graph.add_edge(source, target)
    return graph


def path_graph(num_vertices: int) -> DiGraph:
    """The directed path 0 → 1 → … → n−1 (worst case for reachability depth)."""
    return DiGraph(num_vertices, [(i, i + 1) for i in range(num_vertices - 1)])


def cycle_graph(num_vertices: int) -> DiGraph:
    """The directed cycle on ``num_vertices`` vertices."""
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return DiGraph(num_vertices, edges)


def layered_dag(layers: int, width: int, seed: int = 0, edge_probability: float = 0.5) -> DiGraph:
    """A layered DAG with ``layers`` layers of ``width`` vertices each."""
    rng = random.Random(seed)
    graph = DiGraph(layers * width)
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                if rng.random() < edge_probability:
                    graph.add_edge(layer * width + i, (layer + 1) * width + j)
    return graph
