"""Directed graphs: the substrate of the NL-hardness result (Theorem 4.3).

Graph reachability is the canonical NL-complete problem; Theorem 4.3
reduces it to evaluating a PF (predicate-free) XPath query.  The class here
is intentionally small — adjacency sets over integer-indexed vertices plus
the adjacency-matrix view shown in Figure 5(b).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import ReproError


class DiGraph:
    """A directed graph over vertices ``0 … n-1``."""

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if num_vertices < 1:
            raise ReproError("a graph needs at least one vertex")
        self.num_vertices = num_vertices
        self._successors: list[set[int]] = [set() for _ in range(num_vertices)]
        for source, target in edges:
            self.add_edge(source, target)

    # -- construction ----------------------------------------------------------

    def add_edge(self, source: int, target: int) -> None:
        """Add the edge ``source → target`` (idempotent)."""
        self._check_vertex(source)
        self._check_vertex(target)
        self._successors[source].add(target)

    def add_self_loops(self) -> "DiGraph":
        """Return a copy with a self-loop on every vertex.

        The Theorem 4.3 reduction adds self-loops so that "reachable within
        exactly m steps" coincides with plain reachability.
        """
        graph = DiGraph(self.num_vertices, self.edges())
        for vertex in range(self.num_vertices):
            graph.add_edge(vertex, vertex)
        return graph

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise ReproError(
                f"vertex {vertex} out of range 0..{self.num_vertices - 1}"
            )

    # -- queries ------------------------------------------------------------------

    def successors(self, vertex: int) -> set[int]:
        """Vertices directly reachable from ``vertex``."""
        self._check_vertex(vertex)
        return set(self._successors[vertex])

    def edges(self) -> list[tuple[int, int]]:
        """All edges as (source, target) pairs, sorted."""
        return sorted(
            (source, target)
            for source, targets in enumerate(self._successors)
            for target in targets
        )

    def num_edges(self) -> int:
        """Number of edges."""
        return sum(len(targets) for targets in self._successors)

    def has_edge(self, source: int, target: int) -> bool:
        """True if the edge ``source → target`` exists."""
        self._check_vertex(source)
        self._check_vertex(target)
        return target in self._successors[source]

    def adjacency_matrix(self, transposed: bool = False) -> list[list[int]]:
        """The 0/1 adjacency matrix; ``transposed=True`` gives Figure 5(b)'s view."""
        matrix = [[0] * self.num_vertices for _ in range(self.num_vertices)]
        for source, targets in enumerate(self._successors):
            for target in targets:
                if transposed:
                    matrix[target][source] = 1
                else:
                    matrix[source][target] = 1
        return matrix

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiGraph |V|={self.num_vertices} |E|={self.num_edges()}>"


def from_adjacency_matrix(matrix: Sequence[Sequence[int]], transposed: bool = False) -> DiGraph:
    """Build a graph from a 0/1 adjacency matrix (optionally the transposed form)."""
    size = len(matrix)
    if any(len(row) != size for row in matrix):
        raise ReproError("adjacency matrix must be square")
    graph = DiGraph(size)
    for row_index, row in enumerate(matrix):
        for column_index, bit in enumerate(row):
            if bit:
                if transposed:
                    graph.add_edge(column_index, row_index)
                else:
                    graph.add_edge(row_index, column_index)
    return graph
