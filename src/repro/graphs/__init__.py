"""Directed-graph substrate for the NL-completeness result of Theorem 4.3."""

from repro.graphs.digraph import DiGraph, from_adjacency_matrix
from repro.graphs.generators import (
    FIGURE5_TRANSPOSED_MATRIX,
    cycle_graph,
    figure5_graph,
    layered_dag,
    path_graph,
    random_digraph,
)
from repro.graphs.reachability import (
    is_reachable,
    reachable_set,
    reachable_within,
    shortest_path_length,
)

__all__ = [
    "DiGraph",
    "FIGURE5_TRANSPOSED_MATRIX",
    "cycle_graph",
    "figure5_graph",
    "from_adjacency_matrix",
    "is_reachable",
    "layered_dag",
    "path_graph",
    "random_digraph",
    "reachable_set",
    "reachable_within",
    "shortest_path_length",
]
