"""Random circuit generators for property tests and reduction benchmarks.

Two families are provided:

* :func:`random_monotone_circuit` — arbitrary monotone circuits with a
  configurable fan-in distribution; workload of the Theorem 3.2 / 5.7
  benches (the monotone circuit value problem is P-complete);
* :func:`random_sac1_circuit` — layered semi-unbounded circuits
  (∧ fan-in 2, ∨ fan-in unbounded) of logarithmic depth; workload of the
  Theorem 4.2 bench (SAC¹ circuit value is LOGCFL-complete,
  Proposition 2.2).

Both are deterministic in their ``seed`` so failing cases can be replayed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.circuits.circuit import GATE_AND, GATE_INPUT, GATE_OR, Circuit, Gate


def random_assignment(circuit: Circuit, seed: int = 0, true_probability: float = 0.5) -> dict[str, bool]:
    """A random input assignment for ``circuit`` (deterministic per seed)."""
    rng = random.Random(seed)
    return {name: rng.random() < true_probability for name in circuit.input_names}


def random_monotone_circuit(
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    max_fanin: int = 3,
    and_probability: float = 0.5,
) -> Circuit:
    """Generate a random monotone circuit with ``num_inputs`` inputs and ``num_gates`` gates.

    Gate ``i`` draws its inputs uniformly from all earlier gates, so the
    numbering requirement of Theorem 3.2 holds by construction.  The last
    gate is the output.
    """
    if num_inputs < 1 or num_gates < 1:
        raise ValueError("need at least one input and one internal gate")
    rng = random.Random(seed)
    gates: list[Gate] = [Gate(f"G{i}", GATE_INPUT) for i in range(1, num_inputs + 1)]
    for index in range(num_inputs + 1, num_inputs + num_gates + 1):
        available = [f"G{i}" for i in range(1, index)]
        fanin = rng.randint(1, min(max_fanin, len(available)))
        inputs = tuple(rng.sample(available, fanin))
        kind = GATE_AND if rng.random() < and_probability else GATE_OR
        gates.append(Gate(f"G{index}", kind, inputs))
    return Circuit(gates, f"G{num_inputs + num_gates}")


def random_sac1_circuit(
    num_inputs: int,
    depth: int | None = None,
    seed: int = 0,
    or_fanin: int = 4,
) -> Circuit:
    """Generate a layered semi-unbounded (SAC¹-shaped) circuit.

    The circuit alternates ∨-layers (unbounded fan-in, here up to
    ``or_fanin``) and ∧-layers (fan-in exactly 2).  ``depth`` defaults to
    ``ceil(log2(num_inputs)) + 1``, matching the logarithmic-depth
    requirement of SAC¹; the generator enforces
    ``circuit.is_semi_unbounded()``.
    """
    if num_inputs < 2:
        raise ValueError("need at least two inputs")
    if depth is None:
        depth = int(math.ceil(math.log2(num_inputs))) + 1
    if depth < 1:
        raise ValueError("depth must be at least 1")
    rng = random.Random(seed)
    gates: list[Gate] = [Gate(f"x{i}", GATE_INPUT) for i in range(num_inputs)]
    previous_layer = [gate.name for gate in gates]
    counter = 0
    for level in range(depth):
        is_and_layer = level % 2 == 1
        layer_width = max(2, len(previous_layer) // 2) if level < depth - 1 else 1
        current_layer: list[str] = []
        for _ in range(layer_width):
            counter += 1
            name = f"g{counter}"
            if is_and_layer:
                inputs = tuple(rng.sample(previous_layer, min(2, len(previous_layer))))
                gates.append(Gate(name, GATE_AND, inputs))
            else:
                fanin = rng.randint(1, min(or_fanin, len(previous_layer)))
                inputs = tuple(rng.sample(previous_layer, fanin))
                gates.append(Gate(name, GATE_OR, inputs))
            current_layer.append(name)
        previous_layer = current_layer
    return Circuit(gates, previous_layer[-1])
