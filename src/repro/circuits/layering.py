"""The layered serialisation of a circuit used by the hardness proofs (Figure 3).

The proof of Theorem 3.2 treats the circuit "as if layered": the non-input
gates are processed one per layer in ascending numbering order, and every
layer additionally contains "dummy" fan-in-one gates that simply propagate
the values of all earlier gates upwards so they stay available.  Figure 3
shows this view for the carry-bit circuit of Figure 2.

:func:`layered_serialization` computes that view explicitly.  It is used by
the ``circuit_reduction`` example to print a textual Figure 3, and by the
tests that validate the reduction's label assignment (the ``Ik``/``Ok``
labels of the document are exactly the input/output wires of layer k).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import GATE_INPUT, Circuit


@dataclass(frozen=True)
class Layer:
    """One layer of the serialised circuit.

    Attributes
    ----------
    index:
        The 1-based layer number ``k``; the layer computes gate ``G(M+k)``.
    gate_name:
        Name of the single fan-in->1-capable gate computed at this layer.
    gate_kind:
        ``"and"`` or ``"or"`` — the type all gates of the layer share.
    gate_inputs:
        The gate numbers feeding ``gate_name`` (these receive label ``Ik``).
    dummy_gates:
        Gate numbers whose values are propagated unchanged through this
        layer (every gate numbered below ``M + k``).
    """

    index: int
    gate_name: str
    gate_kind: str
    gate_inputs: tuple[int, ...]
    dummy_gates: tuple[int, ...]


def layered_serialization(circuit: Circuit) -> list[Layer]:
    """Return the Figure 3 style layering of ``circuit``.

    Layer ``k`` (1-based) computes the internal gate numbered ``M + k`` and
    propagates gates ``1 … M + k − 1`` through dummy gates.
    """
    numbering = circuit.numbering()
    by_number = {number: name for name, number in numbering.items()}
    num_inputs = circuit.num_inputs()
    layers: list[Layer] = []
    for k in range(1, circuit.num_internal() + 1):
        gate_name = by_number[num_inputs + k]
        gate = circuit.gates[gate_name]
        layers.append(
            Layer(
                index=k,
                gate_name=gate_name,
                gate_kind=gate.kind,
                gate_inputs=tuple(sorted(numbering[name] for name in gate.inputs)),
                dummy_gates=tuple(range(1, num_inputs + k)),
            )
        )
    return layers


def render_layering(circuit: Circuit) -> str:
    """Render the layered view as text (the textual analogue of Figure 3)."""
    numbering = circuit.numbering()
    lines = [
        f"Layered serialisation ({circuit.num_inputs()} inputs, "
        f"{circuit.num_internal()} layers):"
    ]
    for layer in layered_serialization(circuit):
        inputs = ", ".join(f"G{number}" for number in layer.gate_inputs)
        lines.append(
            f"  L{layer.index}: computes {layer.gate_name} = "
            f"{layer.gate_kind.upper()}({inputs}); propagates "
            f"{len(layer.dummy_gates)} earlier gate value(s)"
        )
    output_number = numbering[circuit.output]
    lines.append(f"  output gate: G{output_number} ({circuit.output})")
    return "\n".join(lines)
