"""Monotone Boolean circuits (the substrate of Theorems 3.2, 4.2 and 5.7).

A *monotone* circuit uses only ∧- and ∨-gates (no negation).  The monotone
circuit value problem — given a circuit and an input assignment, does the
output gate evaluate to true? — is P-complete, and is the problem the
paper reduces to Core XPath evaluation in Theorem 3.2.

Gates are named; the class enforces the paper's normal form: gates can be
renumbered ``G1 … G(M+N)`` such that the M input gates come first and no
gate depends on a gate with a higher number (the proof of Theorem 3.2
assumes exactly this ordering and notes it is computable in logarithmic
space).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import CircuitError

GATE_INPUT = "input"
GATE_AND = "and"
GATE_OR = "or"

_VALID_KINDS = (GATE_INPUT, GATE_AND, GATE_OR)


@dataclass(frozen=True)
class Gate:
    """One gate of a monotone circuit.

    ``inputs`` names the gates feeding this gate; input gates have none.
    Fan-in is unbounded (the Theorem 3.2 construction explicitly permits
    this), including fan-in one ("dummy" propagation gates).
    """

    name: str
    kind: str
    inputs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise CircuitError(f"unknown gate kind {self.kind!r}")
        if self.kind == GATE_INPUT and self.inputs:
            raise CircuitError(f"input gate {self.name!r} cannot have inputs")
        if self.kind != GATE_INPUT and not self.inputs:
            raise CircuitError(f"{self.kind}-gate {self.name!r} must have at least one input")


class Circuit:
    """A monotone Boolean circuit with a distinguished output gate."""

    def __init__(self, gates: Iterable[Gate], output: str) -> None:
        self.gates: dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self.gates:
                raise CircuitError(f"duplicate gate name {gate.name!r}")
            self.gates[gate.name] = gate
        if output not in self.gates:
            raise CircuitError(f"output gate {output!r} is not defined")
        self.output = output
        self._validate()
        self._topological: list[str] = self._topological_sort()

    # -- construction helpers ---------------------------------------------------

    def _validate(self) -> None:
        for gate in self.gates.values():
            for input_name in gate.inputs:
                if input_name not in self.gates:
                    raise CircuitError(
                        f"gate {gate.name!r} references undefined gate {input_name!r}"
                    )

    def _topological_sort(self) -> list[str]:
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

        def visit(name: str, stack: list[str]) -> None:
            status = state.get(name, 0)
            if status == 2:
                return
            if status == 1:
                cycle = " -> ".join(stack + [name])
                raise CircuitError(f"circuit contains a cycle: {cycle}")
            state[name] = 1
            for input_name in self.gates[name].inputs:
                visit(input_name, stack + [name])
            state[name] = 2
            order.append(name)

        for name in self.gates:
            visit(name, [])
        return order

    # -- structural queries ----------------------------------------------------------

    @property
    def input_names(self) -> list[str]:
        """Names of the input gates, in topological (hence numbering) order."""
        return [name for name in self._topological if self.gates[name].kind == GATE_INPUT]

    @property
    def internal_names(self) -> list[str]:
        """Names of the non-input gates in topological order."""
        return [name for name in self._topological if self.gates[name].kind != GATE_INPUT]

    def topological_order(self) -> list[str]:
        """All gate names in an order where every gate follows its inputs."""
        return list(self._topological)

    def numbering(self) -> dict[str, int]:
        """Return the paper's 1-based numbering: inputs first, then internal gates.

        The numbering satisfies the requirement of Theorem 3.2 that no gate
        ``Gi`` depends on a gate ``Gj`` with ``j > i``.
        """
        ordered = self.input_names + self.internal_names
        return {name: index for index, name in enumerate(ordered, start=1)}

    def size(self) -> int:
        """Total number of gates (M + N in the paper's notation)."""
        return len(self.gates)

    def num_inputs(self) -> int:
        """Number of input gates (M)."""
        return len(self.input_names)

    def num_internal(self) -> int:
        """Number of non-input gates (N)."""
        return len(self.gates) - self.num_inputs()

    def depth(self) -> int:
        """Length of the longest input-to-output path, counting non-input gates."""
        depths: dict[str, int] = {}
        for name in self._topological:
            gate = self.gates[name]
            if gate.kind == GATE_INPUT:
                depths[name] = 0
            else:
                depths[name] = 1 + max(depths[input_name] for input_name in gate.inputs)
        return depths[self.output]

    def max_fanin(self, kind: str | None = None) -> int:
        """Largest fan-in among gates (optionally restricted to one gate kind)."""
        fanins = [
            len(gate.inputs)
            for gate in self.gates.values()
            if gate.kind != GATE_INPUT and (kind is None or gate.kind == kind)
        ]
        return max(fanins, default=0)

    def is_semi_unbounded(self, and_fanin_bound: int = 2) -> bool:
        """True if every ∧-gate has fan-in at most ``and_fanin_bound`` (SAC¹ shape)."""
        return self.max_fanin(GATE_AND) <= and_fanin_bound

    def wires(self) -> list[tuple[str, str]]:
        """All (source, target) wires of the circuit."""
        return [
            (input_name, gate.name)
            for gate in self.gates.values()
            for input_name in gate.inputs
        ]

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Return the truth value of every gate under ``assignment`` for the inputs."""
        values: dict[str, bool] = {}
        for name in self._topological:
            gate = self.gates[name]
            if gate.kind == GATE_INPUT:
                try:
                    values[name] = bool(assignment[name])
                except KeyError:
                    raise CircuitError(f"no value supplied for input gate {name!r}") from None
            elif gate.kind == GATE_AND:
                values[name] = all(values[input_name] for input_name in gate.inputs)
            else:
                values[name] = any(values[input_name] for input_name in gate.inputs)
        return values

    def value(self, assignment: Mapping[str, bool]) -> bool:
        """Return the value of the output gate under ``assignment``."""
        return self.evaluate(assignment)[self.output]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Circuit inputs={self.num_inputs()} gates={self.num_internal()} "
            f"depth={self.depth()} output={self.output!r}>"
        )


def circuit_from_spec(
    inputs: Sequence[str], gates: Sequence[tuple[str, str, Sequence[str]]], output: str
) -> Circuit:
    """Build a circuit from a compact specification.

    ``gates`` is a sequence of ``(name, kind, input_names)`` triples, e.g.::

        circuit_from_spec(
            inputs=["x", "y"],
            gates=[("g", "and", ["x", "y"])],
            output="g",
        )
    """
    all_gates = [Gate(name, GATE_INPUT) for name in inputs]
    all_gates.extend(Gate(name, kind, tuple(input_names)) for name, kind, input_names in gates)
    return Circuit(all_gates, output)
