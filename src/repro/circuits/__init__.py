"""Monotone Boolean circuits: the substrate of the paper's hardness reductions."""

from repro.circuits.circuit import (
    GATE_AND,
    GATE_INPUT,
    GATE_OR,
    Circuit,
    Gate,
    circuit_from_spec,
)
from repro.circuits.generators import (
    random_assignment,
    random_monotone_circuit,
    random_sac1_circuit,
)
from repro.circuits.layering import Layer, layered_serialization, render_layering
from repro.circuits.library import (
    CARRY_INPUT_BITS,
    and_chain,
    carry_assignment,
    carry_circuit,
    expected_carry,
    majority3,
    or_of_ands,
)

__all__ = [
    "CARRY_INPUT_BITS",
    "Circuit",
    "GATE_AND",
    "GATE_INPUT",
    "GATE_OR",
    "Gate",
    "Layer",
    "and_chain",
    "carry_assignment",
    "carry_circuit",
    "circuit_from_spec",
    "expected_carry",
    "layered_serialization",
    "majority3",
    "or_of_ands",
    "random_assignment",
    "random_monotone_circuit",
    "random_sac1_circuit",
    "render_layering",
]
