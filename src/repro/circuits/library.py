"""Concrete circuits used by the paper and by the test-suite.

The centrepiece is :func:`carry_circuit`, the 2-bit full-adder carry-bit
circuit of Figure 2: it computes whether adding the two-bit numbers
``a1 a0`` and ``b1 b0`` overflows, via ``c1 = (a1∧b1) ∨ (a1∧c0) ∨ (b1∧c0)``
with ``c0 = a0∧b0``.  The gate names follow the paper exactly
(inputs G1–G4, internal gates G5–G9, output G9).
"""

from __future__ import annotations

from repro.circuits.circuit import GATE_AND, GATE_OR, Circuit, Gate, circuit_from_spec

#: Mapping from the paper's input-gate names to the adder bits they carry.
CARRY_INPUT_BITS = {"G1": "a1", "G2": "b1", "G3": "a0", "G4": "b0"}


def carry_circuit() -> Circuit:
    """The 2-bit full-adder carry-bit circuit of Figure 2.

    * G1 = a1, G2 = b1, G3 = a0, G4 = b0 (inputs)
    * G5 = G3 ∧ G4                    (c0, the lower carry)
    * G6 = G1 ∧ G2
    * G7 = G1 ∧ G5
    * G8 = G2 ∧ G5
    * G9 = G6 ∨ G7 ∨ G8               (c1, the output)
    """
    return circuit_from_spec(
        inputs=["G1", "G2", "G3", "G4"],
        gates=[
            ("G5", GATE_AND, ["G3", "G4"]),
            ("G6", GATE_AND, ["G1", "G2"]),
            ("G7", GATE_AND, ["G1", "G5"]),
            ("G8", GATE_AND, ["G2", "G5"]),
            ("G9", GATE_OR, ["G6", "G7", "G8"]),
        ],
        output="G9",
    )


def carry_assignment(a1: bool, a0: bool, b1: bool, b0: bool) -> dict[str, bool]:
    """Input assignment for :func:`carry_circuit` from the four adder bits."""
    return {"G1": a1, "G2": b1, "G3": a0, "G4": b0}


def expected_carry(a1: bool, a0: bool, b1: bool, b0: bool) -> bool:
    """Ground truth: does ``a1a0 + b1b0`` overflow two bits?"""
    return (2 * a1 + a0) + (2 * b1 + b0) >= 4


def and_chain(width: int) -> Circuit:
    """A chain of ∧-gates over ``width`` inputs (depth ``width - 1``)."""
    if width < 2:
        raise ValueError("width must be at least 2")
    inputs = [f"x{i}" for i in range(width)]
    gates = []
    previous = inputs[0]
    for index in range(1, width):
        name = f"a{index}"
        gates.append((name, GATE_AND, [previous, inputs[index]]))
        previous = name
    return circuit_from_spec(inputs, gates, previous)


def or_of_ands(groups: int, group_size: int) -> Circuit:
    """A DNF-shaped circuit: an ∨ of ``groups`` ∧-gates over disjoint inputs."""
    if groups < 1 or group_size < 1:
        raise ValueError("groups and group_size must be at least 1")
    inputs = [f"x{g}_{i}" for g in range(groups) for i in range(group_size)]
    gates = []
    for g in range(groups):
        gates.append(
            (f"and{g}", GATE_AND, [f"x{g}_{i}" for i in range(group_size)])
        )
    gates.append(("out", GATE_OR, [f"and{g}" for g in range(groups)]))
    return circuit_from_spec(inputs, gates, "out")


def majority3() -> Circuit:
    """Monotone majority of three inputs: (x∧y) ∨ (x∧z) ∨ (y∧z)."""
    return circuit_from_spec(
        inputs=["x", "y", "z"],
        gates=[
            ("xy", GATE_AND, ["x", "y"]),
            ("xz", GATE_AND, ["x", "z"]),
            ("yz", GATE_AND, ["y", "z"]),
            ("out", GATE_OR, ["xy", "xz", "yz"]),
        ],
        output="out",
    )
