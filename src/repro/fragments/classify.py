"""Syntactic membership tests for the paper's XPath fragments.

The paper studies six fragments, ordered by inclusion as in Figure 1:

* **PF** — location paths without conditions (Section 4);
* **positive Core XPath** — Core XPath without ``not`` (Section 4);
* **Core XPath** — Definition 2.5;
* **pWF** — the "positive"/"parallel" Wadler fragment, Definition 5.1;
* **WF** — the Wadler fragment, Definition 2.6;
* **pXPath** — positive/parallel XPath, Definition 6.1;
* **XPath** — the full language (everything this engine parses).

Each ``violations_*`` function returns a human-readable list of reasons a
query falls outside the fragment (empty list = member), and ``is_*`` are
the corresponding booleans.  :func:`classify` returns every fragment a
query belongs to together with the most specific one and its combined
complexity from Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xpath.analysis import (
    arithmetic_nesting_depth,
    axes_used,
    concat_arity_and_nesting,
    functions_used,
    max_predicates_per_step,
)
from repro.xpath.ast import (
    ARITHMETIC_OPERATORS,
    BinaryOp,
    COMPARISON_OPERATORS,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    Number,
    PathExpr,
    Step,
    VariableReference,
    XPathExpr,
)
from repro.xpath.functions import BOOLEAN, OBJECT, PXPATH_FORBIDDEN_FUNCTIONS, static_type
from repro.xpath.parser import parse

#: The navigational axes admitted by Definition 2.5.
CORE_AXES = frozenset(
    {
        "self",
        "child",
        "parent",
        "descendant",
        "descendant-or-self",
        "ancestor",
        "ancestor-or-self",
        "following",
        "following-sibling",
        "preceding",
        "preceding-sibling",
    }
)

#: Default bound on arithmetic/concat nesting (the constant k of Definitions
#: 5.1(3) and 6.1(4)).  Any constant works for the theory; the classifiers
#: take it as a parameter with this default.
DEFAULT_NESTING_BOUND = 3

FRAGMENT_COMPLEXITY = {
    "PF": "NL-complete",
    "positive Core XPath": "LOGCFL-complete",
    "Core XPath": "P-complete",
    "pWF": "LOGCFL",
    "WF": "P-complete",
    "pXPath": "LOGCFL-complete",
    "XPath": "P-complete",
}

#: Fragment inclusion order used to pick the most specific fragment; earlier
#: entries are more specific (Figure 1).
FRAGMENT_ORDER = (
    "PF",
    "positive Core XPath",
    "Core XPath",
    "pWF",
    "WF",
    "pXPath",
    "XPath",
)


def _as_expr(query: XPathExpr | str) -> XPathExpr:
    return parse(query) if isinstance(query, str) else query


# ---------------------------------------------------------------------------
# Core XPath (Definition 2.5)
# ---------------------------------------------------------------------------


def violations_core_xpath(query: XPathExpr | str, allow_negation: bool = True) -> list[str]:
    """Return the reasons ``query`` is not a Core XPath query (empty = member)."""
    expr = _as_expr(query)
    violations: list[str] = []
    if not _is_union_of_location_paths(expr):
        violations.append("top-level expression must be a location path (or union of them)")
        return violations
    _collect_core_violations(expr, violations, allow_negation, toplevel=True)
    return violations


def _is_union_of_location_paths(expr: XPathExpr) -> bool:
    if isinstance(expr, LocationPath):
        return True
    if isinstance(expr, BinaryOp) and expr.op == "|":
        return _is_union_of_location_paths(expr.left) and _is_union_of_location_paths(expr.right)
    return False


def _collect_core_violations(
    expr: XPathExpr, violations: list[str], allow_negation: bool, toplevel: bool
) -> None:
    if isinstance(expr, BinaryOp) and expr.op == "|":
        _collect_core_violations(expr.left, violations, allow_negation, toplevel)
        _collect_core_violations(expr.right, violations, allow_negation, toplevel)
        return
    if isinstance(expr, LocationPath):
        for location_step in expr.steps:
            _collect_core_step_violations(location_step, violations, allow_negation)
        return
    violations.append(f"unexpected {type(expr).__name__} in a location-path position")


def _collect_core_step_violations(
    location_step: Step, violations: list[str], allow_negation: bool
) -> None:
    if location_step.axis not in CORE_AXES:
        violations.append(f"axis {location_step.axis!r} is outside Core XPath")
    for predicate in location_step.predicates:
        _collect_core_condition_violations(predicate, violations, allow_negation)


def _collect_core_condition_violations(
    expr: XPathExpr, violations: list[str], allow_negation: bool
) -> None:
    if isinstance(expr, BinaryOp) and expr.op in ("and", "or"):
        _collect_core_condition_violations(expr.left, violations, allow_negation)
        _collect_core_condition_violations(expr.right, violations, allow_negation)
        return
    if isinstance(expr, FunctionCall) and expr.name == "not" and len(expr.args) == 1:
        if not allow_negation:
            violations.append("the not() function is excluded (positive fragment)")
        _collect_core_condition_violations(expr.args[0], violations, allow_negation)
        return
    if isinstance(expr, LocationPath):
        for location_step in expr.steps:
            _collect_core_step_violations(location_step, violations, allow_negation)
        return
    violations.append(
        f"condition {expr} is not built from and/or/not and location paths"
    )


def is_core_xpath(query: XPathExpr | str) -> bool:
    """Definition 2.5 membership."""
    return not violations_core_xpath(query)


def is_positive_core_xpath(query: XPathExpr | str) -> bool:
    """Core XPath without negation (Theorem 4.1/4.2's fragment)."""
    return not violations_core_xpath(query, allow_negation=False)


# ---------------------------------------------------------------------------
# PF (Section 4)
# ---------------------------------------------------------------------------


def violations_pf(query: XPathExpr | str) -> list[str]:
    """PF: Core XPath location paths with no conditions at all."""
    expr = _as_expr(query)
    violations = violations_core_xpath(expr)
    if violations:
        return violations
    if max_predicates_per_step(expr) > 0:
        violations.append("PF forbids conditions (bracketed predicates)")
    return violations


def is_pf(query: XPathExpr | str) -> bool:
    """Membership in the path-expressions fragment PF."""
    return not violations_pf(query)


# ---------------------------------------------------------------------------
# WF (Definition 2.6)
# ---------------------------------------------------------------------------


def violations_wf(query: XPathExpr | str) -> list[str]:
    """Return the reasons ``query`` is not in the Wadler fragment WF."""
    expr = _as_expr(query)
    violations: list[str] = []
    expr_type = static_type(expr)
    if expr_type == OBJECT:
        violations.append("variables are outside WF")
    _collect_wf_violations(expr, violations, role="expr")
    return violations


def _collect_wf_violations(expr: XPathExpr, violations: list[str], role: str) -> None:
    """Check the WF grammar; ``role`` is one of expr/bexpr/nexpr/locpath."""
    if isinstance(expr, LocationPath):
        if role == "nexpr":
            violations.append(
                "WF comparisons only relate numeric expressions, not location paths"
            )
        for location_step in expr.steps:
            if location_step.axis not in CORE_AXES:
                violations.append(f"axis {location_step.axis!r} is outside WF")
            for predicate in location_step.predicates:
                _collect_wf_violations(predicate, violations, role="bexpr")
        return
    if isinstance(expr, BinaryOp):
        if expr.op == "|":
            _collect_wf_violations(expr.left, violations, role="locpath")
            _collect_wf_violations(expr.right, violations, role="locpath")
            return
        if expr.op in ("and", "or"):
            _collect_wf_violations(expr.left, violations, role="bexpr")
            _collect_wf_violations(expr.right, violations, role="bexpr")
            return
        if expr.op in COMPARISON_OPERATORS:
            _collect_wf_violations(expr.left, violations, role="nexpr")
            _collect_wf_violations(expr.right, violations, role="nexpr")
            return
        if expr.op in ARITHMETIC_OPERATORS:
            if role not in ("nexpr", "expr"):
                violations.append(f"arithmetic {expr} used where a {role} is required")
            _collect_wf_violations(expr.left, violations, role="nexpr")
            _collect_wf_violations(expr.right, violations, role="nexpr")
            return
    if isinstance(expr, Negate):
        _collect_wf_violations(expr.operand, violations, role="nexpr")
        return
    if isinstance(expr, FunctionCall):
        if expr.name == "not" and len(expr.args) == 1:
            _collect_wf_violations(expr.args[0], violations, role="bexpr")
            return
        if expr.name in ("position", "last") and not expr.args:
            if role not in ("nexpr", "expr"):
                violations.append(f"{expr.name}() used where a {role} is required")
            return
        violations.append(f"function {expr.name}() is outside WF")
        return
    if isinstance(expr, Number):
        return
    if isinstance(expr, Literal):
        violations.append("string literals are outside WF")
        return
    if isinstance(expr, (FilterExpr, PathExpr)):
        violations.append(f"{type(expr).__name__} expressions are outside WF")
        return
    if isinstance(expr, VariableReference):
        violations.append("variables are outside WF")
        return
    if isinstance(expr, Step):
        _collect_wf_violations(LocationPath(False, (expr,)), violations, role)
        return
    violations.append(f"unsupported construct {type(expr).__name__} in WF")


def is_wf(query: XPathExpr | str) -> bool:
    """Definition 2.6 membership."""
    return not violations_wf(query)


# ---------------------------------------------------------------------------
# pWF (Definition 5.1)
# ---------------------------------------------------------------------------


def violations_pwf(
    query: XPathExpr | str, nesting_bound: int = DEFAULT_NESTING_BOUND
) -> list[str]:
    """Return the reasons ``query`` is not in pWF."""
    expr = _as_expr(query)
    violations = violations_wf(expr)
    if max_predicates_per_step(expr) >= 2:
        violations.append(
            "iterated predicates χ::t[e1]…[ek] with k ≥ 2 are excluded (Definition 5.1(1))"
        )
    if "not" in functions_used(expr):
        violations.append("the not() function is excluded (Definition 5.1(2))")
    depth = arithmetic_nesting_depth(expr)
    if depth > nesting_bound:
        violations.append(
            f"arithmetic nesting depth {depth} exceeds the bound {nesting_bound} "
            "(Definition 5.1(3))"
        )
    return violations


def is_pwf(query: XPathExpr | str, nesting_bound: int = DEFAULT_NESTING_BOUND) -> bool:
    """Definition 5.1 membership."""
    return not violations_pwf(query, nesting_bound)


# ---------------------------------------------------------------------------
# pXPath (Definition 6.1)
# ---------------------------------------------------------------------------


def violations_pxpath(
    query: XPathExpr | str, nesting_bound: int = DEFAULT_NESTING_BOUND
) -> list[str]:
    """Return the reasons ``query`` is not in pXPath."""
    expr = _as_expr(query)
    violations: list[str] = []
    if max_predicates_per_step(expr) >= 2:
        violations.append(
            "iterated predicates χ::t[e1]…[ek] with k ≥ 2 are excluded (Definition 6.1(1))"
        )
    forbidden = functions_used(expr) & PXPATH_FORBIDDEN_FUNCTIONS
    if forbidden:
        violations.append(
            f"forbidden function(s) {', '.join(sorted(forbidden))} (Definition 6.1(2))"
        )
    for node in expr.walk():
        if isinstance(node, BinaryOp) and node.op in COMPARISON_OPERATORS:
            if BOOLEAN in (static_type(node.left), static_type(node.right)):
                violations.append(
                    f"comparison {node} has a boolean operand (Definition 6.1(3))"
                )
    depth = arithmetic_nesting_depth(expr)
    if depth > nesting_bound:
        violations.append(
            f"arithmetic nesting depth {depth} exceeds the bound {nesting_bound} "
            "(Definition 6.1(4))"
        )
    concat_arity, concat_nesting = concat_arity_and_nesting(expr)
    if concat_arity > max(nesting_bound, 2):
        violations.append(
            f"concat() arity {concat_arity} exceeds the bound (Definition 6.1(4))"
        )
    if concat_nesting > nesting_bound:
        violations.append(
            f"concat() nesting depth {concat_nesting} exceeds the bound (Definition 6.1(4))"
        )
    return violations


def is_pxpath(query: XPathExpr | str, nesting_bound: int = DEFAULT_NESTING_BOUND) -> bool:
    """Definition 6.1 membership."""
    return not violations_pxpath(query, nesting_bound)


# ---------------------------------------------------------------------------
# Classification (Figure 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Classification:
    """Result of classifying a query against every fragment of Figure 1."""

    query: str
    fragments: tuple[str, ...]
    most_specific: str
    combined_complexity: str
    violations: dict = field(default_factory=dict, compare=False, hash=False)

    def __contains__(self, fragment: str) -> bool:
        return fragment in self.fragments


def classify(query: XPathExpr | str, nesting_bound: int = DEFAULT_NESTING_BOUND) -> Classification:
    """Classify ``query`` against every fragment and report Figure 1's complexity."""
    expr = _as_expr(query)
    membership: dict[str, list[str]] = {
        "PF": violations_pf(expr),
        "positive Core XPath": violations_core_xpath(expr, allow_negation=False),
        "Core XPath": violations_core_xpath(expr),
        "pWF": violations_pwf(expr, nesting_bound),
        "WF": violations_wf(expr),
        "pXPath": violations_pxpath(expr, nesting_bound),
        "XPath": [],
    }
    fragments = tuple(name for name in FRAGMENT_ORDER if not membership[name])
    most_specific = fragments[0]
    return Classification(
        query=expr.unparse(),
        fragments=fragments,
        most_specific=most_specific,
        combined_complexity=FRAGMENT_COMPLEXITY[most_specific],
        violations={name: reasons for name, reasons in membership.items() if reasons},
    )
