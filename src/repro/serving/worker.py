"""The worker side of the sharded serving tier.

:func:`worker_main` is the entry point a
:class:`~repro.serving.ShardedPool` runs in each child process.  A worker
is deliberately a *complete, ordinary* serving process built from the
in-process pieces:

* one :class:`~repro.engine.XPathEngine` with its own plan cache,
  document registry and evaluator pools (plan compilation happens at most
  once per distinct query text **per worker**);
* one :class:`~repro.store.CorpusStore` opened read-only on the shared
  store directory — the store *is* the document transport: the parent
  never ships tree bytes, only keys, and hydration uses ``mmap=True`` by
  default so snapshot pages are shared between every process mapping
  them;
* a receive loop over the :mod:`~repro.serving.wire` frames, answering
  ``QUERY`` with ``RESULT_IDS``/``RESULT_VALUE``/``ERROR``, ``WARM`` with
  ``READY``, ``STATS`` with ``STATS_REPLY``, ``PING`` with ``PONG``, and
  exiting cleanly on ``SHUTDOWN``, ``DRAIN`` (after acknowledging with
  ``DRAINED``) or a closed pipe.

The loop drains its pipe without any cross-request synchronisation: the
pool is the only writer, requests carry correlation ids (``seq``), and
each request is answered before the next is read, so replies stream back
in arrival order while the pool's send window keeps the pipe full — the
wire-level batch protocol mirrors what
:func:`repro.planner.evaluate_many_ids` does in process (shared plans,
shared evaluator instances, id-native answers).

Errors never kill a worker: any exception an evaluation raises is sent
back as a typed ``ERROR`` frame and the loop continues with the next
request.  Only a malformed frame (a protocol bug, not a query bug)
terminates the worker, which the pool's supervisor treats like any other
worker death: restart, re-warm, replay.

Fault injection (test-only)
---------------------------

The supervision test-suite and benchmark E18 need workers that die on
cue, under both ``fork`` and ``spawn`` start methods — including workers
the supervisor *restarts*, which the test process never touches directly.
The one channel that reaches all of them is the environment, so a worker
arms an optional fault from ``REPRO_SERVING_FAULT`` at startup
(``tests/serving/faultinject.py`` is the harness that sets it; the
variable is unset in production and this code reduces to a no-op check
per frame).  Spec grammar::

    REPRO_SERVING_FAULT = <action>:<trigger>[:<n>]

    action   exit      — os._exit(1), a hard crash (SIGKILL-equivalent)
             midframe  — write a torn reply frame, then os._exit(1)
             hang      — sleep forever (a live but unresponsive worker)
    trigger  query     — fire on the n-th QUERY frame this process reads
             warm      — fire on the n-th WARM frame
             close     — fire on SHUTDOWN/DRAIN (hang: shutdown never
                         completes; exercises the close deadline)

``REPRO_SERVING_FAULT_ONCE`` may name a file: the fault only fires while
the file exists and firing unlinks it, so exactly one worker process
crashes and its restarted successor is healthy (the recovery scenario).
Without it the fault re-arms in every restarted worker (the
retry-exhaustion scenario).
"""

from __future__ import annotations

import os
import struct
import time
from typing import TYPE_CHECKING, Optional

from repro.serving import wire

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from multiprocessing.connection import Connection

    from repro.engine import XPathEngine

FAULT_ENV = "REPRO_SERVING_FAULT"
FAULT_ONCE_ENV = "REPRO_SERVING_FAULT_ONCE"

_FAULT_ACTIONS = ("exit", "midframe", "hang")
_FAULT_TRIGGERS = ("query", "warm", "close")


class _Fault:
    """One armed fault: fire ``action`` on the n-th ``trigger`` frame."""

    __slots__ = ("action", "trigger", "n", "once_path", "count")

    def __init__(self, action: str, trigger: str, n: int, once_path) -> None:
        self.action = action
        self.trigger = trigger
        self.n = n
        self.once_path = once_path
        self.count = 0

    def _armed(self) -> bool:
        if self.once_path is None:
            return True
        # One crash total across the worker's whole restart lineage: the
        # first process to fire consumes the token file.
        try:
            os.unlink(self.once_path)
        except OSError:
            return False
        return True

    def hit(self, trigger: str, conn: "Optional[Connection]" = None,
            reply: Optional[bytes] = None) -> None:
        """Fire if this frame is the n-th of ``trigger`` (may not return)."""
        if trigger != self.trigger:
            return
        self.count += 1
        if self.count != self.n or not self._armed():
            return
        if self.action == "hang":
            time.sleep(3600)  # pragma: no cover - the supervisor kills us
        if self.action == "midframe" and conn is not None and reply is not None:
            # A torn reply: the Connection length prefix promises the full
            # frame, the body stops halfway — the parent sees EOF mid-read.
            header = struct.pack("!i", len(reply))
            os.write(conn.fileno(), header + reply[: len(reply) // 2])
        os._exit(1)


def _load_fault() -> Optional[_Fault]:
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return None
    parts = spec.split(":")
    if len(parts) < 2 or parts[0] not in _FAULT_ACTIONS or parts[1] not in _FAULT_TRIGGERS:
        raise ValueError(f"malformed {FAULT_ENV} spec {spec!r}")
    n = int(parts[2]) if len(parts) > 2 else 1
    return _Fault(parts[0], parts[1], n, os.environ.get(FAULT_ONCE_ENV))


def worker_main(
    conn: "Connection", store_root: str, mmap: bool, worker_id: int
) -> None:
    """Serve queries over ``conn`` until shutdown (runs in a child process)."""
    # Imports happen here, not at module top: under the ``spawn`` start
    # method the child pays them at startup, and keeping them inside the
    # function keeps the module importable for pickling before the heavy
    # engine modules load.
    from repro.engine import XPathEngine
    from repro.store import CorpusStore

    engine = XPathEngine().attach_store(CorpusStore(store_root), mmap=mmap)
    fault = _load_fault()
    served = 0
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent went away: treat like shutdown
        message = wire.decode(frame)
        if message.type == wire.MSG_SHUTDOWN:
            if fault is not None:
                fault.hit("close")
            break
        if message.type == wire.MSG_DRAIN:
            # Everything the parent sent before DRAIN has already been
            # answered (one reply per request, in arrival order), so the
            # acknowledgement doubles as the "nothing in flight" receipt.
            if fault is not None:
                fault.hit("close")
            conn.send_bytes(wire.encode_drained(served, os.getpid()))
            break
        if message.type == wire.MSG_QUERY:
            reply, trace_frame = _answer(engine, message)
            if fault is not None:
                fault.hit("query", conn, reply)
            if trace_frame is not None:
                # The trace frame precedes its result frame so the pool
                # can attach the span tree before it resolves the seq.
                conn.send_bytes(trace_frame)
            conn.send_bytes(reply)
            served += 1
        elif message.type == wire.MSG_WARM:
            if fault is not None:
                fault.hit("warm")
            hydrated = 0
            for key in message.keys:
                engine.add_from_store(key)
                hydrated += 1
            conn.send_bytes(wire.encode_ready(hydrated, os.getpid()))
        elif message.type == wire.MSG_PING:
            conn.send_bytes(wire.encode_pong(message.seq, os.getpid()))
        elif message.type == wire.MSG_STATS:
            conn.send_bytes(
                wire.encode_stats_reply(_stats_payload(engine, worker_id, served))
            )
        else:
            raise wire.WireError(
                f"worker received a reply-type frame (type {message.type})"
            )
    conn.close()


def _answer(
    engine: "XPathEngine", message: wire.Message
) -> tuple[bytes, Optional[bytes]]:
    """Evaluate one QUERY message and encode its reply frame(s).

    Node-set results go out as sorted int32 id arrays, scalars as typed
    scalars; under :data:`~repro.serving.wire.FLAG_IDS` the evaluation
    itself runs id-native (``evaluate_many_ids`` semantics — a scalar
    query is an error).  Any exception becomes an ``ERROR`` frame.

    Returns ``(reply, trace_frame)``: under
    :data:`~repro.serving.wire.FLAG_TRACE` the second element is a TRACE
    frame carrying the ``worker`` span tree (with the engine's trace as
    a child) to send *before* the reply; otherwise it is None.  Errors
    carry no trace frame.
    """
    from repro.store import StoreKey
    from repro.telemetry.trace import Trace, maybe_span
    from repro.xpath.functions import NODESET, static_type

    trace = Trace("worker") if message.wants_trace else None
    try:
        handle = engine.add(StoreKey(message.key))
        if message.ids_only:
            with maybe_span(trace, "worker-eval"):
                result = engine.evaluate(
                    message.query, handle, ids=True, trace=message.wants_trace
                )
        else:
            # Pick the id-native path whenever the query's static type
            # says the answer is a node-set, so node objects are never
            # materialised just to be re-encoded as ids.
            plan = engine.get_plan(message.query)
            wants_ids = static_type(plan.expr) == NODESET
            with maybe_span(trace, "worker-eval"):
                result = engine.evaluate(
                    message.query,
                    handle,
                    ids=wants_ids,
                    trace=message.wants_trace,
                )
        if result.is_node_set:
            reply = wire.encode_result_ids(message.seq, result.ids)
        else:
            reply = wire.encode_result_value(message.seq, result.value)
    except Exception as error:  # noqa: BLE001 - every query error crosses the wire
        return wire.encode_error(message.seq, type(error).__name__, str(error)), None
    trace_frame = None
    if trace is not None:
        if result.trace is not None:
            trace.add_child(result.trace)
        trace_frame = wire.encode_trace(message.seq, trace.to_dict())
    return reply, trace_frame


def _stats_payload(engine: "XPathEngine", worker_id: int, served: int) -> dict:
    """The counters a worker reports for the pool's merged ``stats()``."""
    stats = engine.stats()
    return {
        "worker": worker_id,
        "pid": os.getpid(),
        "served": served,
        "queries": stats.queries,
        "dispatch": dict(stats.dispatch),
        "plan_hits": stats.plans.hits,
        "plan_misses": stats.plans.misses,
        "documents": stats.documents.size,
        "store_hits": stats.store.hits if stats.store else 0,
        "store_loads": stats.store.loads if stats.store else 0,
    }
