"""The worker side of the sharded serving tier.

:func:`worker_main` is the entry point a
:class:`~repro.serving.ShardedPool` runs in each child process.  A worker
is deliberately a *complete, ordinary* serving process built from the
in-process pieces:

* one :class:`~repro.engine.XPathEngine` with its own plan cache,
  document registry and evaluator pools (plan compilation happens at most
  once per distinct query text **per worker**);
* one :class:`~repro.store.CorpusStore` opened read-only on the shared
  store directory — the store *is* the document transport: the parent
  never ships tree bytes, only keys, and hydration uses ``mmap=True`` by
  default so snapshot pages are shared between every process mapping
  them;
* a receive loop over the :mod:`~repro.serving.wire` frames, answering
  ``QUERY`` with ``RESULT_IDS``/``RESULT_VALUE``/``ERROR``, ``WARM`` with
  ``READY``, ``STATS`` with ``STATS_REPLY``, and exiting cleanly on
  ``SHUTDOWN`` or a closed pipe.

The loop drains its pipe without any cross-request synchronisation: the
pool is the only writer, requests carry correlation ids (``seq``), and
each request is answered before the next is read, so replies stream back
in arrival order while the pool's send window keeps the pipe full — the
wire-level batch protocol mirrors what
:func:`repro.planner.evaluate_many_ids` does in process (shared plans,
shared evaluator instances, id-native answers).

Errors never kill a worker: any exception an evaluation raises is sent
back as a typed ``ERROR`` frame and the loop continues with the next
request.  Only a malformed frame (a protocol bug, not a query bug)
terminates the worker, which the pool surfaces as a dead-worker error.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.serving import wire

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from multiprocessing.connection import Connection

    from repro.engine import XPathEngine


def worker_main(
    conn: "Connection", store_root: str, mmap: bool, worker_id: int
) -> None:
    """Serve queries over ``conn`` until shutdown (runs in a child process)."""
    # Imports happen here, not at module top: under the ``spawn`` start
    # method the child pays them at startup, and keeping them inside the
    # function keeps the module importable for pickling before the heavy
    # engine modules load.
    from repro.engine import XPathEngine
    from repro.store import CorpusStore

    engine = XPathEngine().attach_store(CorpusStore(store_root), mmap=mmap)
    served = 0
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent went away: treat like shutdown
        message = wire.decode(frame)
        if message.type == wire.MSG_SHUTDOWN:
            break
        if message.type == wire.MSG_QUERY:
            conn.send_bytes(_answer(engine, message))
            served += 1
        elif message.type == wire.MSG_WARM:
            hydrated = 0
            for key in message.keys:
                engine.add_from_store(key)
                hydrated += 1
            conn.send_bytes(wire.encode_ready(hydrated, os.getpid()))
        elif message.type == wire.MSG_STATS:
            conn.send_bytes(
                wire.encode_stats_reply(_stats_payload(engine, worker_id, served))
            )
        else:
            raise wire.WireError(
                f"worker received a reply-type frame (type {message.type})"
            )
    conn.close()


def _answer(engine: "XPathEngine", message: wire.Message) -> bytes:
    """Evaluate one QUERY message and encode its reply frame.

    Node-set results go out as sorted int32 id arrays, scalars as typed
    scalars; under :data:`~repro.serving.wire.FLAG_IDS` the evaluation
    itself runs id-native (``evaluate_many_ids`` semantics — a scalar
    query is an error).  Any exception becomes an ``ERROR`` frame.
    """
    from repro.store import StoreKey
    from repro.xpath.functions import NODESET, static_type

    try:
        handle = engine.add(StoreKey(message.key))
        if message.ids_only:
            result = engine.evaluate(message.query, handle, ids=True)
        else:
            # Pick the id-native path whenever the query's static type
            # says the answer is a node-set, so node objects are never
            # materialised just to be re-encoded as ids.
            plan = engine.get_plan(message.query)
            wants_ids = static_type(plan.expr) == NODESET
            result = engine.evaluate(message.query, handle, ids=wants_ids)
        if result.is_node_set:
            return wire.encode_result_ids(message.seq, result.ids)
        return wire.encode_result_value(message.seq, result.value)
    except Exception as error:  # noqa: BLE001 - every query error crosses the wire
        return wire.encode_error(message.seq, type(error).__name__, str(error))


def _stats_payload(engine: "XPathEngine", worker_id: int, served: int) -> dict:
    """The counters a worker reports for the pool's merged ``stats()``."""
    stats = engine.stats()
    return {
        "worker": worker_id,
        "pid": os.getpid(),
        "served": served,
        "queries": stats.queries,
        "dispatch": dict(stats.dispatch),
        "plan_hits": stats.plans.hits,
        "plan_misses": stats.plans.misses,
        "documents": stats.documents.size,
        "store_hits": stats.store.hits if stats.store else 0,
        "store_loads": stats.store.loads if stats.store else 0,
    }
