"""`XPathServer`: the asyncio network front door over the sharded pool.

Until now the :class:`~repro.serving.ShardedPool` spoke only to its own
parent process over pipes; this module puts a real ingress on it — one
asyncio TCP server multiplexing any number of persistent client
connections onto one supervised pool, speaking the same framed ``RPW1``
wire format (:mod:`repro.serving.wire`) end-to-end, so a query crosses
process *and* machine boundaries as the identical compact id-native
frames.

Protocols
---------

A connection declares its protocol with its first byte:

* ``R`` — the **binary protocol**: the client sends the 4-byte magic
  ``RPW1`` as a stream preamble, the server answers with a framed
  ``HELLO`` (protocol version, pid, banner), and both sides then
  exchange length-prefixed frames (:func:`~repro.serving.wire
  .encode_framed`).  Requests are ``QUERY`` frames (the client picks the
  ``seq``); the server answers ``RESULT_IDS`` / ``RESULT_VALUE`` /
  ``ERROR`` / ``OVERLOADED`` carrying the same ``seq`` — responses may
  interleave across a pipelined window, correlation is the client's job
  (:class:`repro.serving.client.ServingClient` does it).  ``PING``,
  ``STATS``, ``METRICS`` and ``DRAIN`` work over the same connection; a
  QUERY carrying ``FLAG_TRACE`` gets a ``TRACE`` frame (the request's
  span tree) immediately before its result frame.
* ``{`` — the **JSON shim** for curl/netcat-style clients: one JSON
  object per line in (``{"key": K, "query": Q}``, optional ``"ids"``,
  ``"trace"`` and ``"seq"``; ``{"op": "ping"}``; ``{"op": "stats"}``;
  ``{"op": "metrics"}`` with optional ``"format": "prometheus"``;
  ``{"op": "trace"}`` for the ring buffer of completed traced
  requests), one JSON object per line out (``{"seq":…, "ids": […]}`` /
  ``{"value": …}`` / ``{"error": {"type":…, "message":…}}`` /
  ``{"overloaded": true, …}``).

Admission control and backpressure
----------------------------------

The server keeps a hard bound on concurrently admitted requests,
``max_inflight`` (default: the pool's ``workers × window``, i.e. exactly
what the dispatch windows can keep busy).  A request arriving above the
bound is *rejected immediately* with a typed ``OVERLOADED`` frame (JSON:
``{"overloaded": true}``) carrying the current in-flight count and the
capacity — it is never queued, so offered load beyond capacity costs the
server O(1) memory per rejection instead of an unbounded backlog.
Admitted requests are micro-batched onto the pool by a single dispatcher
thread (the pool is a single-dispatcher backend), so many clients' small
requests amortise into the pool's windowed batch protocol.

Slow clients cannot wedge the server: every write is bounded by
``write_timeout`` and a connection that cannot drain within it is
aborted (its admitted requests still complete and are discarded).  Idle
connections are closed after ``idle_timeout`` (never while responses are
still owed).

Lifecycle
---------

``await server.start()`` binds; ``await server.drain()`` is the graceful
path mirroring the pool's DRAIN semantics one level up: stop accepting
connections, reject new requests as OVERLOADED, wait for the in-flight
set to flush to every client (slow readers included, under the drain
deadline), send each binary client a ``DRAINED`` frame carrying its
connection's served count (JSON: ``{"drained": N}``), close the
connections, and finally drain the pool itself if the server owns it.
``await server.aclose()`` is the fast path.  For synchronous callers
(:meth:`repro.engine.XPathEngine.serve_network`, the CLI, tests) the
server also runs on a background thread with its own event loop:
:meth:`XPathServer.start_background` / :meth:`XPathServer.shutdown`, or
simply ``with XPathServer(...) as (host, port):``.

Operations
----------

``PING`` answers ``PONG`` without touching the pool (liveness), ``STATS``
answers a JSON payload merging the server's own counters (connections,
served, overloaded rejections, in-flight peak) with the pool's merged
per-worker counters — one round-trip describes the whole process tree.
``METRICS`` answers the same counters (plus latency histograms) in
Prometheus text or JSON exposition format, assembled from the server,
pool and worker telemetry registries (:mod:`repro.telemetry`).
Every request emits one structured log record on the
``repro.serving.server`` logger (``query client=… seq=… key=… status=…
wall_ms=…``), datatracker-style: greppable key=value pairs, one line per
event.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import queue
import threading
import time
from collections import deque
from typing import Optional, Union

from repro.errors import ReproError
from repro.serving import wire
from repro.serving.pool import ServingError, ShardedPool
from repro.telemetry.exposition import (
    gauge_family,
    render_json,
    render_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Trace, maybe_span

logger = logging.getLogger("repro.serving.server")

#: Fallback cap on one dispatcher micro-batch when the pool's window
#: arithmetic is unavailable (never hit in practice).
DEFAULT_BATCH_MAX = 128

#: Completed traced requests kept in the server's trace ring buffer
#: (retrieved with the JSON shim's ``{"op": "trace"}``).
TRACE_BUFFER = 64


class _QueryJob:
    """One admitted request travelling to the dispatcher thread."""

    __slots__ = ("query", "key", "ids", "trace", "future", "loop")

    def __init__(self, query, key, ids, trace, future, loop) -> None:
        self.query = query
        self.key = key
        self.ids = ids
        self.trace = trace
        self.future = future
        self.loop = loop

    def resolve(self, result) -> None:
        """Hand the result (or exception object) back to the event loop."""
        self.loop.call_soon_threadsafe(_set_future, self.future, result)


class _StatsJob:
    """A STATS request travelling to the dispatcher thread."""

    __slots__ = ("future", "loop")

    def __init__(self, future, loop) -> None:
        self.future = future
        self.loop = loop

    def resolve(self, result) -> None:
        self.loop.call_soon_threadsafe(_set_future, self.future, result)


class _MetricsJob:
    """A METRICS request travelling to the dispatcher thread.

    Resolved off the loop like :class:`_StatsJob` — assembling the
    exposition talks to the pool (a single-dispatcher backend).
    """

    __slots__ = ("format", "future", "loop")

    def __init__(self, format, future, loop) -> None:
        self.format = format
        self.future = future
        self.loop = loop

    def resolve(self, result) -> None:
        self.loop.call_soon_threadsafe(_set_future, self.future, result)


def _set_future(future: "asyncio.Future", result) -> None:
    if not future.done():
        future.set_result(result)


class _Connection:
    """Per-connection state: writer serialisation, flush tracking."""

    __slots__ = (
        "reader", "writer", "peer", "mode", "lock", "pending",
        "flushed", "served", "errors", "closing", "eof",
    )

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        peername = writer.get_extra_info("peername")
        self.peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self.mode = "?"
        self.lock = asyncio.Lock()      # one in-order write stream per client
        self.pending = 0                # responses owed to this client
        self.flushed = asyncio.Event()  # set whenever pending == 0
        self.flushed.set()
        self.served = 0
        self.errors = 0
        self.closing = False
        self.eof = False


class XPathServer:
    """An asyncio TCP front door over one supervised :class:`ShardedPool`.

    Parameters
    ----------
    pool:
        The :class:`ShardedPool` to serve (the server never closes a
        pool it was given), or a :class:`~repro.store.CorpusStore` /
        store path — then the server builds its own pool at
        :meth:`start` with ``workers`` processes and drains it on
        shutdown.
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read it from
        :attr:`address` after :meth:`start`).
    workers:
        Worker count when the server builds its own pool.
    max_inflight:
        Admission bound on concurrently in-flight requests across every
        connection.  Default: the pool's ``workers × window`` — the most
        the dispatch windows can keep busy; anything above that would
        only queue.
    idle_timeout:
        Seconds a connection may sit idle (no request in flight, nothing
        to read) before the server closes it.  ``None`` = never.
    write_timeout:
        Seconds one response write may take before the client is judged
        wedged and its connection aborted.
    drain_timeout:
        Deadline for :meth:`drain`'s flush-everything phase.
    banner:
        Free-text server identification echoed in the HELLO frame.
    dispatch_lock:
        Lock the dispatcher holds around every pool call.  The pool is a
        single-dispatcher backend; pass a lock shared with any other
        caller of the same pool (:meth:`repro.engine.XPathEngine
        .serve_network` passes the engine's serving lock, so
        ``evaluate_sharded`` stays safe while the server runs).
    """

    def __init__(
        self,
        pool: Union[ShardedPool, str, os.PathLike, "object"],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 4,
        max_inflight: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        write_timeout: float = 30.0,
        drain_timeout: float = 5.0,
        banner: str = "repro-xpath",
        dispatch_lock: Optional["threading.Lock"] = None,
    ) -> None:
        if isinstance(pool, ShardedPool):
            self._pool: Optional[ShardedPool] = pool
            self._pool_source = None
        else:
            self._pool = None
            self._pool_source = pool
        self._workers = workers
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.idle_timeout = idle_timeout
        self.write_timeout = write_timeout
        self.drain_timeout = drain_timeout
        self.banner = banner
        self._dispatch_lock = dispatch_lock or threading.Lock()

        self._own_pool = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[tuple[str, int]] = None
        self._connections: set[_Connection] = set()
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._dispatcher: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._closed = False
        self._inflight = 0
        self._idle_event: Optional[asyncio.Event] = None
        # Counters live in a telemetry registry (incremented on the loop
        # thread, read for STATS/METRICS on the dispatcher thread — the
        # registry's per-thread shards make that safe).  _inflight and
        # _peak_inflight stay plain ints: they gate admission on the loop
        # thread and are exposed as derived gauges.
        self.metrics = MetricsRegistry()
        self._connections_count = self.metrics.counter(
            "repro_server_connections_total",
            "Client connections accepted since start.",
        )
        self._served_total = self.metrics.counter(
            "repro_server_requests_total",
            "Requests answered with a result frame.",
        )
        self._errors_total = self.metrics.counter(
            "repro_server_request_errors_total",
            "Requests answered with an error frame.",
        )
        self._overloaded_total = self.metrics.counter(
            "repro_server_overloaded_total",
            "Requests rejected by admission control.",
        )
        self._idle_closed_total = self.metrics.counter(
            "repro_server_idle_closed_total",
            "Connections closed for crossing the idle timeout.",
        )
        self._aborted_total = self.metrics.counter(
            "repro_server_aborted_total",
            "Connections aborted as wedged (write timeout or broken pipe).",
        )
        self._request_seconds = self.metrics.histogram(
            "repro_server_request_seconds",
            "Per-request wall time from dispatch to response write.",
        )
        self._peak_inflight = 0
        # Completed traced requests (span-tree dicts), loop thread only.
        self._traces: "deque[dict]" = deque(maxlen=TRACE_BUFFER)
        # background-thread plumbing
        self._shutdown_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._thread_ready: Optional[threading.Event] = None
        self._thread_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stop_graceful = True

    # -- properties --------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid once :meth:`start` returned)."""
        if self._address is None:
            raise ServingError("the server is not started")
        return self._address

    @property
    def pool(self) -> ShardedPool:
        """The pool behind the front door (built at start if needed)."""
        if self._pool is None:
            raise ServingError("the server is not started")
        return self._pool

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` (or :meth:`aclose`) has begun."""
        return self._draining

    # -- async lifecycle ---------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listening socket and start the dispatcher; returns address."""
        if self._server is not None:
            return self.address
        if self._closed:
            raise ServingError("the server is closed")
        loop = asyncio.get_running_loop()
        self._loop = loop
        if self._pool is None:
            # Building a pool forks+warms workers: keep it off the loop.
            source, workers = self._pool_source, self._workers
            self._pool = await loop.run_in_executor(
                None, lambda: ShardedPool(source, workers=workers)
            )
            self._own_pool = True
        else:
            self._own_pool = False
        if self.max_inflight is None:
            self.max_inflight = self._pool.workers * self._pool.window
        self._batch_max = max(self.max_inflight, DEFAULT_BATCH_MAX)
        self._dispatcher = threading.Thread(
            target=self._dispatcher_main, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        logger.info(
            "listening host=%s port=%d max_inflight=%d workers=%d",
            self._address[0], self._address[1], self.max_inflight,
            self._pool.workers,
        )
        return self._address

    async def serve_forever(self) -> None:
        """Run until :meth:`drain`/:meth:`aclose` (or task cancellation)."""
        if self._server is None:
            await self.start()
        self._stop_event = asyncio.Event()
        await self._stop_event.wait()

    async def drain(self, timeout: Optional[float] = None) -> int:
        """Gracefully shut down; returns the total requests served.

        Mirrors the pool's DRAIN semantics one level up: stop accepting,
        reject new requests as OVERLOADED, flush every owed response to
        its client (under ``timeout``, default ``drain_timeout``), send
        each client a DRAINED receipt with its connection's served
        count, close the connections, then drain the pool if the server
        owns it.  Idempotent.
        """
        if self._closed:
            return int(self._served_total.value())
        deadline = time.monotonic() + (
            self.drain_timeout if timeout is None else timeout
        )
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wait for the in-flight set to empty (new requests are already
        # rejected by _admit), bounded by the drain deadline.
        self._idle_event = asyncio.Event()
        if self._inflight == 0:
            self._idle_event.set()
        try:
            await asyncio.wait_for(
                self._idle_event.wait(),
                max(0.0, deadline - time.monotonic()),
            )
        except asyncio.TimeoutError:  # pragma: no cover - hung pool backstop
            logger.warning(
                "drain deadline passed with %d request(s) in flight",
                self._inflight,
            )
        # Flush + notify + close every connection (slow readers get until
        # the deadline; a client that cannot take the receipt is aborted).
        for conn in list(self._connections):
            try:
                await asyncio.wait_for(
                    conn.flushed.wait(),
                    max(0.05, deadline - time.monotonic()),
                )
            except asyncio.TimeoutError:  # pragma: no cover - wedged client
                pass
            await self._send_drained(conn)
            self._close_connection(conn)
        logger.info(
            "drained served=%d overloaded=%d connections=%d",
            int(self._served_total.value()),
            int(self._overloaded_total.value()),
            int(self._connections_count.value()),
        )
        await self._stop_dispatcher()
        if self._own_pool and self._pool is not None and not self._pool.closed:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.drain
            )
        self._finish_close()
        return int(self._served_total.value())

    async def aclose(self) -> None:
        """Fast shutdown: abort connections, stop the dispatcher and pool."""
        if self._closed:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            self._close_connection(conn, abort=True)
        await self._stop_dispatcher()
        if self._own_pool and self._pool is not None and not self._pool.closed:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.close
            )
        self._finish_close()

    def _finish_close(self) -> None:
        self._closed = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def _stop_dispatcher(self) -> None:
        if self._dispatcher is None:
            return
        self._jobs.put(None)
        await asyncio.get_running_loop().run_in_executor(
            None, self._dispatcher.join
        )
        self._dispatcher = None

    # -- background-thread lifecycle (sync callers) ------------------------

    def start_background(self) -> tuple[str, int]:
        """Run the server on its own thread + event loop; returns address."""
        # The thread handle is shared with shutdown(); publish it under
        # the same lock so a concurrent start/shutdown pair can never
        # observe (and join/None out) a half-started thread.
        with self._shutdown_lock:
            if self._thread is not None:
                return self.address
            self._thread_ready = threading.Event()
            thread = threading.Thread(
                target=self._thread_main, name="repro-xpath-server", daemon=True
            )
            self._thread = thread
            thread.start()
        self._thread_ready.wait()
        if self._thread_error is not None:
            with self._shutdown_lock:
                self._thread = None
            raise self._thread_error
        return self.address

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._background_main())
        except BaseException as error:  # pragma: no cover - loop crash guard
            self._thread_error = error
            self._thread_ready.set()

    async def _background_main(self) -> None:
        try:
            await self.start()
        except BaseException as error:
            self._thread_error = error
            self._thread_ready.set()
            return
        self._stop_event = asyncio.Event()
        self._thread_ready.set()
        await self._stop_event.wait()

    def shutdown(self, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop a background server from any thread (idempotent).

        ``graceful=True`` runs :meth:`drain` (clients get their owed
        responses and a DRAINED receipt); ``False`` runs :meth:`aclose`.
        Concurrent callers serialise: one does the work, the rest return
        once it is done.
        """
        with self._shutdown_lock:
            thread, loop = self._thread, self._loop
            if thread is None or loop is None or not thread.is_alive():
                return
            coroutine = self.drain() if graceful else self.aclose()
            try:
                future = asyncio.run_coroutine_threadsafe(coroutine, loop)
            except RuntimeError:  # pragma: no cover - loop died under us
                coroutine.close()
                thread.join(timeout)
                return
            try:
                future.result(timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                future.cancel()
            except asyncio.CancelledError:  # pragma: no cover - loop teardown
                pass
            thread.join(timeout)
            self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(graceful=True)

    # -- admission ---------------------------------------------------------

    def _admit(self) -> bool:
        """Admit one request under the in-flight bound (loop thread only)."""
        if self._draining or self._inflight >= self.max_inflight:
            self._overloaded_total.inc()
            return False
        self._inflight += 1
        if self._inflight > self._peak_inflight:
            self._peak_inflight = self._inflight
        return True

    def _release(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self._idle_event is not None:
            self._idle_event.set()

    # -- the dispatcher thread ---------------------------------------------

    def _dispatcher_main(self) -> None:
        """Micro-batch admitted jobs onto the pool (the pool's one caller)."""
        stop = False
        while not stop:
            job = self._jobs.get()
            if job is None:
                break
            batch = [job]
            while len(batch) < self._batch_max:
                try:
                    extra = self._jobs.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            stats_jobs = [j for j in batch if isinstance(j, _StatsJob)]
            metrics_jobs = [j for j in batch if isinstance(j, _MetricsJob)]
            for wants_ids, wants_trace in (
                (False, False), (True, False), (False, True), (True, True)
            ):
                group = [
                    j for j in batch
                    if isinstance(j, _QueryJob)
                    and j.ids is wants_ids
                    and j.trace is wants_trace
                ]
                if not group:
                    continue
                try:
                    with self._dispatch_lock:
                        results = self._pool.evaluate_batch(
                            [(j.query, j.key) for j in group],
                            ids=wants_ids,
                            return_errors=True,
                            trace=wants_trace,
                        )
                except ReproError as error:  # pool closed / ServingError
                    results = [error] * len(group)
                except Exception as error:
                    # Outside the typed taxonomy: a bug, not a request
                    # failure.  Log it (the loop must survive and the
                    # waiters must still be resolved) and fail the batch.
                    logger.exception("dispatcher batch failed untyped")
                    results = [error] * len(group)
                for one, result in zip(group, results):
                    one.resolve(result)
            for one in stats_jobs:
                try:
                    with self._dispatch_lock:
                        payload = self._stats_payload()
                    one.resolve(payload)
                except ReproError as error:
                    one.resolve(error)
                except Exception as error:
                    logger.exception("stats collection failed untyped")
                    one.resolve(error)
            for one in metrics_jobs:
                try:
                    with self._dispatch_lock:
                        body = self._metrics_payload(one.format)
                    one.resolve(body)
                except ReproError as error:
                    one.resolve(error)
                except Exception as error:
                    logger.exception("metrics collection failed untyped")
                    one.resolve(error)

    def _stats_payload(self) -> dict:
        """The STATS answer: server counters + the pool's merged counters."""
        pool_stats = self._pool.stats()
        return {
            "server": {
                "pid": os.getpid(),
                "served": int(self._served_total.value()),
                "errors": int(self._errors_total.value()),
                "overloaded": int(self._overloaded_total.value()),
                "connections_total": int(self._connections_count.value()),
                "connections_active": len(self._connections),
                "inflight": self._inflight,
                "inflight_peak": self._peak_inflight,
                "max_inflight": self.max_inflight,
                "idle_closed": int(self._idle_closed_total.value()),
                "aborted": int(self._aborted_total.value()),
                "draining": self._draining,
            },
            "pool": {
                "workers": pool_stats.workers,
                "served": pool_stats.served,
                "restarts": pool_stats.restarts,
                "retries": pool_stats.retries,
                "timeouts": pool_stats.timeouts,
                "rejected": pool_stats.rejected,
                "documents": pool_stats.documents,
                "plan_hits": pool_stats.plan_hits,
                "plan_misses": pool_stats.plan_misses,
            },
        }

    def metric_families(self) -> list[dict]:
        """Server + pool metric families, ready for exposition.

        The server registry's counters and latency histogram, the
        admission gauges, then the pool's :meth:`~repro.serving
        .ShardedPool.metric_families` — one concatenated list covering
        the whole process tree.  Talks to the pool; call it from the
        dispatcher thread (or any other pool-safe context).
        """
        families = self.metrics.snapshot()
        families.append(
            gauge_family(
                "repro_server_inflight",
                "Requests admitted and not yet answered.",
                self._inflight,
            )
        )
        families.append(
            gauge_family(
                "repro_server_inflight_peak",
                "High-water mark of admitted requests.",
                self._peak_inflight,
            )
        )
        families.append(
            gauge_family(
                "repro_server_max_inflight",
                "Admission-control capacity.",
                self.max_inflight or 0,
            )
        )
        families.append(
            gauge_family(
                "repro_server_connections_active",
                "Client connections currently open.",
                len(self._connections),
            )
        )
        families.extend(self._pool.metric_families())
        return families

    def _metrics_payload(self, format: int) -> str:
        """Render the METRICS exposition body (dispatcher thread)."""
        families = self.metric_families()
        if format == wire.METRICS_PROMETHEUS:
            return render_prometheus(families)
        return render_json(families)

    # -- connections -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self._connections_count.inc()
        try:
            first = await self._read_with_idle(conn, reader.readexactly, 1)
            if first == wire.MAGIC[:1]:
                rest = await asyncio.wait_for(
                    reader.readexactly(3), self.write_timeout
                )
                if first + rest != wire.MAGIC:
                    raise wire.WireError(
                        f"bad stream preamble {(first + rest)!r}"
                    )
                conn.mode = "binary"
                logger.info("connect client=%s mode=binary", conn.peer)
                await self._serve_binary(conn)
            elif first == b"{":
                conn.mode = "json"
                logger.info("connect client=%s mode=json", conn.peer)
                await self._serve_json(conn, first)
            else:
                raise wire.WireError(
                    f"unknown protocol preamble {first!r} "
                    "(expected RPW1 magic or a JSON line)"
                )
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            _IdleTimeout,
            wire.WireError,
        ) as error:
            if isinstance(error, _IdleTimeout):
                self._idle_closed_total.inc()
                logger.info("idle-close client=%s", conn.peer)
            elif isinstance(error, wire.WireError):
                logger.warning(
                    "protocol-error client=%s error=%s", conn.peer, error
                )
        finally:
            conn.eof = True
            # Flush what this connection is still owed before closing
            # (unless the server is draining, which flushes for us).
            if conn.pending and not self._draining:
                try:
                    await asyncio.wait_for(
                        conn.flushed.wait(), self.write_timeout
                    )
                except asyncio.TimeoutError:  # pragma: no cover - backstop
                    pass
            self._close_connection(conn)
            logger.info(
                "disconnect client=%s served=%d errors=%d",
                conn.peer, conn.served, conn.errors,
            )

    async def _read_with_idle(self, conn, read, *args):
        """One read under the idle timeout (owed responses stop the clock)."""
        while True:
            if self.idle_timeout is None:
                return await read(*args)
            try:
                return await asyncio.wait_for(read(*args), self.idle_timeout)
            except asyncio.TimeoutError:
                if conn.pending:
                    continue  # not idle: the client is waiting on us
                raise _IdleTimeout() from None

    # -- binary protocol ---------------------------------------------------

    async def _serve_binary(self, conn: _Connection) -> None:
        await self._write(conn, wire.encode_framed(
            wire.encode_hello(os.getpid(), self.banner)
        ))
        while not conn.closing:
            try:
                header = await self._read_with_idle(
                    conn, conn.reader.readexactly, 4
                )
            except asyncio.IncompleteReadError as error:
                if error.partial:
                    raise wire.WireError(
                        f"connection closed inside a frame header "
                        f"({len(error.partial)}/4 byte(s))"
                    ) from None
                return  # clean EOF between frames
            frame = await conn.reader.readexactly(wire.framed_length(header))
            message = wire.decode(frame)
            if message.type == wire.MSG_QUERY:
                await self._handle_query(conn, message)
            elif message.type == wire.MSG_PING:
                await self._write(conn, wire.encode_framed(
                    wire.encode_pong(message.seq, os.getpid())
                ))
            elif message.type == wire.MSG_STATS:
                await self._handle_stats(conn)
            elif message.type == wire.MSG_METRICS:
                await self._handle_metrics(conn, message.flags)
            elif message.type == wire.MSG_DRAIN:
                # Client-initiated graceful close: flush what it is owed,
                # acknowledge with its served count, stop reading.
                await asyncio.wait_for(
                    conn.flushed.wait(), self.write_timeout
                )
                await self._send_drained(conn)
                return
            else:
                raise wire.WireError(
                    f"client sent frame type {message.type} where a "
                    "request was expected"
                )

    async def _handle_query(self, conn: _Connection, message) -> None:
        server_trace = Trace("server") if message.wants_trace else None
        with maybe_span(server_trace, "admit"):
            admitted = self._admit()
        if not admitted:
            logger.warning(
                "overloaded client=%s seq=%d inflight=%d capacity=%d",
                conn.peer, message.seq, self._inflight, self.max_inflight,
            )
            await self._write(conn, wire.encode_framed(
                wire.encode_overloaded(
                    message.seq, self._inflight, self.max_inflight
                )
            ))
            return
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        job = _QueryJob(
            message.query, message.key, message.ids_only,
            message.wants_trace, future, loop,
        )
        conn.pending += 1
        conn.flushed.clear()
        self._jobs.put(job)
        asyncio.ensure_future(
            self._finish_query(
                conn, message.seq, message.key, future, server_trace
            )
        )

    async def _finish_query(self, conn, seq, key, future, server_trace=None) -> None:
        started = time.perf_counter()
        try:
            result = await future
        finally:
            self._release()
        status = "ok"
        try:
            if server_trace is not None:
                server_trace.add_span(
                    "server-dispatch",
                    offset=started - server_trace.started,
                    duration=time.perf_counter() - started,
                )
                if (
                    not isinstance(result, Exception)
                    and result.trace is not None
                ):
                    server_trace.add_child(result.trace)
            if isinstance(result, Exception):
                status = f"error:{type(result).__name__}"
                frame = wire.encode_error(
                    seq, type(result).__name__, str(result)
                )
                self._errors_total.inc()
                conn.errors += 1
            elif result.is_node_set:
                frame = wire.encode_result_ids(seq, result.ids)
            else:
                frame = wire.encode_result_value(seq, result.value)
            if status == "ok":
                self._served_total.inc()
                conn.served += 1
            write_begun = time.perf_counter()
            if server_trace is not None and status == "ok":
                # The trace frame precedes its result frame, mirroring
                # the worker→pool hop.
                await self._write(conn, wire.encode_framed(
                    wire.encode_trace(seq, server_trace.to_dict())
                ))
            await self._write(conn, wire.encode_framed(frame))
            if server_trace is not None:
                # The write span lands only in the server-side ring
                # buffer: it cannot precede the writes it measures.
                server_trace.add_span(
                    "write",
                    offset=write_begun - server_trace.started,
                    duration=time.perf_counter() - write_begun,
                )
                self._traces.append(server_trace.to_dict())
        finally:
            self._request_seconds.observe(time.perf_counter() - started)
            conn.pending -= 1
            if conn.pending == 0:
                conn.flushed.set()
            logger.info(
                "query client=%s seq=%d key=%s status=%s wall_ms=%.2f",
                conn.peer, seq, key, status,
                (time.perf_counter() - started) * 1e3,
            )

    async def _handle_stats(self, conn: _Connection) -> None:
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._jobs.put(_StatsJob(future, loop))
        payload = await future
        if isinstance(payload, Exception):
            frame = wire.encode_error(
                0, type(payload).__name__, str(payload)
            )
        else:
            frame = wire.encode_stats_reply(payload)
        await self._write(conn, wire.encode_framed(frame))

    async def _handle_metrics(self, conn: _Connection, format: int) -> None:
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._jobs.put(_MetricsJob(format, future, loop))
        body = await future
        if isinstance(body, Exception):
            frame = wire.encode_error(0, type(body).__name__, str(body))
        else:
            frame = wire.encode_metrics_reply(format, body)
        await self._write(conn, wire.encode_framed(frame))

    async def _send_drained(self, conn: _Connection) -> None:
        try:
            if conn.mode == "binary":
                await self._write(conn, wire.encode_framed(
                    wire.encode_drained(conn.served, os.getpid())
                ))
            elif conn.mode == "json":
                await self._write(
                    conn,
                    (json.dumps({"drained": conn.served}) + "\n").encode(),
                )
        except (ConnectionError, OSError):  # pragma: no cover - gone client
            pass

    # -- JSON shim ---------------------------------------------------------

    async def _serve_json(self, conn: _Connection, first: bytes) -> None:
        line = first + await conn.reader.readline()
        while not conn.closing:
            text = line.decode("utf-8", errors="replace").strip()
            if text:
                await self._handle_json_line(conn, text)
            line = await self._read_with_idle(conn, conn.reader.readline)
            if not line:
                return  # EOF

    async def _handle_json_line(self, conn: _Connection, text: str) -> None:
        try:
            request = json.loads(text)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            await self._write_json(conn, {
                "error": {"type": "WireError", "message": str(error)}
            })
            return
        op = request.get("op")
        if op == "ping":
            await self._write_json(conn, {"pong": True, "pid": os.getpid()})
            return
        if op == "stats":
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            self._jobs.put(_StatsJob(future, loop))
            payload = await future
            if isinstance(payload, Exception):
                payload = {"error": {
                    "type": type(payload).__name__, "message": str(payload)
                }}
            else:
                payload = {"stats": payload}
            await self._write_json(conn, payload)
            return
        if op == "metrics":
            fmt = (
                wire.METRICS_PROMETHEUS
                if request.get("format") == "prometheus"
                else wire.METRICS_JSON
            )
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            self._jobs.put(_MetricsJob(fmt, future, loop))
            body = await future
            if isinstance(body, Exception):
                payload = {"error": {
                    "type": type(body).__name__, "message": str(body)
                }}
            elif fmt == wire.METRICS_PROMETHEUS:
                # Prometheus text rides inside the JSON line as a string.
                payload = {"metrics": body}
            else:
                payload = {"metrics": json.loads(body)}
            await self._write_json(conn, payload)
            return
        if op == "trace":
            # The ring buffer of completed traced requests, newest last.
            await self._write_json(conn, {"traces": list(self._traces)})
            return
        seq = request.get("seq")
        key = request.get("key")
        query = request.get("query")
        if not isinstance(key, str) or not isinstance(query, str):
            await self._write_json(conn, {"seq": seq, "error": {
                "type": "WireError",
                "message": 'request needs string "key" and "query" fields',
            }})
            return
        wants_trace = bool(request.get("trace", False))
        server_trace = Trace("server") if wants_trace else None
        with maybe_span(server_trace, "admit"):
            admitted = self._admit()
        if not admitted:
            logger.warning(
                "overloaded client=%s seq=%s inflight=%d capacity=%d",
                conn.peer, seq, self._inflight, self.max_inflight,
            )
            await self._write_json(conn, {
                "seq": seq, "overloaded": True,
                "inflight": self._inflight, "capacity": self.max_inflight,
            })
            return
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        job = _QueryJob(
            query, key, bool(request.get("ids", False)), wants_trace,
            future, loop,
        )
        conn.pending += 1
        conn.flushed.clear()
        self._jobs.put(job)
        asyncio.ensure_future(
            self._finish_json_query(conn, seq, key, future, server_trace)
        )

    async def _finish_json_query(
        self, conn, seq, key, future, server_trace=None
    ) -> None:
        started = time.perf_counter()
        try:
            result = await future
        finally:
            self._release()
        status = "ok"
        try:
            if server_trace is not None:
                server_trace.add_span(
                    "server-dispatch",
                    offset=started - server_trace.started,
                    duration=time.perf_counter() - started,
                )
                if (
                    not isinstance(result, Exception)
                    and result.trace is not None
                ):
                    server_trace.add_child(result.trace)
            if isinstance(result, Exception):
                status = f"error:{type(result).__name__}"
                payload = {"seq": seq, "key": key, "error": {
                    "type": type(result).__name__, "message": str(result)
                }}
                self._errors_total.inc()
                conn.errors += 1
            elif result.is_node_set:
                payload = {"seq": seq, "key": key, "ids": result.ids}
            else:
                payload = {"seq": seq, "key": key, "value": result.value}
            if status == "ok":
                self._served_total.inc()
                conn.served += 1
            if server_trace is not None and status == "ok":
                payload["trace"] = server_trace.to_dict()
            write_begun = time.perf_counter()
            await self._write_json(conn, payload)
            if server_trace is not None:
                server_trace.add_span(
                    "write",
                    offset=write_begun - server_trace.started,
                    duration=time.perf_counter() - write_begun,
                )
                self._traces.append(server_trace.to_dict())
        finally:
            self._request_seconds.observe(time.perf_counter() - started)
            conn.pending -= 1
            if conn.pending == 0:
                conn.flushed.set()
            logger.info(
                "query client=%s seq=%s key=%s status=%s wall_ms=%.2f",
                conn.peer, seq, key, status,
                (time.perf_counter() - started) * 1e3,
            )

    # -- writes ------------------------------------------------------------

    async def _write_json(self, conn: _Connection, payload: dict) -> None:
        await self._write(conn, (json.dumps(payload) + "\n").encode("utf-8"))

    async def _write(self, conn: _Connection, data: bytes) -> None:
        """One bounded write; a client that cannot drain it is aborted."""
        if conn.closing:
            return
        async with conn.lock:
            try:
                conn.writer.write(data)
                await asyncio.wait_for(
                    conn.writer.drain(), self.write_timeout
                )
            except asyncio.TimeoutError:
                self._aborted_total.inc()
                logger.warning(
                    "slow-client-abort client=%s timeout=%.3gs",
                    conn.peer, self.write_timeout,
                )
                self._close_connection(conn, abort=True)
            except (ConnectionError, OSError):
                self._close_connection(conn, abort=True)

    def _close_connection(self, conn: _Connection, abort: bool = False) -> None:
        if conn.closing:
            return
        conn.closing = True
        self._connections.discard(conn)
        transport = conn.writer.transport
        try:
            if abort and transport is not None:
                transport.abort()
            else:
                conn.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover - racing close
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "closed" if self._closed
            else "draining" if self._draining
            else "listening" if self._address else "new"
        )
        where = f" on {self._address[0]}:{self._address[1]}" if self._address else ""
        return f"<XPathServer {state}{where}>"


class _IdleTimeout(Exception):
    """Internal: a connection crossed ``idle_timeout`` with nothing owed."""
