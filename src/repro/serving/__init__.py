"""Cross-process sharded serving over the id-native wire format.

The one subsystem that escapes the GIL: a :class:`ShardedPool` spreads a
corpus store's documents across N worker processes (one shard per
worker, assigned by snapshot content hash), ships queries and results as
compact id-native frames (:mod:`repro.serving.wire` — query text + store
key in, sorted int32 id arrays / scalars out, never pickled nodes), and
warms workers by hydrating mmap'd snapshots from the shared
:class:`~repro.store.CorpusStore`, so process startup pays no XML parse
and no index build.

Entry points, highest level first:

* :meth:`repro.engine.XPathEngine.serve` /
  :meth:`~repro.engine.XPathEngine.evaluate_sharded` — the engine façade
  treats the pool as one more dispatch backend and merges its stats;
* :func:`repro.planner.evaluate_many_sharded` — the one-shot batch form;
* :class:`ShardedPool` — the backend itself, for callers that manage
  worker lifecycle explicitly;
* :class:`XPathServer` / :class:`ServingClient` — the network tier: an
  asyncio TCP front door multiplexing many client connections onto one
  supervised pool (same frames, plus admission control and a JSON shim),
  and the matching blocking / asyncio clients;
* ``python -m repro serve [--listen HOST:PORT]`` / ``client`` /
  ``query --workers N`` on the command line.

See ``docs/serving.md`` for the architecture, the wire-format spec, the
worker lifecycle and the operations guide.
"""

from repro.serving.pool import (
    DEFAULT_MAX_RESTARTS,
    DEFAULT_MAX_RETRIES,
    DEFAULT_WINDOW,
    ServingError,
    ServingStats,
    ServingTimeout,
    ShardedPool,
    WorkerCrashed,
    WorkerStats,
)
from repro.serving.client import (
    AsyncServingClient,
    ConnectionDrained,
    Overloaded,
    RemoteResult,
    ServingClient,
)
from repro.serving.server import XPathServer
from repro.serving.wire import PROTOCOL_VERSION, WireError

__all__ = [
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_WINDOW",
    "AsyncServingClient",
    "ConnectionDrained",
    "Overloaded",
    "PROTOCOL_VERSION",
    "RemoteResult",
    "ServingClient",
    "ServingError",
    "ServingStats",
    "ServingTimeout",
    "ShardedPool",
    "WireError",
    "WorkerCrashed",
    "WorkerStats",
    "XPathServer",
]
