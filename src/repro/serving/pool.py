"""`ShardedPool`: documents sharded across worker processes.

The in-process serving layer (:meth:`repro.engine.XPathEngine
.evaluate_concurrent`) is bounded by the GIL: its threads share one core
of pure-Python evaluation, and everything it gains comes from coalescing
identical requests.  A :class:`ShardedPool` escapes that bound by putting
*evaluation itself* on N worker processes:

* **sharding** — every registered document belongs to exactly one worker,
  assigned deterministically from its snapshot content hash
  (:func:`repro.store.shard_of`), so each document's index, evaluator
  pools and plan cache warm up in one process and stay there;
* **transport** — the shared :class:`~repro.store.CorpusStore` is the
  only document channel: the parent sends keys, workers hydrate mmap'd
  snapshots (fork/spawn startup pays no XML parse and no index build, and
  mapped snapshot pages are physically shared between processes);
* **wire format** — requests and results cross as the compact id-native
  frames of :mod:`repro.serving.wire` (query text + key in, sorted int32
  id arrays / scalars out), never as pickled nodes;
* **dispatch** — a batch is split by shard, streamed to each worker under
  a bounded in-flight window (both pipe directions keep flowing, so a
  batch larger than the OS pipe buffer cannot deadlock), and reassembled
  in input order by correlation id;
* **supervision** — a worker that dies (crash, kill, torn frame) is
  restarted with capped exponential backoff and re-warmed from the
  mmap'd store, and the requests that were in flight on it are replayed
  onto the restarted process.  Queries are read-only and idempotent, so
  replay cannot change an answer; it is bounded by a per-request retry
  budget and an optional wall-clock ``request_timeout``, after which the
  caller gets a typed :class:`WorkerCrashed` / :class:`ServingTimeout`
  carrying the worker index and attempt count.

The pool is a *backend*, not a second API: results come back as the same
:class:`~repro.engine.QueryResult` the in-process engine returns (ids
wired through; node objects materialise lazily from a parent-side
hydration of the same snapshot), errors re-raise as their original
exception types, and :meth:`ShardedPool.stats` merges the per-worker
engine counters with the pool's supervision counters (restarts, retried
and timed-out requests, per-worker liveness).  See ``docs/serving.md``
for the architecture, the wire format spec, the supervision state
machine and the operations guide.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Union

import repro
import repro.errors as _errors
from repro.errors import ReproError
from repro.engine.result import QueryResult
from repro.serving import wire
from repro.serving.worker import worker_main
from repro.store import CorpusStore, StoreKeyError, shard_of
from repro.store import corpus as _corpus
from repro.telemetry.exposition import counter_family, gauge_family
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.render import render_kv_block
from repro.telemetry.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.xpath.ast import XPathExpr

#: Frames in flight per worker before the dispatcher waits for replies.
#: Big enough to hide IPC latency, small enough that request and reply
#: frames together stay far below any OS pipe buffer.
DEFAULT_WINDOW = 32

#: Restarts a worker may consume over the pool's lifetime before it is
#: marked permanently failed and its shard's requests fail fast.
DEFAULT_MAX_RESTARTS = 3

#: Times one request may be *replayed* onto a restarted worker before it
#: fails with :class:`WorkerCrashed` (total sends = 1 + this).
DEFAULT_MAX_RETRIES = 2

#: Capped exponential restart backoff: the n-th restart of a worker
#: sleeps ``min(RESTART_BACKOFF * 2**n, RESTART_BACKOFF_CAP)`` seconds.
RESTART_BACKOFF = 0.05
RESTART_BACKOFF_CAP = 1.0

#: How long the dispatcher waits for a reply before re-checking that the
#: owing workers are still alive (long evaluations just loop).
_LIVENESS_POLL = 1.0

#: LRU bound on the pool's parent-side document hydrations (the lazy
#: rehydrations backing ``QueryResult.nodes``); mirrors the engine
#: registry's default bound so a long-lived pool cannot pin the corpus.
PARENT_DOCUMENT_BOUND = 64

_env_lock = threading.Lock()


class ServingError(ReproError):
    """The serving tier itself failed (dead worker, protocol violation)."""


class WorkerCrashed(ServingError):
    """A worker death could not be absorbed transparently.

    Raised when a request exhausts its replay budget on a crashing
    worker, or when a worker exhausts its restart budget and is marked
    permanently failed.  ``worker`` is the worker index, ``attempts`` the
    number of times the request was sent (0 when the error describes the
    worker rather than one request).
    """

    def __init__(self, message: str, worker: int = -1, attempts: int = 0) -> None:
        super().__init__(message)
        self.worker = worker
        self.attempts = attempts


class ServingTimeout(ServingError):
    """A request exceeded the pool's wall-clock ``request_timeout``.

    The owning worker is presumed hung and is killed and restarted; the
    timed-out request is *not* replayed (its budget is wall-clock, not
    attempts).  ``worker`` is the worker index, ``attempts`` how many
    times the request had been sent when the clock ran out.
    """

    def __init__(self, message: str, worker: int = -1, attempts: int = 0) -> None:
        super().__init__(message)
        self.worker = worker
        self.attempts = attempts


class _WorkerDied(ServingError):
    """Internal: a pipe operation found the worker dead (supervised)."""

    def __init__(self, worker: "_Worker", what: str = "died mid-conversation") -> None:
        super().__init__(
            f"worker {worker.index} (pid {worker.process.pid}) {what}"
        )
        self.worker = worker


def _default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, shares pages), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _start_with_child_importable(process) -> None:
    """Start ``process`` with the repro checkout importable in the child.

    A ``fork`` child inherits the parent's ``sys.path``; a ``spawn`` child
    starts a fresh interpreter that must find :mod:`repro` on its own —
    which fails when the package runs from a source checkout (the root
    ``conftest.py`` injects ``src/`` only into the parent).  Exporting the
    package root through ``PYTHONPATH`` for the duration of the start
    covers both cases.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    with _env_lock:
        saved = os.environ.get("PYTHONPATH")
        parts = [package_root] + ([saved] if saved else [])
        os.environ["PYTHONPATH"] = os.pathsep.join(parts)
        try:
            process.start()
        finally:
            if saved is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = saved


def rebuild_error(type_name: str, message: str) -> Exception:
    """Rebuild a worker-side exception from its wire descriptor.

    Exception types are looked up in the library's own namespaces only
    (:mod:`repro.errors`, the store errors) — a worker cannot make the
    parent instantiate arbitrary types.  Unknown or unreconstructable
    types degrade to :class:`ServingError` with the original text.
    """
    for namespace in (_errors, _corpus, wire):
        candidate = getattr(namespace, type_name, None)
        if (
            isinstance(candidate, type)
            and issubclass(candidate, ReproError)
        ):
            try:
                return candidate(message)
            except TypeError:
                break  # constructor wants more than a message
    return ServingError(f"{type_name}: {message}")


@dataclass(frozen=True)
class WorkerStats:
    """One worker's counters, as reported over the wire.

    ``alive``/``restarts`` are pool-side supervision facts: a permanently
    failed worker reports ``alive=False`` with zeroed engine counters, and
    a restarted worker's engine counters restart from zero with it.
    """

    worker: int
    pid: int
    served: int
    queries: int
    dispatch: Mapping[str, int]
    plan_hits: int
    plan_misses: int
    documents: int
    store_hits: int
    store_loads: int
    alive: bool = True
    restarts: int = 0


@dataclass(frozen=True)
class ServingStats:
    """Merged counters across every worker of a :class:`ShardedPool`."""

    workers: int
    served: int
    dispatch: Mapping[str, int]
    plan_hits: int
    plan_misses: int
    documents: int
    store_loads: int
    per_worker: tuple[WorkerStats, ...]
    restarts: int = 0
    retries: int = 0
    timeouts: int = 0
    rejected: int = 0

    def describe(self) -> str:
        """Render the merged snapshot as the CLI's ``--stats`` block."""
        dispatch = (
            " ".join(f"{name}={count}" for name, count in sorted(self.dispatch.items()))
            or "(none)"
        )
        shares = " ".join(
            f"w{stats.worker}={stats.served if stats.alive else 'down'}"
            for stats in self.per_worker
        )
        plan_total = self.plan_hits + self.plan_misses
        hit_rate = self.plan_hits / plan_total if plan_total else 0.0
        return render_kv_block(
            [
                (
                    "serving",
                    f"{self.workers} worker process(es), "
                    f"{self.served} request(s) served ({shares or 'none'})",
                ),
                ("worker dispatch", dispatch),
                (
                    "worker plan caches",
                    f"{self.plan_hits} hit(s), {self.plan_misses} miss(es), "
                    f"hit rate {hit_rate:.0%}",
                ),
                (
                    "worker documents",
                    f"{self.documents} hydrated, "
                    f"{self.store_loads} snapshot load(s)",
                ),
                (
                    "worker supervision",
                    f"{self.restarts} restart(s), "
                    f"{self.retries} retried request(s), {self.timeouts} "
                    f"timeout(s), {self.rejected} rejected batch(es)",
                ),
            ]
        )


class _LazyDocument:
    """A document that hydrates from the store on first real use.

    Wired into id-native :class:`~repro.engine.result.QueryResult`
    payloads as their document: callers that only read ``.ids`` (the
    wire format's contract) never trigger a parent-side snapshot load —
    the load happens on the first ``.nodes``/``.value`` access, when the
    result object reaches for ``document.index``.
    """

    __slots__ = ("_load", "_resolved")

    def __init__(self, load) -> None:
        self._load = load
        self._resolved = None

    def _resolve(self):
        if self._resolved is None:
            self._resolved = self._load()
        return self._resolved

    @property
    def index(self):
        return self._resolve().index

    @property
    def hydrated(self) -> bool:
        """True once the underlying snapshot load has actually happened."""
        return self._resolved is not None

    def __getattr__(self, name):
        return getattr(self._resolve(), name)


class _Worker:
    """One child process plus the parent's end of its pipe.

    ``restarts`` counts the supervisor restarts this slot has consumed;
    ``failed`` marks a slot whose budget is exhausted — its shard's
    requests fail fast with :class:`WorkerCrashed` instead of hanging.
    """

    __slots__ = ("index", "process", "conn", "restarts", "failed")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.restarts = 0
        self.failed = False


class ShardedPool:
    """N worker processes serving a corpus store's documents by shard.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.CorpusStore` (or its directory
        path).  Workers open it read-only; it is the only channel
        documents travel over.
    workers:
        Number of worker processes (= number of shards).
    mmap:
        Hydrate snapshots via mmap in the workers (and for the parent's
        lazy node materialisation).  On by default: mapped pages of one
        snapshot are shared between every process that maps it.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default ``fork``
        where available, else ``spawn``.  See ``docs/serving.md`` for the
        trade-off.
    warm:
        Hydrate every manifest key into its shard's worker before
        :meth:`__init__` returns, so the first query hits a warm index.
        Restarted workers are always re-warmed before rejoining rotation.
    window:
        Frames in flight per worker before the dispatcher waits.
    max_restarts:
        Supervisor restarts each worker slot may consume over the pool's
        lifetime; beyond it the slot is permanently failed and its
        requests raise :class:`WorkerCrashed`.
    max_retries:
        Times one in-flight request may be replayed onto a restarted
        worker before it fails with :class:`WorkerCrashed`.
    request_timeout:
        Optional wall-clock bound (seconds) per request, measured from
        its first send.  An overdue request's worker is presumed hung:
        it is killed and restarted, the overdue request raises
        :class:`ServingTimeout`, and the worker's other in-flight
        requests are replayed under their retry budgets.
    restart_backoff:
        Base of the capped exponential restart backoff (seconds).

    The pool is **not** thread-safe: it is a single-dispatcher backend
    (put it behind an :class:`~repro.engine.XPathEngine` or your own lock
    to share it).  It is a context manager; :meth:`drain` stops admission
    and shuts down gracefully, :meth:`close` is drain-with-deadline and
    is idempotent.
    """

    def __init__(
        self,
        store: Union[CorpusStore, str, os.PathLike],
        workers: int = 4,
        mmap: bool = True,
        start_method: Optional[str] = None,
        warm: bool = True,
        window: int = DEFAULT_WINDOW,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        request_timeout: Optional[float] = None,
        restart_backoff: float = RESTART_BACKOFF,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_restarts < 0:
            raise ValueError("max_restarts must be at least 0")
        if max_retries < 0:
            raise ValueError("max_retries must be at least 0")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if not isinstance(store, CorpusStore):
            store = CorpusStore(store)
        self.store = store
        self.workers = workers
        self.mmap = mmap
        self.start_method = start_method or _default_start_method()
        self.window = window
        self.max_restarts = max_restarts
        self.max_retries = max_retries
        self.request_timeout = request_timeout
        self.restart_backoff = restart_backoff
        self._closed = False
        # drain()/close() may race from different threads (a front door's
        # signal handler vs. its request loop): this lock makes the
        # open→closed transition atomic, so exactly one caller runs
        # _shutdown and the others observe an already-closed pool.
        self._lifecycle_lock = threading.Lock()
        # Supervision counters live in a telemetry registry so the ops
        # endpoints can expose them without a parallel bookkeeping path;
        # stats() renders the same counters into ServingStats.
        self.metrics = MetricsRegistry()
        self._restarts_total = self.metrics.counter(
            "repro_pool_restarts_total",
            "Worker processes restarted by the supervisor.",
        )
        self._retries_total = self.metrics.counter(
            "repro_pool_retries_total",
            "Requests replayed onto a restarted worker.",
        )
        self._timeouts_total = self.metrics.counter(
            "repro_pool_timeouts_total",
            "Requests that exceeded the wall-clock request timeout.",
        )
        self._rejected_total = self.metrics.counter(
            "repro_pool_rejected_total",
            "Batch slots rejected for unknown store keys.",
        )
        self._requests_total = self.metrics.counter(
            "repro_pool_requests_total",
            "Requests dispatched through evaluate_batch.",
        )
        self._request_seconds = self.metrics.histogram(
            "repro_pool_request_seconds",
            "Per-request round-trip time through the worker pipe.",
        )
        # content hash -> _LazyDocument, LRU-bounded (see _document)
        self._documents: "OrderedDict[str, _LazyDocument]" = OrderedDict()
        self._context = multiprocessing.get_context(self.start_method)
        self._pool: list[_Worker] = []
        try:
            for index in range(workers):
                process, conn = self._spawn(index)
                self._pool.append(_Worker(index, process, conn))
            if warm:
                self.warm_up()
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    def warm_up(self) -> list[int]:
        """Hydrate every manifest key into its shard's worker; returns counts.

        Safe to call again after new :meth:`~repro.store.CorpusStore.put`
        calls — warm keys are registry hits inside the worker, cold ones
        cost exactly one snapshot load each.  A worker that dies while
        warming is restarted under the supervisor's budget; past the
        budget a :class:`WorkerCrashed` naming the worker is raised
        (never a raw ``EOFError``/``OSError`` from the pipe).
        """
        self._require_open()
        layout = self.store.shard_layout(self.workers)
        counts = [0] * self.workers
        pending = []
        for worker in self._pool:
            if worker.failed:
                continue
            keys = [entry.key for entry in layout[worker.index]]
            try:
                self._send(worker, wire.encode_warm(keys))
            except _WorkerDied:
                counts[worker.index] = self._revive(worker)
                continue
            pending.append(worker)
        for worker in pending:
            try:
                counts[worker.index] = self._expect(
                    worker, wire.MSG_READY
                ).hydrated
            except _WorkerDied:
                counts[worker.index] = self._revive(worker)
        return counts

    def ping(self, timeout: float = 5.0) -> tuple[bool, ...]:
        """Probe every worker with PING; returns per-worker liveness.

        A worker is healthy when it answers PONG (with its own pid)
        within the shared ``timeout``.  The probe never restarts anyone —
        it is the read-only health check a front door polls; the next
        evaluation supervises.  Like every pool method, call it between
        batches (the pool is a single-dispatcher backend).
        """
        # Snapshot the roster under the lifecycle lock: the open check and
        # the worker list must be one atomic observation, or a drain/close
        # racing this probe can close pipes between the check and the
        # sends.  (I/O happens outside the lock — a slow PONG must not
        # block drain() for the whole probe timeout; a pipe torn down by a
        # concurrent close surfaces as a typed ServingError below.)
        with self._lifecycle_lock:
            self._require_open()
            roster = tuple(self._pool)
        deadline = time.monotonic() + timeout
        health = []
        for worker in roster:
            if worker.failed:
                health.append(False)
                continue
            try:
                self._send(worker, wire.encode_ping(worker.index))
                message = self._expect(worker, wire.MSG_PONG, deadline=deadline)
                health.append(message.pid == worker.process.pid)
            except ServingError:
                health.append(False)
        return tuple(health)

    def drain(self, timeout: float = 5.0) -> tuple[Optional[int], ...]:
        """Stop admission, flush the workers, then shut down.

        Sends ``DRAIN`` to every live worker and collects ``DRAINED``
        acknowledgements under one pool-wide ``timeout``; because every
        request is answered before the pool returns it (the dispatcher
        fully drains each batch), the acknowledgement doubles as a
        zero-lost-requests receipt.  Returns the per-worker served count
        from each acknowledgement (``None`` for workers that were already
        dead or missed the deadline — those are terminated).  The pool is
        closed afterwards; further calls raise :class:`ServingError`.
        """
        with self._lifecycle_lock:
            self._require_open()
            self._closed = True
            return self._shutdown(timeout, graceful=True)

    def close(self, timeout: float = 5.0) -> None:
        """Drain-with-deadline: shut every worker down within ``timeout``.

        The deadline is **pool-wide**, not per worker: with N hung
        workers the call still returns in roughly ``timeout`` (plus a
        short kill grace), never ``N × timeout``.  Idempotent, including
        against a concurrent :meth:`drain`/:meth:`close` from another
        thread: exactly one caller shuts the workers down, the rest
        return (or raise, for ``drain`` on a closed pool) once it has.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            self._shutdown(timeout, graceful=False)

    def _shutdown(
        self, timeout: float, graceful: bool
    ) -> tuple[Optional[int], ...]:
        """Common drain/close mechanics under one pool-wide deadline."""
        deadline = time.monotonic() + timeout
        acks: list[Optional[int]] = [None] * len(self._pool)
        pending = []
        frame = wire.encode_drain() if graceful else wire.encode_shutdown()
        for worker in self._pool:
            if worker.failed:
                continue
            try:
                worker.conn.send_bytes(frame)
            except (OSError, ValueError):
                continue  # already dead or closed: join/terminate below
            pending.append(worker)
        if graceful:
            for worker in pending:
                try:
                    message = self._expect(
                        worker, wire.MSG_DRAINED, deadline=deadline
                    )
                    acks[worker.index] = message.served
                except ServingError:
                    pass  # dead or overdue: terminated below
        for worker in self._pool:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        for worker in self._pool:
            if worker.process.is_alive():
                worker.process.join(max(0.0, deadline - time.monotonic()))
        stragglers = [w for w in self._pool if w.process.is_alive()]
        for worker in stragglers:  # pragma: no cover - hang backstop
            worker.process.kill()
        for worker in stragglers:  # pragma: no cover - hang backstop
            worker.process.join(1.0)
        return tuple(acks)

    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or :meth:`drain`) has run."""
        return self._closed

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """The worker index serving ``key`` (deterministic, hash-based)."""
        return shard_of(self.store.stat(key).hash, self.workers)

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self,
        query: "Union[XPathExpr, str]",
        key: str,
        ids: bool = False,
        trace: bool = False,
    ) -> QueryResult:
        """Evaluate one query against the document stored under ``key``."""
        return self.evaluate_batch([(query, key)], ids=ids, trace=trace)[0]

    def evaluate_batch(
        self,
        requests: Iterable[tuple],
        ids: bool = False,
        return_errors: bool = False,
        trace: bool = False,
    ) -> list[QueryResult]:
        """Evaluate ``(query, key)`` pairs across the shards.

        Results come back in input order as
        :class:`~repro.engine.QueryResult` objects and are identical to
        evaluating each request in process.  ``ids=True`` enforces the
        ``evaluate_many_ids`` contract (node-set answers only).  The
        first failing request (by input order) re-raises its worker-side
        exception — after the whole batch has been drained, so the
        connection protocol stays clean for the next call.  Every key is
        validated against the manifest before anything is enqueued: an
        unknown key rejects the whole batch (counted in
        :class:`ServingStats` ``rejected``) without dispatching a frame.

        ``return_errors=True`` is the network front door's contract (one
        multiplexed batch carries many clients' unrelated requests):
        nothing raises — a failing request's slot carries its rebuilt
        exception object instead of a result, an unknown key fails only
        its own slot (still counted in ``rejected``), and the rest of
        the batch proceeds normally.

        ``trace=True`` asks the workers for per-stage spans: each
        result's ``trace`` is a ``pool``-tier span tree
        (``enqueue → dispatch → decode``) with the worker's
        ``worker-eval`` / engine spans attached as a child.
        ``wall_time`` is always stamped (traced or not) with the
        request's pipe round-trip time.
        """
        self._require_open()
        batch_start = perf_counter()
        items = []
        for request in requests:
            if not (isinstance(request, tuple) and len(request) == 2):
                raise TypeError(
                    f"request must be a (query, key) pair, got {request!r}"
                )
            query, key = request
            if not isinstance(query, str):
                query = query.unparse()
            items.append((query, str(key)))
        if not items:
            return []

        # Validate the whole batch against the manifest before enqueuing
        # anything: a bad key must not leave earlier requests half-staged.
        entries: list = []
        for query, key in items:
            try:
                entries.append(self.store.stat(key))
            except StoreKeyError as error:
                self._rejected_total.inc()
                if not return_errors:
                    raise
                entries.append(error)
        self._supervise()

        queues: list[deque] = [deque() for _ in self._pool]
        hashes: list[Optional[str]] = [None] * len(items)
        replies: list = [None] * len(items)
        for seq, (query, key) in enumerate(items):
            entry = entries[seq]
            if isinstance(entry, Exception):
                replies[seq] = entry
                continue
            hashes[seq] = entry.hash
            shard = shard_of(entry.hash, self.workers)
            frame = wire.encode_query(seq, key, query, ids_only=ids, trace=trace)
            queues[shard].append((frame, seq))
        sent_at: dict[int, float] = {}
        done_at: dict[int, float] = {}
        traces: dict[int, dict] = {}
        self._dispatch(queues, replies, sent_at, done_at, traces)

        results = []
        failure: Optional[tuple[int, Exception]] = None
        for seq, message in enumerate(replies):
            query, key = items[seq]
            if isinstance(message, Exception):
                if failure is None:
                    failure = (seq, message)
                results.append(message if return_errors else None)
                continue
            if message.type == wire.MSG_ERROR:
                error = rebuild_error(*message.error)
                if failure is None:
                    failure = (seq, error)
                results.append(error if return_errors else None)
                continue
            sent = sent_at.get(seq, batch_start)
            done = done_at.get(seq, sent)
            wall = done - sent
            self._requests_total.inc()
            self._request_seconds.observe(wall)
            pool_trace = None
            if trace:
                pool_trace = Trace("pool")
                pool_trace.add_span(
                    "enqueue", offset=0.0, duration=sent - batch_start
                )
                pool_trace.add_span(
                    "dispatch", offset=sent - batch_start, duration=wall
                )
            if message.type == wire.MSG_RESULT_IDS:
                result = QueryResult(
                    query=query,
                    engine="sharded",
                    document=self._document(hashes[seq]),
                    ids=message.ids,
                    wall_time=wall,
                    trace=pool_trace,
                )
            else:
                result = QueryResult(
                    query=query, engine="sharded", document=None,
                    value=message.value, wall_time=wall, trace=pool_trace,
                )
            if pool_trace is not None:
                pool_trace.add_span(
                    "decode",
                    offset=done - batch_start,
                    duration=perf_counter() - done,
                )
                worker_payload = traces.get(seq)
                if worker_payload is not None:
                    pool_trace.add_child(Trace.from_dict(worker_payload))
            results.append(result)
        if failure is not None and not return_errors:
            raise failure[1]
        return results

    # -- statistics --------------------------------------------------------

    def stats(self) -> ServingStats:
        """Merge every worker's engine counters into one snapshot.

        Dead-while-idle workers are revived first (budget permitting);
        a permanently failed worker contributes a zeroed row with
        ``alive=False``.  Engine counters are per *process*: a restarted
        worker's counters restart from zero (the pool-side ``restarts``/
        ``retries``/``timeouts`` totals persist across restarts).
        """
        self._require_open()
        self._supervise()
        per_worker = []
        for worker in self._pool:
            payload = None
            if not worker.failed:
                try:
                    payload = self._stats_roundtrip(worker)
                except _WorkerDied:
                    try:
                        self._revive(worker)
                        payload = self._stats_roundtrip(worker)
                    except (WorkerCrashed, _WorkerDied):
                        payload = None
            if payload is None:
                per_worker.append(self._dead_worker_stats(worker))
            else:
                per_worker.append(
                    WorkerStats(
                        **payload, alive=True, restarts=worker.restarts
                    )
                )
        dispatch: dict[str, int] = {}
        for stats in per_worker:
            for engine, count in stats.dispatch.items():
                dispatch[engine] = dispatch.get(engine, 0) + count
        return ServingStats(
            workers=self.workers,
            served=sum(stats.served for stats in per_worker),
            dispatch=dispatch,
            plan_hits=sum(stats.plan_hits for stats in per_worker),
            plan_misses=sum(stats.plan_misses for stats in per_worker),
            documents=sum(stats.documents for stats in per_worker),
            store_loads=sum(stats.store_loads for stats in per_worker),
            per_worker=tuple(per_worker),
            restarts=int(self._restarts_total.value()),
            retries=int(self._retries_total.value()),
            timeouts=int(self._timeouts_total.value()),
            rejected=int(self._rejected_total.value()),
        )

    def metric_families(self) -> list[dict]:
        """Pool metrics plus derived worker families, for exposition.

        Returns the family-dict exchange format of
        :mod:`repro.telemetry.exposition`: the pool registry's counters
        and latency histogram, then gauge/counter families derived from
        a fresh :meth:`stats` round-trip (per-worker served counts and
        the merged engine counters).  Like :meth:`stats`, call it
        between batches — it talks to the workers.
        """
        stats = self.stats()
        families = self.metrics.snapshot()
        families.append(
            gauge_family(
                "repro_pool_workers", "Worker process slots.", self.workers
            )
        )
        families.append(
            gauge_family(
                "repro_pool_workers_alive",
                "Worker processes currently alive.",
                sum(1 for row in stats.per_worker if row.alive),
            )
        )
        families.append(
            counter_family(
                "repro_pool_worker_served_total",
                "Requests served, by worker slot.",
                [
                    ({"worker": str(row.worker)}, row.served)
                    for row in stats.per_worker
                ],
            )
        )
        families.append(
            counter_family(
                "repro_pool_worker_dispatch_total",
                "Engine dispatch counts merged across workers.",
                [
                    ({"engine": name}, count)
                    for name, count in sorted(stats.dispatch.items())
                ],
            )
        )
        families.append(
            counter_family(
                "repro_pool_worker_plan_cache_total",
                "Merged worker plan-cache lookups, by outcome.",
                [
                    ({"outcome": "hit"}, stats.plan_hits),
                    ({"outcome": "miss"}, stats.plan_misses),
                ],
            )
        )
        families.append(
            gauge_family(
                "repro_pool_worker_documents",
                "Documents hydrated across the workers.",
                stats.documents,
            )
        )
        return families

    def _stats_roundtrip(self, worker: _Worker) -> dict:
        self._send(worker, wire.encode_stats_request())
        return self._expect(worker, wire.MSG_STATS_REPLY).payload

    def _dead_worker_stats(self, worker: _Worker) -> WorkerStats:
        return WorkerStats(
            worker=worker.index,
            pid=worker.process.pid or 0,
            served=0,
            queries=0,
            dispatch={},
            plan_hits=0,
            plan_misses=0,
            documents=0,
            store_hits=0,
            store_loads=0,
            alive=False,
            restarts=worker.restarts,
        )

    # -- internals ---------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServingError("the pool is closed")

    def _spawn(self, index: int):
        """Start one worker process; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=worker_main,
            args=(child_conn, self.store.root, self.mmap, index),
            name=f"repro-serve-{index}",
            daemon=True,
        )
        _start_with_child_importable(process)
        child_conn.close()
        return process, parent_conn

    def _supervise(self) -> None:
        """Sentinel poll: revive workers that died while the pool was idle.

        Budget-exhausted slots stay failed (their shard's requests fail
        fast in dispatch); the batch as a whole proceeds.
        """
        for worker in self._pool:
            if not worker.failed and not worker.process.is_alive():
                try:
                    self._revive(worker)
                except WorkerCrashed:
                    pass  # marked failed; dispatch attributes per request

    def _revive(self, worker: _Worker) -> int:
        """Restart a dead worker with capped exponential backoff.

        Reaps the dead process, sleeps the backoff, starts a fresh
        process on a fresh pipe and re-warms the worker's shard from the
        store before it rejoins rotation; loops (budget-limited) if the
        replacement dies while warming.  Returns the hydrated-document
        count.  Past ``max_restarts`` the slot is marked ``failed`` and
        :class:`WorkerCrashed` is raised naming the worker.
        """
        while True:
            exitcode = worker.process.exitcode
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            if worker.restarts >= self.max_restarts:
                worker.failed = True
                raise WorkerCrashed(
                    f"worker {worker.index} exited with code {exitcode} and "
                    f"exhausted its restart budget "
                    f"({worker.restarts}/{self.max_restarts} restarts used)",
                    worker=worker.index,
                )
            time.sleep(
                min(
                    self.restart_backoff * (2 ** worker.restarts),
                    RESTART_BACKOFF_CAP,
                )
            )
            worker.restarts += 1
            self._restarts_total.inc()
            worker.process, worker.conn = self._spawn(worker.index)
            layout = self.store.shard_layout(self.workers)
            keys = [entry.key for entry in layout[worker.index]]
            try:
                self._send(worker, wire.encode_warm(keys))
                return self._expect(worker, wire.MSG_READY).hydrated
            except _WorkerDied:
                continue  # the replacement died warming: back off and retry

    def _document(self, content_hash: str) -> _LazyDocument:
        """The parent-side document for lazy node materialisation.

        A :class:`_LazyDocument`: nothing loads until a caller actually
        materialises nodes (``.nodes``/``.value``), at which point the
        snapshot is hydrated from the same bytes the worker evaluated
        against (mmap'd by default, so the pages are the worker's
        pages).  Hydrations are shared per content hash and LRU-bounded
        at :data:`PARENT_DOCUMENT_BOUND` — results handed out before an
        eviction keep their own reference and stay valid.
        """
        document = self._documents.get(content_hash)
        if document is None:
            document = _LazyDocument(
                lambda: self.store.get(content_hash, mmap=self.mmap)
            )
            self._documents[content_hash] = document
            if len(self._documents) > PARENT_DOCUMENT_BOUND:
                self._documents.popitem(last=False)
        else:
            self._documents.move_to_end(content_hash)
        return document

    def _dispatch(
        self,
        queues: list[deque],
        replies: list,
        sent_at: dict[int, float],
        done_at: dict[int, float],
        traces: dict[int, dict],
    ) -> None:
        """Stream queued frames to the workers and collect every reply.

        Windowed duplex pumping with supervision: each worker has at most
        ``window`` unanswered frames, replies are read as they arrive (so
        neither pipe direction can fill up and deadlock), and a worker
        dying mid-batch is restarted and its in-flight window *replayed*
        onto the restarted process — queries are idempotent reads, so the
        replay is invisible to the caller.  Replay is bounded by
        ``max_retries`` per request and ``request_timeout`` wall-clock;
        past either bound the affected request's slot in ``replies``
        carries a typed :class:`WorkerCrashed` / :class:`ServingTimeout`
        (surfaced by input order after the batch drains), never a hang.

        ``sent_at``/``done_at`` collect per-seq ``perf_counter`` stamps
        (first send, reply arrival) for latency accounting; ``traces``
        collects TRACE frame payloads by seq — a worker sends them
        immediately before the result frame they annotate.
        """
        inflight: list[dict[int, bytes]] = [{} for _ in self._pool]
        attempts: dict[int, int] = {}
        deadlines: dict[int, float] = {}
        outstanding = sum(len(queue) for queue in queues)

        def fail(seq: int, error: Exception) -> None:
            nonlocal outstanding
            replies[seq] = error
            deadlines.pop(seq, None)
            outstanding -= 1

        def fail_worker_requests(worker: _Worker) -> None:
            """Fail everything routed at a permanently failed worker."""
            window = inflight[worker.index]
            for seq in sorted(window):
                fail(
                    seq,
                    WorkerCrashed(
                        f"worker {worker.index} crashed and exhausted its "
                        f"restart budget with this request in flight "
                        f"(sent {attempts.get(seq, 0)} time(s))",
                        worker=worker.index,
                        attempts=attempts.get(seq, 0),
                    ),
                )
            window.clear()
            queue = queues[worker.index]
            while queue:
                _, seq = queue.popleft()
                fail(
                    seq,
                    WorkerCrashed(
                        f"worker {worker.index} is permanently failed "
                        f"(restart budget exhausted); request was never "
                        "dispatched",
                        worker=worker.index,
                        attempts=attempts.get(seq, 0),
                    ),
                )

        def handle_death(worker: _Worker) -> None:
            """Restart a dead worker and replay its window, budget permitting."""
            window = sorted(inflight[worker.index].items())
            inflight[worker.index].clear()
            try:
                self._revive(worker)
            except WorkerCrashed:
                inflight[worker.index] = {seq: frame for seq, frame in window}
                fail_worker_requests(worker)
                return
            replayable = []
            for seq, frame in window:
                if attempts.get(seq, 0) > self.max_retries:
                    fail(
                        seq,
                        WorkerCrashed(
                            f"request exhausted its retry budget: worker "
                            f"{worker.index} died {attempts[seq]} time(s) "
                            f"with it in flight "
                            f"(max_retries={self.max_retries})",
                            worker=worker.index,
                            attempts=attempts[seq],
                        ),
                    )
                else:
                    replayable.append((frame, seq))
                    self._retries_total.inc()
            queues[worker.index].extendleft(reversed(replayable))

        while outstanding:
            # 0) fail fast anything routed at a permanently failed worker
            for worker in self._pool:
                if worker.failed and (
                    inflight[worker.index] or queues[worker.index]
                ):
                    fail_worker_requests(worker)
            # 1) wall-clock deadlines: an overdue request means its worker
            #    is hung — time the request out, kill and restart the worker,
            #    replay the rest of its window
            if deadlines:
                now = time.monotonic()
                for worker in self._pool:
                    window = inflight[worker.index]
                    overdue = [
                        seq for seq in window
                        if deadlines.get(seq, float("inf")) <= now
                    ]
                    if not overdue:
                        continue
                    for seq in sorted(overdue):
                        del window[seq]
                        self._timeouts_total.inc()
                        fail(
                            seq,
                            ServingTimeout(
                                f"request timed out after "
                                f"{self.request_timeout:.3g}s on worker "
                                f"{worker.index} "
                                f"(sent {attempts.get(seq, 0)} time(s))",
                                worker=worker.index,
                                attempts=attempts.get(seq, 0),
                            ),
                        )
                    worker.process.kill()
                    handle_death(worker)
            # 2) admission: top up every live worker's window
            for worker in self._pool:
                if worker.failed:
                    continue
                queue = queues[worker.index]
                while queue and len(inflight[worker.index]) < self.window:
                    frame, seq = queue[0]
                    try:
                        self._send(worker, frame)
                    except _WorkerDied:
                        handle_death(worker)
                        break
                    queue.popleft()
                    inflight[worker.index][seq] = frame
                    attempts[seq] = attempts.get(seq, 0) + 1
                    sent_at.setdefault(seq, perf_counter())
                    if (
                        self.request_timeout is not None
                        and seq not in deadlines
                    ):
                        deadlines[seq] = (
                            time.monotonic() + self.request_timeout
                        )
            if not outstanding:
                break
            owing = [
                worker for worker in self._pool if inflight[worker.index]
            ]
            if not owing:
                continue  # a revival just requeued everything: re-admit
            # 3) wait for replies (bounded by liveness poll and deadlines)
            poll = _LIVENESS_POLL
            if deadlines:
                soonest = min(deadlines.values())
                poll = max(0.0, min(poll, soonest - time.monotonic()))
            ready = connection_wait(
                [worker.conn for worker in owing], timeout=poll
            )
            if not ready:
                for worker in owing:
                    if not worker.process.is_alive():
                        handle_death(worker)
                continue
            # 4) collect replies
            ready_set = set(ready)
            for worker in owing:
                if worker.conn not in ready_set:
                    continue
                try:
                    message = self._receive(worker)
                except _WorkerDied:
                    handle_death(worker)
                    continue
                if message.type not in (
                    wire.MSG_RESULT_IDS, wire.MSG_RESULT_VALUE,
                    wire.MSG_ERROR, wire.MSG_TRACE,
                ):
                    raise ServingError(
                        f"worker {worker.index} sent frame type "
                        f"{message.type} where a result was expected"
                    )
                if message.seq not in inflight[worker.index]:
                    raise ServingError(
                        f"worker {worker.index} answered unknown request "
                        f"{message.seq}"
                    )
                if message.type == wire.MSG_TRACE:
                    # The span tree for a request still in flight: its
                    # result frame follows on the same pipe.  Absorb it
                    # without resolving the seq.
                    traces[message.seq] = message.payload
                    continue
                del inflight[worker.index][message.seq]
                deadlines.pop(message.seq, None)
                done_at[message.seq] = perf_counter()
                replies[message.seq] = message
                outstanding -= 1

    def _send(self, worker: _Worker, frame: bytes) -> None:
        try:
            worker.conn.send_bytes(frame)
        except (OSError, ValueError):
            raise _WorkerDied(worker) from None

    def _receive(self, worker: _Worker) -> wire.Message:
        try:
            return wire.decode(worker.conn.recv_bytes())
        except (EOFError, OSError):
            raise _WorkerDied(worker) from None

    def _expect(
        self, worker: _Worker, msg_type: int, deadline: Optional[float] = None
    ) -> wire.Message:
        poll = _LIVENESS_POLL
        if deadline is not None:
            poll = min(poll, max(0.0, deadline - time.monotonic()))
        while not worker.conn.poll(poll):
            if not worker.process.is_alive():
                raise _WorkerDied(
                    worker,
                    f"exited with code {worker.process.exitcode} while "
                    "a reply was expected",
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise ServingTimeout(
                    f"worker {worker.index} sent no reply before the "
                    "deadline",
                    worker=worker.index,
                )
        message = self._receive(worker)
        if message.type != msg_type:
            raise ServingError(
                f"worker {worker.index} sent frame type {message.type}, "
                f"expected {msg_type}"
            )
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<ShardedPool {self.workers} worker(s) {self.start_method} "
            f"{state} store={self.store.root!r}>"
        )
