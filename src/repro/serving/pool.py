"""`ShardedPool`: documents sharded across worker processes.

The in-process serving layer (:meth:`repro.engine.XPathEngine
.evaluate_concurrent`) is bounded by the GIL: its threads share one core
of pure-Python evaluation, and everything it gains comes from coalescing
identical requests.  A :class:`ShardedPool` escapes that bound by putting
*evaluation itself* on N worker processes:

* **sharding** — every registered document belongs to exactly one worker,
  assigned deterministically from its snapshot content hash
  (:func:`repro.store.shard_of`), so each document's index, evaluator
  pools and plan cache warm up in one process and stay there;
* **transport** — the shared :class:`~repro.store.CorpusStore` is the
  only document channel: the parent sends keys, workers hydrate mmap'd
  snapshots (fork/spawn startup pays no XML parse and no index build, and
  mapped snapshot pages are physically shared between processes);
* **wire format** — requests and results cross as the compact id-native
  frames of :mod:`repro.serving.wire` (query text + key in, sorted int32
  id arrays / scalars out), never as pickled nodes;
* **dispatch** — a batch is split by shard, streamed to each worker under
  a bounded in-flight window (both pipe directions keep flowing, so a
  batch larger than the OS pipe buffer cannot deadlock), and reassembled
  in input order by correlation id.

The pool is a *backend*, not a second API: results come back as the same
:class:`~repro.engine.QueryResult` the in-process engine returns (ids
wired through; node objects materialise lazily from a parent-side
hydration of the same snapshot), errors re-raise as their original
exception types, and :meth:`ShardedPool.stats` merges the per-worker
engine counters.  See ``docs/serving.md`` for the architecture, the wire
format spec and the operations guide.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Union

import repro
import repro.errors as _errors
from repro.errors import ReproError
from repro.engine.result import QueryResult
from repro.serving import wire
from repro.serving.worker import worker_main
from repro.store import CorpusStore, shard_of
from repro.store import corpus as _corpus

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.xpath.ast import XPathExpr

#: Frames in flight per worker before the dispatcher waits for replies.
#: Big enough to hide IPC latency, small enough that request and reply
#: frames together stay far below any OS pipe buffer.
DEFAULT_WINDOW = 32

#: How long the dispatcher waits for a reply before re-checking that the
#: owing workers are still alive (long evaluations just loop).
_LIVENESS_POLL = 1.0

#: LRU bound on the pool's parent-side document hydrations (the lazy
#: rehydrations backing ``QueryResult.nodes``); mirrors the engine
#: registry's default bound so a long-lived pool cannot pin the corpus.
PARENT_DOCUMENT_BOUND = 64

_env_lock = threading.Lock()


class ServingError(ReproError):
    """The serving tier itself failed (dead worker, protocol violation)."""


def _default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, shares pages), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _start_with_child_importable(process) -> None:
    """Start ``process`` with the repro checkout importable in the child.

    A ``fork`` child inherits the parent's ``sys.path``; a ``spawn`` child
    starts a fresh interpreter that must find :mod:`repro` on its own —
    which fails when the package runs from a source checkout (the root
    ``conftest.py`` injects ``src/`` only into the parent).  Exporting the
    package root through ``PYTHONPATH`` for the duration of the start
    covers both cases.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    with _env_lock:
        saved = os.environ.get("PYTHONPATH")
        parts = [package_root] + ([saved] if saved else [])
        os.environ["PYTHONPATH"] = os.pathsep.join(parts)
        try:
            process.start()
        finally:
            if saved is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = saved


def _rebuild_error(type_name: str, message: str) -> Exception:
    """Rebuild a worker-side exception from its wire descriptor.

    Exception types are looked up in the library's own namespaces only
    (:mod:`repro.errors`, the store errors) — a worker cannot make the
    parent instantiate arbitrary types.  Unknown or unreconstructable
    types degrade to :class:`ServingError` with the original text.
    """
    for namespace in (_errors, _corpus, wire):
        candidate = getattr(namespace, type_name, None)
        if (
            isinstance(candidate, type)
            and issubclass(candidate, ReproError)
        ):
            try:
                return candidate(message)
            except TypeError:
                break  # constructor wants more than a message
    return ServingError(f"{type_name}: {message}")


@dataclass(frozen=True)
class WorkerStats:
    """One worker's counters, as reported over the wire."""

    worker: int
    pid: int
    served: int
    queries: int
    dispatch: Mapping[str, int]
    plan_hits: int
    plan_misses: int
    documents: int
    store_hits: int
    store_loads: int


@dataclass(frozen=True)
class ServingStats:
    """Merged counters across every worker of a :class:`ShardedPool`."""

    workers: int
    served: int
    dispatch: Mapping[str, int]
    plan_hits: int
    plan_misses: int
    documents: int
    store_loads: int
    per_worker: tuple[WorkerStats, ...]

    def describe(self) -> str:
        """Render the merged snapshot as the CLI's ``--stats`` block."""
        dispatch = (
            " ".join(f"{name}={count}" for name, count in sorted(self.dispatch.items()))
            or "(none)"
        )
        shares = " ".join(
            f"w{stats.worker}={stats.served}" for stats in self.per_worker
        )
        plan_total = self.plan_hits + self.plan_misses
        hit_rate = self.plan_hits / plan_total if plan_total else 0.0
        return "\n".join(
            [
                f"serving             : {self.workers} worker process(es), "
                f"{self.served} request(s) served ({shares or 'none'})",
                f"worker dispatch     : {dispatch}",
                f"worker plan caches  : {self.plan_hits} hit(s), "
                f"{self.plan_misses} miss(es), hit rate {hit_rate:.0%}",
                f"worker documents    : {self.documents} hydrated, "
                f"{self.store_loads} snapshot load(s)",
            ]
        )


class _LazyDocument:
    """A document that hydrates from the store on first real use.

    Wired into id-native :class:`~repro.engine.result.QueryResult`
    payloads as their document: callers that only read ``.ids`` (the
    wire format's contract) never trigger a parent-side snapshot load —
    the load happens on the first ``.nodes``/``.value`` access, when the
    result object reaches for ``document.index``.
    """

    __slots__ = ("_load", "_resolved")

    def __init__(self, load) -> None:
        self._load = load
        self._resolved = None

    def _resolve(self):
        if self._resolved is None:
            self._resolved = self._load()
        return self._resolved

    @property
    def index(self):
        return self._resolve().index

    @property
    def hydrated(self) -> bool:
        """True once the underlying snapshot load has actually happened."""
        return self._resolved is not None

    def __getattr__(self, name):
        return getattr(self._resolve(), name)


class _Worker:
    """One child process plus the parent's end of its pipe."""

    __slots__ = ("index", "process", "conn")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn


class ShardedPool:
    """N worker processes serving a corpus store's documents by shard.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.CorpusStore` (or its directory
        path).  Workers open it read-only; it is the only channel
        documents travel over.
    workers:
        Number of worker processes (= number of shards).
    mmap:
        Hydrate snapshots via mmap in the workers (and for the parent's
        lazy node materialisation).  On by default: mapped pages of one
        snapshot are shared between every process that maps it.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default ``fork``
        where available, else ``spawn``.  See ``docs/serving.md`` for the
        trade-off.
    warm:
        Hydrate every manifest key into its shard's worker before
        :meth:`__init__` returns, so the first query hits a warm index.
    window:
        Frames in flight per worker before the dispatcher waits.

    The pool is **not** thread-safe: it is a single-dispatcher backend
    (put it behind an :class:`~repro.engine.XPathEngine` or your own lock
    to share it).  It is a context manager; :meth:`close` shuts workers
    down gracefully and is idempotent.
    """

    def __init__(
        self,
        store: Union[CorpusStore, str, os.PathLike],
        workers: int = 4,
        mmap: bool = True,
        start_method: Optional[str] = None,
        warm: bool = True,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if window < 1:
            raise ValueError("window must be at least 1")
        if not isinstance(store, CorpusStore):
            store = CorpusStore(store)
        self.store = store
        self.workers = workers
        self.mmap = mmap
        self.start_method = start_method or _default_start_method()
        self.window = window
        self._closed = False
        # content hash -> _LazyDocument, LRU-bounded (see _document)
        self._documents: "OrderedDict[str, _LazyDocument]" = OrderedDict()
        context = multiprocessing.get_context(self.start_method)
        self._pool: list[_Worker] = []
        try:
            for index in range(workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=worker_main,
                    args=(child_conn, store.root, mmap, index),
                    name=f"repro-serve-{index}",
                    daemon=True,
                )
                _start_with_child_importable(process)
                child_conn.close()
                self._pool.append(_Worker(index, process, parent_conn))
            if warm:
                self.warm_up()
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    def warm_up(self) -> list[int]:
        """Hydrate every manifest key into its shard's worker; returns counts.

        Safe to call again after new :meth:`~repro.store.CorpusStore.put`
        calls — warm keys are registry hits inside the worker, cold ones
        cost exactly one snapshot load each.
        """
        self._require_open()
        layout = self.store.shard_layout(self.workers)
        hydrated = []
        for worker in self._pool:
            keys = [entry.key for entry in layout[worker.index]]
            self._send(worker, wire.encode_warm(keys))
        for worker in self._pool:
            message = self._expect(worker, wire.MSG_READY)
            hydrated.append(message.hydrated)
        return hydrated

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down gracefully (terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._pool:
            try:
                worker.conn.send_bytes(wire.encode_shutdown())
            except (OSError, ValueError):
                pass  # already dead or closed: join/terminate below
            worker.conn.close()
        for worker in self._pool:
            if worker.process.is_alive():
                worker.process.join(timeout)
            if worker.process.is_alive():  # pragma: no cover - hang backstop
                worker.process.terminate()
                worker.process.join(timeout)

    def __enter__(self) -> "ShardedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """The worker index serving ``key`` (deterministic, hash-based)."""
        return shard_of(self.store.stat(key).hash, self.workers)

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, query: "Union[XPathExpr, str]", key: str, ids: bool = False
    ) -> QueryResult:
        """Evaluate one query against the document stored under ``key``."""
        return self.evaluate_batch([(query, key)], ids=ids)[0]

    def evaluate_batch(
        self, requests: Iterable[tuple], ids: bool = False
    ) -> list[QueryResult]:
        """Evaluate ``(query, key)`` pairs across the shards.

        Results come back in input order as
        :class:`~repro.engine.QueryResult` objects and are identical to
        evaluating each request in process.  ``ids=True`` enforces the
        ``evaluate_many_ids`` contract (node-set answers only).  The
        first failing request re-raises its worker-side exception — after
        the whole batch has been drained, so the connection protocol
        stays clean for the next call.
        """
        self._require_open()
        items = []
        for request in requests:
            if not (isinstance(request, tuple) and len(request) == 2):
                raise TypeError(
                    f"request must be a (query, key) pair, got {request!r}"
                )
            query, key = request
            if not isinstance(query, str):
                query = query.unparse()
            items.append((query, str(key)))
        if not items:
            return []

        queues: list[deque] = [deque() for _ in self._pool]
        hashes: list[Optional[str]] = [None] * len(items)
        replies: list[Optional[wire.Message]] = [None] * len(items)
        for seq, (query, key) in enumerate(items):
            # Routing needs the manifest anyway, so an unknown key fails
            # fast here (stat raises StoreKeyError) rather than per shard.
            entry = self.store.stat(key)
            hashes[seq] = entry.hash
            shard = shard_of(entry.hash, self.workers)
            queues[shard].append(wire.encode_query(seq, key, query, ids_only=ids))
        self._dispatch(queues, replies)

        results = []
        failure: Optional[tuple[int, Exception]] = None
        for seq, message in enumerate(replies):
            query, key = items[seq]
            if message.type == wire.MSG_ERROR:
                if failure is None:
                    failure = (seq, _rebuild_error(*message.error))
                results.append(None)
            elif message.type == wire.MSG_RESULT_IDS:
                results.append(
                    QueryResult(
                        query=query,
                        engine="sharded",
                        document=self._document(hashes[seq]),
                        ids=message.ids,
                    )
                )
            else:
                results.append(
                    QueryResult(
                        query=query, engine="sharded", document=None,
                        value=message.value,
                    )
                )
        if failure is not None:
            raise failure[1]
        return results

    # -- statistics --------------------------------------------------------

    def stats(self) -> ServingStats:
        """Merge every worker's engine counters into one snapshot."""
        self._require_open()
        per_worker = []
        for worker in self._pool:
            self._send(worker, wire.encode_stats_request())
        for worker in self._pool:
            payload = self._expect(worker, wire.MSG_STATS_REPLY).payload
            per_worker.append(WorkerStats(**payload))
        dispatch: dict[str, int] = {}
        for stats in per_worker:
            for engine, count in stats.dispatch.items():
                dispatch[engine] = dispatch.get(engine, 0) + count
        return ServingStats(
            workers=self.workers,
            served=sum(stats.served for stats in per_worker),
            dispatch=dispatch,
            plan_hits=sum(stats.plan_hits for stats in per_worker),
            plan_misses=sum(stats.plan_misses for stats in per_worker),
            documents=sum(stats.documents for stats in per_worker),
            store_loads=sum(stats.store_loads for stats in per_worker),
            per_worker=tuple(per_worker),
        )

    # -- internals ---------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServingError("the pool is closed")

    def _document(self, content_hash: str) -> _LazyDocument:
        """The parent-side document for lazy node materialisation.

        A :class:`_LazyDocument`: nothing loads until a caller actually
        materialises nodes (``.nodes``/``.value``), at which point the
        snapshot is hydrated from the same bytes the worker evaluated
        against (mmap'd by default, so the pages are the worker's
        pages).  Hydrations are shared per content hash and LRU-bounded
        at :data:`PARENT_DOCUMENT_BOUND` — results handed out before an
        eviction keep their own reference and stay valid.
        """
        document = self._documents.get(content_hash)
        if document is None:
            document = _LazyDocument(
                lambda: self.store.get(content_hash, mmap=self.mmap)
            )
            self._documents[content_hash] = document
            if len(self._documents) > PARENT_DOCUMENT_BOUND:
                self._documents.popitem(last=False)
        else:
            self._documents.move_to_end(content_hash)
        return document

    def _dispatch(self, queues: list[deque], replies: list) -> None:
        """Stream queued frames to the workers and collect every reply.

        Windowed duplex pumping: each worker has at most ``window``
        unanswered frames, replies are read as they arrive (so neither
        pipe direction can fill up and deadlock), and a worker dying
        mid-batch raises :class:`ServingError` instead of hanging.
        """
        inflight = [0] * len(self._pool)
        outstanding = sum(len(queue) for queue in queues)
        while outstanding:
            for worker in self._pool:
                queue = queues[worker.index]
                while queue and inflight[worker.index] < self.window:
                    self._send(worker, queue.popleft())
                    inflight[worker.index] += 1
            owing = [
                worker for worker in self._pool if inflight[worker.index] > 0
            ]
            ready = connection_wait(
                [worker.conn for worker in owing], timeout=_LIVENESS_POLL
            )
            if not ready:
                self._check_alive(owing)
                continue
            ready_set = set(ready)
            for worker in owing:
                if worker.conn not in ready_set:
                    continue
                message = self._receive(worker)
                if message.type not in (
                    wire.MSG_RESULT_IDS, wire.MSG_RESULT_VALUE, wire.MSG_ERROR
                ):
                    raise ServingError(
                        f"worker {worker.index} sent frame type "
                        f"{message.type} where a result was expected"
                    )
                if not 0 <= message.seq < len(replies):
                    raise ServingError(
                        f"worker {worker.index} answered unknown request "
                        f"{message.seq}"
                    )
                replies[message.seq] = message
                inflight[worker.index] -= 1
                outstanding -= 1

    def _send(self, worker: _Worker, frame: bytes) -> None:
        try:
            worker.conn.send_bytes(frame)
        except (OSError, ValueError):
            raise ServingError(
                f"worker {worker.index} (pid {worker.process.pid}) died "
                "mid-conversation"
            ) from None

    def _receive(self, worker: _Worker) -> wire.Message:
        try:
            return wire.decode(worker.conn.recv_bytes())
        except (EOFError, OSError):
            raise ServingError(
                f"worker {worker.index} (pid {worker.process.pid}) died "
                "mid-conversation"
            ) from None

    def _expect(self, worker: _Worker, msg_type: int) -> wire.Message:
        while not worker.conn.poll(_LIVENESS_POLL):
            self._check_alive([worker])
        message = self._receive(worker)
        if message.type != msg_type:
            raise ServingError(
                f"worker {worker.index} sent frame type {message.type}, "
                f"expected {msg_type}"
            )
        return message

    def _check_alive(self, workers: Iterable[_Worker]) -> None:
        for worker in workers:
            if not worker.process.is_alive():
                raise ServingError(
                    f"worker {worker.index} (pid {worker.process.pid}) "
                    f"exited with code {worker.process.exitcode} while "
                    "requests were in flight"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<ShardedPool {self.workers} worker(s) {self.start_method} "
            f"{state} store={self.store.root!r}>"
        )
