"""Clients for the network serving tier (binary ``RPW1`` over TCP).

Two clients for :class:`~repro.serving.server.XPathServer`'s binary
protocol, one per concurrency model:

* :class:`ServingClient` — blocking sockets, for scripts, tests and the
  CLI.  Single-threaded use only.
* :class:`AsyncServingClient` — asyncio streams, for callers that
  multiplex many connections in one loop (the E19 benchmark drives the
  server with these).

Both speak the same conversation: connect, send the 4-byte ``RPW1``
preamble, read the server's ``HELLO`` (protocol-version checked), then
pipeline length-prefixed frames.  Batches self-window (at most
``window`` unanswered requests on the wire) and reassemble replies by
correlation id, so one slow query does not stall the pipe behind it.
Worker-side failures come back as the same exception types the
in-process engine raises (rebuilt via :func:`repro.serving.pool
.rebuild_error`); an admission rejection raises the typed
:class:`Overloaded` carrying the server's in-flight count and capacity
— callers distinguish "back off and retry" from "your query is wrong"
by exception type alone.

>>> # doctest requires a running server; see docs/serving.md
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from repro.serving import wire
from repro.serving.pool import ServingError, rebuild_error
from repro.telemetry.trace import Trace

#: Self-imposed pipelining bound: unanswered requests one client keeps
#: on the wire before reading replies.
DEFAULT_CLIENT_WINDOW = 64


class Overloaded(ServingError):
    """The server rejected a request at admission (no capacity).

    The request was never queued server-side; retry after a backoff, or
    shed load.  ``inflight`` and ``capacity`` are the server's admission
    counter and bound at rejection time.
    """

    def __init__(self, message: str, inflight: int = 0, capacity: int = 0) -> None:
        super().__init__(message)
        self.inflight = inflight
        self.capacity = capacity


class ConnectionDrained(ServingError):
    """The server drained the connection before answering this request."""


@dataclass(frozen=True)
class RemoteResult:
    """One answer from the network tier: sorted ids or a scalar.

    The network client is deliberately id-native end-to-end — there is
    no document on this side of the wire to materialise nodes from, so
    the result is exactly what the frames carry.  ``trace`` carries the
    full cross-tier span tree (``client`` at the root, the server's
    TRACE frame as its child) when the request asked for one.
    """

    query: str
    key: str
    ids: Optional[list[int]] = None
    value: object = None
    trace: Optional[Trace] = None

    @property
    def is_node_set(self) -> bool:
        """True if the answer is an id array (rather than a scalar)."""
        return self.ids is not None


def _hello_or_raise(message: "wire.Message") -> "wire.Message":
    if message.type != wire.MSG_HELLO:
        raise ServingError(
            f"server opened with frame type {message.type}, expected HELLO"
        )
    if message.version != wire.PROTOCOL_VERSION:
        raise ServingError(
            f"server speaks protocol version {message.version}, "
            f"this client speaks {wire.PROTOCOL_VERSION}"
        )
    return message


def _result_from(message: "wire.Message", query: str, key: str):
    """Map one reply frame to a RemoteResult or an exception object."""
    if message.type == wire.MSG_RESULT_IDS:
        return RemoteResult(query=query, key=key, ids=message.ids)
    if message.type == wire.MSG_RESULT_VALUE:
        return RemoteResult(query=query, key=key, value=message.value)
    if message.type == wire.MSG_ERROR:
        return rebuild_error(*message.error)
    if message.type == wire.MSG_OVERLOADED:
        return Overloaded(
            f"server overloaded: {message.inflight}/{message.capacity} "
            "request(s) in flight",
            inflight=message.inflight,
            capacity=message.capacity,
        )
    raise ServingError(
        f"server sent frame type {message.type} where a reply was expected"
    )


class _BatchState:
    """Shared reply-correlation bookkeeping for both client flavours."""

    def __init__(
        self, requests: Sequence[tuple], ids: bool, trace: bool = False
    ) -> None:
        self.items: list[tuple[str, str]] = []
        for request in requests:
            if not (isinstance(request, tuple) and len(request) == 2):
                raise TypeError(
                    f"request must be a (query, key) pair, got {request!r}"
                )
            query, key = request
            if not isinstance(query, str):
                query = query.unparse()
            self.items.append((query, str(key)))
        self.ids = ids
        self.trace = trace
        self.results: list = [None] * len(self.items)
        self.pending: set[int] = set()
        self.next_seq = 0
        self.drained = False
        self.sent_at: dict[int, float] = {}
        self.traces: dict[int, dict] = {}

    def frames(self):
        """Yield the remaining request frames (stream-framed), in order."""
        while self.next_seq < len(self.items):
            seq = self.next_seq
            query, key = self.items[seq]
            self.next_seq += 1
            self.pending.add(seq)
            self.sent_at[seq] = time.perf_counter()
            yield wire.encode_framed(
                wire.encode_query(
                    seq, key, query, ids_only=self.ids, trace=self.trace
                )
            )

    def absorb(self, message: "wire.Message") -> None:
        """Record one reply frame against its pending request."""
        if message.type == wire.MSG_DRAINED:
            # The server is going away; everything unanswered fails typed.
            self.drained = True
            for seq in sorted(self.pending | set(range(self.next_seq, len(self.items)))):
                self.results[seq] = ConnectionDrained(
                    "server drained the connection before answering"
                )
            self.pending.clear()
            self.next_seq = len(self.items)
            return
        if message.seq not in self.pending:
            raise ServingError(
                f"server answered unknown request {message.seq}"
            )
        if message.type == wire.MSG_TRACE:
            # The span tree for a pending request: its result frame
            # follows.  Stash it; do not resolve the seq.
            self.traces[message.seq] = message.payload
            return
        self.pending.discard(message.seq)
        query, key = self.items[message.seq]
        result = _result_from(message, query, key)
        if self.trace and isinstance(result, RemoteResult):
            result = replace(
                result, trace=self._client_trace(message.seq)
            )
        self.results[message.seq] = result

    def _client_trace(self, seq: int) -> Trace:
        """The ``client`` tier trace: one round-trip span + server child."""
        trace = Trace("client")
        sent = self.sent_at.get(seq)
        duration = (
            time.perf_counter() - sent if sent is not None else 0.0
        )
        trace.add_span("request", offset=0.0, duration=duration)
        payload = self.traces.pop(seq, None)
        if payload is not None:
            trace.add_child(Trace.from_dict(payload))
        return trace

    def finish(self, return_errors: bool):
        if not return_errors:
            for result in self.results:
                if isinstance(result, Exception):
                    raise result
        return self.results


class ServingClient:
    """A blocking-socket client for one :class:`XPathServer` connection.

    Parameters
    ----------
    host, port:
        The server's listen address (e.g. from ``server.address``).
    timeout:
        Socket timeout applied to every send/receive (seconds).
    window:
        Pipelining bound for :meth:`evaluate_batch`.

    Not thread-safe: one connection is one ordered conversation.  Use it
    as a context manager, or call :meth:`drain` / :meth:`close`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        window: int = DEFAULT_CLIENT_WINDOW,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._closed = False
        try:
            self._sock.sendall(wire.MAGIC)
            hello = _hello_or_raise(self._read_message())
        except BaseException:
            self.close()
            raise
        self.server_pid = hello.pid
        self.banner = hello.banner

    # -- wire plumbing -----------------------------------------------------

    def _recv_exactly(self, size: int) -> bytes:
        chunks = []
        remaining = size
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServingError(
                    f"server closed the connection mid-frame "
                    f"({size - remaining}/{size} byte(s) read)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_message(self) -> "wire.Message":
        length = wire.framed_length(self._recv_exactly(4))
        return wire.decode(self._recv_exactly(length))

    def _send_frame(self, frame: bytes) -> None:
        self._sock.sendall(wire.encode_framed(frame))

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self,
        query: Union[str, object],
        key: str,
        ids: bool = False,
        trace: bool = False,
    ) -> RemoteResult:
        """Evaluate one query over the wire; raises typed errors."""
        return self.evaluate_batch([(query, key)], ids=ids, trace=trace)[0]

    def evaluate_batch(
        self,
        requests: Sequence[tuple],
        ids: bool = False,
        return_errors: bool = False,
        trace: bool = False,
    ) -> list:
        """Pipeline ``(query, key)`` pairs; results come back in order.

        At most ``window`` requests ride the wire unanswered.  With
        ``return_errors=False`` (default) the first failing request (by
        input order) raises after the batch drains; with ``True`` its
        slot carries the exception object instead.  ``trace=True`` asks
        the server for per-stage spans: each result's ``trace`` is the
        cross-tier span tree (client → server → pool → worker → engine).
        """
        self._require_open()
        state = _BatchState(requests, ids, trace)
        frames = state.frames()
        exhausted = False
        while not exhausted or state.pending:
            while not exhausted and len(state.pending) < self.window:
                frame = next(frames, None)
                if frame is None:
                    exhausted = True
                    break
                self._sock.sendall(frame)
            if state.pending:
                state.absorb(self._read_message())
            if state.drained:
                break
        return state.finish(return_errors)

    # -- operations --------------------------------------------------------

    def ping(self, seq: int = 0) -> tuple[int, float]:
        """Liveness probe; returns ``(server_pid, round_trip_seconds)``."""
        self._require_open()
        started = time.perf_counter()
        self._send_frame(wire.encode_ping(seq))
        message = self._read_message()
        elapsed = time.perf_counter() - started
        if message.type != wire.MSG_PONG or message.seq != seq:
            raise ServingError(
                f"server answered PING with frame type {message.type}"
            )
        return message.pid, elapsed

    def server_stats(self) -> dict:
        """The server's STATS payload (server counters + pool counters)."""
        self._require_open()
        self._send_frame(wire.encode_stats_request())
        message = self._read_message()
        if message.type != wire.MSG_STATS_REPLY:
            if message.type == wire.MSG_ERROR:
                raise rebuild_error(*message.error)
            raise ServingError(
                f"server answered STATS with frame type {message.type}"
            )
        return message.payload

    def server_metrics(self, format: str = "json") -> str:
        """The server's METRICS exposition body as text.

        ``format`` is ``"json"`` (the families document of
        :func:`repro.telemetry.render_json`) or ``"prometheus"`` (the
        classic text exposition format, scrape-ready).
        """
        self._require_open()
        fmt = (
            wire.METRICS_PROMETHEUS
            if format == "prometheus"
            else wire.METRICS_JSON
        )
        self._send_frame(wire.encode_metrics_request(fmt))
        message = self._read_message()
        if message.type != wire.MSG_METRICS_REPLY:
            if message.type == wire.MSG_ERROR:
                raise rebuild_error(*message.error)
            raise ServingError(
                f"server answered METRICS with frame type {message.type}"
            )
        return message.body

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> int:
        """Client-initiated graceful close; returns requests served here.

        Sends ``DRAIN``, reads until the server's ``DRAINED`` receipt
        (the count of requests this connection was served), closes.
        """
        self._require_open()
        self._send_frame(wire.encode_drain())
        while True:
            message = self._read_message()
            if message.type == wire.MSG_DRAINED:
                self.close()
                return message.served

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ServingError("the client is closed")

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<ServingClient {state} server_pid={getattr(self, 'server_pid', '?')}>"


class AsyncServingClient:
    """An asyncio client for one :class:`XPathServer` connection.

    Build with :meth:`connect`; the API mirrors :class:`ServingClient`
    with every method a coroutine.  One instance belongs to one task at
    a time (one connection is one ordered conversation) — run many
    instances for concurrency, that is the point of the async flavour.
    """

    def __init__(self, reader, writer, window: int = DEFAULT_CLIENT_WINDOW) -> None:
        self._reader = reader
        self._writer = writer
        self.window = window
        self._closed = False
        self.server_pid = 0
        self.banner = ""

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        window: int = DEFAULT_CLIENT_WINDOW,
    ) -> "AsyncServingClient":
        """Open a connection, shake hands, return a ready client."""
        if window < 1:
            raise ValueError("window must be at least 1")
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, window=window)
        try:
            writer.write(wire.MAGIC)
            await writer.drain()
            hello = _hello_or_raise(await client._read_message())
        except BaseException:
            await client.aclose()
            raise
        client.server_pid = hello.pid
        client.banner = hello.banner
        return client

    async def _read_message(self) -> "wire.Message":
        try:
            header = await self._reader.readexactly(4)
            frame = await self._reader.readexactly(wire.framed_length(header))
        except asyncio.IncompleteReadError as error:
            raise ServingError(
                f"server closed the connection mid-frame "
                f"({len(error.partial)} byte(s) read)"
            ) from None
        return wire.decode(frame)

    async def evaluate(
        self,
        query: Union[str, object],
        key: str,
        ids: bool = False,
        trace: bool = False,
    ) -> RemoteResult:
        """Evaluate one query over the wire; raises typed errors."""
        results = await self.evaluate_batch([(query, key)], ids=ids, trace=trace)
        return results[0]

    async def evaluate_batch(
        self,
        requests: Sequence[tuple],
        ids: bool = False,
        return_errors: bool = False,
        trace: bool = False,
    ) -> list:
        """Pipeline ``(query, key)`` pairs; results come back in order."""
        self._require_open()
        state = _BatchState(requests, ids, trace)
        frames = state.frames()
        exhausted = False
        while not exhausted or state.pending:
            while not exhausted and len(state.pending) < self.window:
                frame = next(frames, None)
                if frame is None:
                    exhausted = True
                    break
                self._writer.write(frame)
            await self._writer.drain()
            if state.pending:
                state.absorb(await self._read_message())
            if state.drained:
                break
        return state.finish(return_errors)

    async def ping(self, seq: int = 0) -> tuple[int, float]:
        """Liveness probe; returns ``(server_pid, round_trip_seconds)``."""
        self._require_open()
        started = time.perf_counter()
        self._writer.write(wire.encode_framed(wire.encode_ping(seq)))
        await self._writer.drain()
        message = await self._read_message()
        elapsed = time.perf_counter() - started
        if message.type != wire.MSG_PONG or message.seq != seq:
            raise ServingError(
                f"server answered PING with frame type {message.type}"
            )
        return message.pid, elapsed

    async def server_stats(self) -> dict:
        """The server's STATS payload (server counters + pool counters)."""
        self._require_open()
        self._writer.write(wire.encode_framed(wire.encode_stats_request()))
        await self._writer.drain()
        message = await self._read_message()
        if message.type != wire.MSG_STATS_REPLY:
            if message.type == wire.MSG_ERROR:
                raise rebuild_error(*message.error)
            raise ServingError(
                f"server answered STATS with frame type {message.type}"
            )
        return message.payload

    async def server_metrics(self, format: str = "json") -> str:
        """The server's METRICS exposition body as text.

        ``format`` is ``"json"`` (the families document of
        :func:`repro.telemetry.render_json`) or ``"prometheus"`` (the
        classic text exposition format, scrape-ready).
        """
        self._require_open()
        fmt = (
            wire.METRICS_PROMETHEUS
            if format == "prometheus"
            else wire.METRICS_JSON
        )
        self._writer.write(wire.encode_framed(wire.encode_metrics_request(fmt)))
        await self._writer.drain()
        message = await self._read_message()
        if message.type != wire.MSG_METRICS_REPLY:
            if message.type == wire.MSG_ERROR:
                raise rebuild_error(*message.error)
            raise ServingError(
                f"server answered METRICS with frame type {message.type}"
            )
        return message.body

    async def drain(self) -> int:
        """Client-initiated graceful close; returns requests served here."""
        self._require_open()
        self._writer.write(wire.encode_framed(wire.encode_drain()))
        await self._writer.drain()
        while True:
            message = await self._read_message()
            if message.type == wire.MSG_DRAINED:
                served = message.served
                await self.aclose()
                return served

    async def aclose(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - racing close
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ServingError("the client is closed")

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


def json_roundtrip(
    host: str,
    port: int,
    lines: Sequence[Union[str, dict]],
    timeout: float = 30.0,
) -> list[dict]:
    """Drive the server's JSON shim: send lines, return parsed replies.

    A convenience for tests and scripts exercising the curl-style
    protocol — each element of ``lines`` (a dict, or a pre-encoded JSON
    string) becomes one request line; the reply lines come back parsed,
    in arrival order (one per request).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        payload = b"".join(
            (line if isinstance(line, str) else json.dumps(line)).encode() + b"\n"
            for line in lines
        )
        sock.sendall(payload)
        replies = []
        buffer = b""
        while len(replies) < len(lines):
            while b"\n" not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    raise ServingError(
                        "server closed the JSON connection before answering"
                    )
                buffer += chunk
            line, _, buffer = buffer.partition(b"\n")
            replies.append(json.loads(line.decode("utf-8")))
        return replies
