"""The id-native wire format of the cross-process serving tier.

Queries and results cross the worker boundary as self-describing binary
frames — never as pickled node objects or documents.  The only things on
the wire are query text, store keys, sorted int32 id arrays, scalars and
typed error descriptors, which is what keeps a sharded request round-trip
cheap: a node-set answer of *n* ids costs ``17 + 4n`` bytes regardless of
how big the nodes it denotes are.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"RPW1"  (repro wire, version 1)
    4       1     message type (u8, one of the MSG_* constants)
    5       ...   type-specific body

Message bodies::

    QUERY        u32 seq · u8 flags · u16 key-len · u32 query-len ·
                 key utf-8 · query utf-8
    RESULT_IDS   u32 seq · u32 count · count × int32 (sorted ids)
    RESULT_VALUE u32 seq · u8 kind · payload
                 kind "F": float64 · "B": u8 bool · "S": u32 len + utf-8
    ERROR        u32 seq · u16 type-len · u32 msg-len · type · message
    WARM         u32 count · count × (u16 key-len · key utf-8)
    READY        u32 hydrated · u32 pid
    STATS        (empty body)
    STATS_REPLY  u32 json-len · utf-8 JSON object
    SHUTDOWN     (empty body)
    PING         u32 seq (echoed back, so probes are correlatable)
    PONG         u32 seq · u32 pid
    DRAIN        (empty body)
    DRAINED      u32 served · u32 pid
    HELLO        u32 protocol version · u32 pid · u16 banner-len · banner
    OVERLOADED   u32 seq · u32 inflight · u32 capacity
    TRACE        u32 seq · u32 json-len · utf-8 JSON trace tree
    METRICS      u8 format (0 JSON, 1 Prometheus text)
    METRICS_REPLY u8 format · u32 len · utf-8 exposition body

``HELLO`` and ``OVERLOADED`` belong to the network tier
(:mod:`repro.serving.server`): a server greets every accepted binary
connection with HELLO (so clients can verify the protocol version before
sending work), and answers a request that found the admission window full
with OVERLOADED instead of queueing it unboundedly.

``TRACE`` is the telemetry side-channel: a QUERY flagged with
:data:`FLAG_TRACE` asks the answering side to time its stages
(:class:`repro.telemetry.Trace`) and send them back as one TRACE frame
carrying the *same seq*, emitted immediately **before** the result frame
for that seq — the seq is the span context that attributes worker-side
timings back to the originating request across both hops
(worker→pool and server→client).  ``METRICS``/``METRICS_REPLY`` are the
ops endpoint: a client asks the server for its merged metrics registry
in JSON (format 0) or Prometheus text (format 1).

Byte-stream framing
-------------------

Between pool and worker, frames travel over a ``multiprocessing``
:class:`~multiprocessing.connection.Connection`, which length-prefixes
each ``send_bytes`` on its own.  Over a raw byte stream (TCP), framing is
explicit: every frame is preceded by a little-endian u32 length
(:func:`encode_framed`), and lengths above :data:`MAX_FRAME` are a
protocol error (:func:`framed_length`) — a malicious or corrupt peer
cannot make the other side allocate gigabytes on faith.

``seq`` is the requester's correlation id: replies carry the seq of the
query they answer, so a worker may answer a batch in any order (in
practice it answers in arrival order).  ``flags`` bit 0 (``FLAG_IDS``)
requires an id-array answer: a scalar-producing query then fails with the
same :class:`~repro.errors.XPathEvaluationError` the in-process
``evaluate_many_ids`` raises.

Examples
--------
>>> frame = encode_query(7, "catalogue", "//book[child::title]")
>>> message = decode(frame)
>>> (message.type == MSG_QUERY, message.seq, message.key, message.query)
(True, 7, 'catalogue', '//book[child::title]')
>>> decode(encode_result_ids(7, [2, 3, 11])).ids
[2, 3, 11]
>>> decode(encode_result_value(9, 2.0)).value
2.0
>>> decode(encode_error(4, "XPathSyntaxError", "unexpected token")).error
('XPathSyntaxError', 'unexpected token')
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import ReproError

MAGIC = b"RPW1"

MSG_QUERY = 1
MSG_RESULT_IDS = 2
MSG_RESULT_VALUE = 3
MSG_ERROR = 4
MSG_WARM = 5
MSG_READY = 6
MSG_STATS = 7
MSG_STATS_REPLY = 8
MSG_SHUTDOWN = 9
MSG_PING = 10
MSG_PONG = 11
MSG_DRAIN = 12
MSG_DRAINED = 13
MSG_HELLO = 14
MSG_OVERLOADED = 15
MSG_TRACE = 16
MSG_METRICS = 17
MSG_METRICS_REPLY = 18

#: Protocol version a server advertises in its HELLO frame.
PROTOCOL_VERSION = 1

#: METRICS format codes (the u8 body of a METRICS request).
METRICS_JSON = 0
METRICS_PROMETHEUS = 1

#: Upper bound on one length-prefixed frame crossing a byte stream
#: (16 MiB ≈ a 4-million-id answer); larger lengths are a protocol error.
MAX_FRAME = 1 << 24

#: QUERY flag bit 0: the caller insists on an id-array answer (the
#: semantics of ``evaluate_many_ids``); scalar results become errors.
FLAG_IDS = 0x01

#: QUERY flag bit 1: the caller wants per-stage timings — the answering
#: side precedes its result frame with a TRACE frame of the same seq.
FLAG_TRACE = 0x02

_HEADER = struct.Struct("<4sB")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")

_VALUE_FLOAT = ord("F")
_VALUE_BOOL = ord("B")
_VALUE_STRING = ord("S")


class WireError(ReproError):
    """A frame is malformed: bad magic, unknown type, or truncated body."""


@dataclass(frozen=True)
class Message:
    """One decoded frame.  Only the fields of its type are populated."""

    type: int
    seq: int = 0
    flags: int = 0
    key: str = ""
    query: str = ""
    ids: Optional[list[int]] = None
    value: object = None
    error: Optional[tuple[str, str]] = None
    keys: tuple[str, ...] = ()
    payload: Optional[dict[str, object]] = None
    hydrated: int = 0
    pid: int = 0
    served: int = 0
    version: int = 0
    inflight: int = 0
    capacity: int = 0
    banner: str = ""
    body: str = ""

    @property
    def ids_only(self) -> bool:
        """True if a QUERY frame set :data:`FLAG_IDS`."""
        return bool(self.flags & FLAG_IDS)

    @property
    def wants_trace(self) -> bool:
        """True if a QUERY frame set :data:`FLAG_TRACE`."""
        return bool(self.flags & FLAG_TRACE)


# -- encoding ----------------------------------------------------------------


def _frame(msg_type: int, *chunks: bytes) -> bytes:
    return b"".join((_HEADER.pack(MAGIC, msg_type), *chunks))


def encode_query(
    seq: int, key: str, query: str, ids_only: bool = False, trace: bool = False
) -> bytes:
    """Encode one query request frame."""
    key_bytes = key.encode("utf-8")
    query_bytes = query.encode("utf-8")
    flags = (FLAG_IDS if ids_only else 0) | (FLAG_TRACE if trace else 0)
    return _frame(
        MSG_QUERY,
        _U32.pack(seq),
        _U8.pack(flags),
        _U16.pack(len(key_bytes)),
        _U32.pack(len(query_bytes)),
        key_bytes,
        query_bytes,
    )


def encode_result_ids(seq: int, ids: Sequence[int]) -> bytes:
    """Encode a node-set answer as a sorted int32 id array."""
    packed = array("i", ids)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        packed = array("i", packed)
        packed.byteswap()
    return _frame(
        MSG_RESULT_IDS, _U32.pack(seq), _U32.pack(len(packed)), packed.tobytes()
    )


def encode_result_value(seq: int, value: object) -> bytes:
    """Encode a scalar answer (float, bool, or string)."""
    if isinstance(value, bool):  # before float: bool is an int subclass
        return _frame(
            MSG_RESULT_VALUE, _U32.pack(seq), _U8.pack(_VALUE_BOOL),
            _U8.pack(1 if value else 0),
        )
    if isinstance(value, (int, float)):
        return _frame(
            MSG_RESULT_VALUE, _U32.pack(seq), _U8.pack(_VALUE_FLOAT),
            _F64.pack(float(value)),
        )
    if isinstance(value, str):
        data = value.encode("utf-8")
        return _frame(
            MSG_RESULT_VALUE, _U32.pack(seq), _U8.pack(_VALUE_STRING),
            _U32.pack(len(data)), data,
        )
    raise WireError(f"cannot encode a {type(value).__name__} result")


def encode_error(seq: int, type_name: str, message: str) -> bytes:
    """Encode a typed error descriptor for re-raising on the other side."""
    type_bytes = type_name.encode("utf-8")
    message_bytes = message.encode("utf-8")
    return _frame(
        MSG_ERROR,
        _U32.pack(seq),
        _U16.pack(len(type_bytes)),
        _U32.pack(len(message_bytes)),
        type_bytes,
        message_bytes,
    )


def encode_warm(keys: Iterable[str]) -> bytes:
    """Encode the warm-up request: hydrate these store keys before serving."""
    encoded = [key.encode("utf-8") for key in keys]
    chunks = [_U32.pack(len(encoded))]
    for key_bytes in encoded:
        chunks.append(_U16.pack(len(key_bytes)))
        chunks.append(key_bytes)
    return _frame(MSG_WARM, *chunks)


def encode_ready(hydrated: int, pid: int) -> bytes:
    """Encode the warm-up acknowledgement."""
    return _frame(MSG_READY, _U32.pack(hydrated), _U32.pack(pid))


def encode_stats_request() -> bytes:
    """Encode the stats request (empty body)."""
    return _frame(MSG_STATS)


def encode_stats_reply(payload: dict[str, object]) -> bytes:
    """Encode a worker's counters as a JSON object."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _frame(MSG_STATS_REPLY, _U32.pack(len(data)), data)


def encode_shutdown() -> bytes:
    """Encode the graceful-shutdown request (empty body)."""
    return _frame(MSG_SHUTDOWN)


def encode_ping(seq: int = 0) -> bytes:
    """Encode a liveness probe (the worker echoes ``seq`` in its PONG)."""
    return _frame(MSG_PING, _U32.pack(seq))


def encode_pong(seq: int, pid: int) -> bytes:
    """Encode the liveness acknowledgement."""
    return _frame(MSG_PONG, _U32.pack(seq), _U32.pack(pid))


def encode_drain() -> bytes:
    """Encode the graceful-drain request: answer everything read so far,
    acknowledge with DRAINED, then exit."""
    return _frame(MSG_DRAIN)


def encode_drained(served: int, pid: int) -> bytes:
    """Encode the drain acknowledgement (total requests the worker served)."""
    return _frame(MSG_DRAINED, _U32.pack(served), _U32.pack(pid))


def encode_hello(pid: int, banner: str = "", version: int = PROTOCOL_VERSION) -> bytes:
    """Encode the server greeting a network connection receives on accept."""
    banner_bytes = banner.encode("utf-8")
    return _frame(
        MSG_HELLO,
        _U32.pack(version),
        _U32.pack(pid),
        _U16.pack(len(banner_bytes)),
        banner_bytes,
    )


def encode_overloaded(seq: int, inflight: int, capacity: int) -> bytes:
    """Encode an admission rejection: the request was never queued."""
    return _frame(
        MSG_OVERLOADED, _U32.pack(seq), _U32.pack(inflight), _U32.pack(capacity)
    )


def encode_trace(seq: int, trace: dict[str, object]) -> bytes:
    """Encode one request's span tree (sent just before its result frame)."""
    data = json.dumps(trace, sort_keys=True).encode("utf-8")
    return _frame(MSG_TRACE, _U32.pack(seq), _U32.pack(len(data)), data)


def encode_metrics_request(format: int = METRICS_JSON) -> bytes:
    """Encode a metrics-exposition request (JSON or Prometheus text)."""
    if format not in (METRICS_JSON, METRICS_PROMETHEUS):
        raise WireError(f"unknown metrics format {format!r}")
    return _frame(MSG_METRICS, _U8.pack(format))


def encode_metrics_reply(format: int, body: str) -> bytes:
    """Encode the rendered exposition body of a METRICS request."""
    if format not in (METRICS_JSON, METRICS_PROMETHEUS):
        raise WireError(f"unknown metrics format {format!r}")
    data = body.encode("utf-8")
    return _frame(MSG_METRICS_REPLY, _U8.pack(format), _U32.pack(len(data)), data)


# -- byte-stream framing (the network tier) ----------------------------------


def encode_framed(frame: bytes) -> bytes:
    """Length-prefix one frame for a raw byte stream (u32 little-endian)."""
    if len(frame) > MAX_FRAME:
        raise WireError(
            f"frame of {len(frame)} byte(s) exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _U32.pack(len(frame)) + frame


def framed_length(header: bytes) -> int:
    """Decode and bounds-check a stream frame's 4-byte length prefix."""
    if len(header) != 4:
        raise WireError(
            f"stream frame header is {len(header)} byte(s), expected 4"
        )
    (length,) = _U32.unpack(header)
    if length > MAX_FRAME:
        raise WireError(
            f"stream frame announces {length} byte(s), above MAX_FRAME "
            f"({MAX_FRAME})"
        )
    return length


# -- decoding ----------------------------------------------------------------


class _Reader:
    """A bounds-checked cursor over one frame's body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def take(self, size: int) -> bytes:
        end = self.pos + size
        if end > len(self.data):
            raise WireError(
                f"truncated frame: wanted {size} byte(s) at offset {self.pos}, "
                f"frame is {len(self.data)} byte(s)"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self, size: int) -> str:
        try:
            return self.take(size).decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError(f"undecodable utf-8 in frame: {error}") from error

    def done(self) -> None:
        if self.pos != len(self.data):
            raise WireError(
                f"frame has {len(self.data) - self.pos} trailing byte(s)"
            )


def decode(frame: bytes) -> Message:
    """Decode one frame into a :class:`Message` (raises :class:`WireError`)."""
    if len(frame) < _HEADER.size:
        raise WireError(f"frame of {len(frame)} byte(s) is shorter than a header")
    magic, msg_type = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    reader = _Reader(bytes(frame), _HEADER.size)
    if msg_type == MSG_QUERY:
        seq = reader.u32()
        flags = reader.u8()
        key_len = reader.u16()
        query_len = reader.u32()
        key = reader.text(key_len)
        query = reader.text(query_len)
        reader.done()
        return Message(MSG_QUERY, seq=seq, flags=flags, key=key, query=query)
    if msg_type == MSG_RESULT_IDS:
        seq = reader.u32()
        count = reader.u32()
        ids = array("i")
        ids.frombytes(reader.take(4 * count))
        if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
            ids.byteswap()
        reader.done()
        return Message(MSG_RESULT_IDS, seq=seq, ids=ids.tolist())
    if msg_type == MSG_RESULT_VALUE:
        seq = reader.u32()
        kind = reader.u8()
        if kind == _VALUE_FLOAT:
            value: object = _F64.unpack(reader.take(8))[0]
        elif kind == _VALUE_BOOL:
            value = bool(reader.u8())
        elif kind == _VALUE_STRING:
            value = reader.text(reader.u32())
        else:
            raise WireError(f"unknown scalar kind {kind!r}")
        reader.done()
        return Message(MSG_RESULT_VALUE, seq=seq, value=value)
    if msg_type == MSG_ERROR:
        seq = reader.u32()
        type_len = reader.u16()
        message_len = reader.u32()
        type_name = reader.text(type_len)
        message = reader.text(message_len)
        reader.done()
        return Message(MSG_ERROR, seq=seq, error=(type_name, message))
    if msg_type == MSG_WARM:
        count = reader.u32()
        keys = tuple(reader.text(reader.u16()) for _ in range(count))
        reader.done()
        return Message(MSG_WARM, keys=keys)
    if msg_type == MSG_READY:
        hydrated = reader.u32()
        pid = reader.u32()
        reader.done()
        return Message(MSG_READY, hydrated=hydrated, pid=pid)
    if msg_type == MSG_STATS:
        reader.done()
        return Message(MSG_STATS)
    if msg_type == MSG_STATS_REPLY:
        size = reader.u32()
        try:
            payload = json.loads(reader.text(size))
        except json.JSONDecodeError as error:
            raise WireError(f"undecodable stats payload: {error}") from error
        reader.done()
        return Message(MSG_STATS_REPLY, payload=payload)
    if msg_type == MSG_SHUTDOWN:
        reader.done()
        return Message(MSG_SHUTDOWN)
    if msg_type == MSG_PING:
        seq = reader.u32()
        reader.done()
        return Message(MSG_PING, seq=seq)
    if msg_type == MSG_PONG:
        seq = reader.u32()
        pid = reader.u32()
        reader.done()
        return Message(MSG_PONG, seq=seq, pid=pid)
    if msg_type == MSG_DRAIN:
        reader.done()
        return Message(MSG_DRAIN)
    if msg_type == MSG_DRAINED:
        served = reader.u32()
        pid = reader.u32()
        reader.done()
        return Message(MSG_DRAINED, served=served, pid=pid)
    if msg_type == MSG_HELLO:
        version = reader.u32()
        pid = reader.u32()
        banner = reader.text(reader.u16())
        reader.done()
        return Message(MSG_HELLO, version=version, pid=pid, banner=banner)
    if msg_type == MSG_OVERLOADED:
        seq = reader.u32()
        inflight = reader.u32()
        capacity = reader.u32()
        reader.done()
        return Message(
            MSG_OVERLOADED, seq=seq, inflight=inflight, capacity=capacity
        )
    if msg_type == MSG_TRACE:
        seq = reader.u32()
        size = reader.u32()
        try:
            payload = json.loads(reader.text(size))
        except json.JSONDecodeError as error:
            raise WireError(f"undecodable trace payload: {error}") from error
        if not isinstance(payload, dict):
            raise WireError("trace payload must be a JSON object")
        reader.done()
        return Message(MSG_TRACE, seq=seq, payload=payload)
    if msg_type == MSG_METRICS:
        format = reader.u8()
        if format not in (METRICS_JSON, METRICS_PROMETHEUS):
            raise WireError(f"unknown metrics format {format!r}")
        reader.done()
        return Message(MSG_METRICS, flags=format)
    if msg_type == MSG_METRICS_REPLY:
        format = reader.u8()
        if format not in (METRICS_JSON, METRICS_PROMETHEUS):
            raise WireError(f"unknown metrics format {format!r}")
        body = reader.text(reader.u32())
        reader.done()
        return Message(MSG_METRICS_REPLY, flags=format, body=body)
    raise WireError(f"unknown message type {msg_type}")
