"""The uniform result object returned by :class:`~repro.engine.XPathEngine`.

The legacy free functions return a bare ``XPathValue | list[XMLNode] |
bool`` union, which forces every caller to re-discover what kind of
answer it got and throws away everything the engine learned while
producing it (which evaluator ran, whether the plan was cached, how long
evaluation took).  :class:`QueryResult` keeps the payload *and* that
metadata together, and converts lazily between the two node-set
representations (node objects and document-order ids) so the id-native
fast path stays id-native until a caller actually asks for nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import XPathEvaluationError
from repro.telemetry.trace import maybe_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.fragments.classify import Classification
    from repro.telemetry.trace import Trace
    from repro.xmlmodel.document import Document
    from repro.xmlmodel.nodes import XMLNode


_UNSET = object()


class QueryResult:
    """One evaluated query: payload plus evaluation metadata.

    Attributes
    ----------
    query:
        The query text (the plan-cache key for ``engine="auto"`` runs).
    engine:
        The engine that answered: the planner's choice for auto-dispatch
        runs, the requested engine for explicit-engine runs.
    classification:
        The full Figure 1 :class:`~repro.fragments.classify.Classification`
        of the query (computed once per query text via the plan cache).
    cache_hit:
        True if the compiled plan (which doubles as the parse cache for
        explicit-engine runs) came from the engine's plan cache.
    coalesced:
        True if this request joined an identical in-flight request in
        :meth:`~repro.engine.XPathEngine.evaluate_concurrent` instead of
        evaluating on its own.
    wall_time:
        Evaluation wall time in seconds (parse/plan + run; excludes any
        time spent queueing in the thread pool).
    trace:
        The per-stage :class:`~repro.telemetry.Trace` span tree when the
        request asked for one (``trace=True``); None otherwise.  Lazy
        node materialisation appends a ``materialise`` span to it.

    The payload is reached through :attr:`value` (the legacy union),
    :attr:`nodes` (node-set results only) and :attr:`ids` (document-order
    ids, computed without materialising nodes when the id-native core
    path produced them).
    """

    __slots__ = (
        "query",
        "engine",
        "classification",
        "cache_hit",
        "coalesced",
        "wall_time",
        "trace",
        "_document",
        "_value",
        "_ids",
    )

    def __init__(
        self,
        query: str,
        engine: str,
        document: "Document",
        value=_UNSET,
        ids: Optional[list[int]] = None,
        classification: Optional["Classification"] = None,
        cache_hit: bool = False,
        coalesced: bool = False,
        wall_time: float = 0.0,
        trace: Optional["Trace"] = None,
    ) -> None:
        if value is _UNSET and ids is None:
            raise ValueError("QueryResult needs a value or an id list")
        self.query = query
        self.engine = engine
        self.classification = classification
        self.cache_hit = cache_hit
        self.coalesced = coalesced
        self.wall_time = wall_time
        self.trace = trace
        self._document = document
        self._value = value
        self._ids = ids

    # -- payload ---------------------------------------------------------------

    @property
    def is_node_set(self) -> bool:
        """True if the query produced a node-set (rather than a scalar)."""
        return self._ids is not None or isinstance(self._value, list)

    @property
    def value(self):
        """The result in the legacy convention: node list or plain scalar.

        Id-native results materialise their node objects on first access
        (and cache them), so callers that only ever read :attr:`ids` never
        pay for node materialisation.
        """
        if self._value is _UNSET:
            with maybe_span(self.trace, "materialise"):
                self._value = self._document.index.ids_to_node_list(self._ids)
        return self._value

    @property
    def nodes(self) -> "list[XMLNode]":
        """The node-set payload; raises if the query produced a scalar."""
        value = self.value
        if not isinstance(value, list):
            raise XPathEvaluationError(
                f"query produced a {type(value).__name__}, not a node-set"
            )
        return value

    @property
    def ids(self) -> list[int]:
        """The node-set payload as document-order ids.

        Results produced by the id-native core path return their ids
        directly; node-materialised results convert at this boundary
        (attribute nodes have no id and raise, exactly like
        :meth:`~repro.planner.plan.QueryPlan.run_ids`).
        """
        if self._ids is None:
            index = self._document.index
            try:
                self._ids = [index.id_of(node) for node in self.nodes]
            except KeyError:
                raise XPathEvaluationError(
                    "result contains nodes without a document-order id "
                    "(attribute nodes); use .value for this query"
                ) from None
        return self._ids

    @property
    def document(self) -> "Document":
        """The document the query was evaluated against."""
        return self._document

    # -- coalescing ------------------------------------------------------------

    def as_coalesced(self) -> "QueryResult":
        """A copy marked ``coalesced=True``, sharing this result's payload."""
        return QueryResult(
            query=self.query,
            engine=self.engine,
            document=self._document,
            value=self._value,
            ids=self._ids,
            classification=self.classification,
            cache_hit=self.cache_hit,
            coalesced=True,
            wall_time=self.wall_time,
            trace=self.trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_node_set:
            count = len(self._ids if self._ids is not None else self._value)
            payload = f"node-set of {count}"
        else:
            payload = repr(self._value)
        return (
            f"<QueryResult {self.query!r} engine={self.engine} "
            f"{payload} cache_hit={self.cache_hit}>"
        )
