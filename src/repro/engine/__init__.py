"""The session façade: one stateful entry point for the whole pipeline.

:class:`XPathEngine` owns the state the free-function API used to scatter
across module globals and per-call construction — a document registry, a
plan cache, per-(document, engine-kind) evaluator pools — plus the
concurrent serving layer (`evaluate_batch` / `evaluate_concurrent`) and a
:meth:`~XPathEngine.stats` snapshot.  The legacy entry points
(:func:`repro.evaluate`, :func:`repro.evaluate_many`, …) are thin
wrappers over the process-default engine returned by
:func:`default_engine`.

See ``docs/engine.md`` for the lifecycle, the thread-safety contract and
the old-call → new-call migration table.
"""

from repro.engine.engine import (
    ENGINE_KINDS,
    EngineStats,
    QueryRequest,
    StoreStats,
    XPathEngine,
    default_engine,
    reset_default_engine,
)
from repro.engine.registry import DocHandle, DocumentRegistry, RegistryStats
from repro.engine.result import QueryResult

__all__ = [
    "ENGINE_KINDS",
    "DocHandle",
    "DocumentRegistry",
    "EngineStats",
    "QueryRequest",
    "QueryResult",
    "RegistryStats",
    "StoreStats",
    "XPathEngine",
    "default_engine",
    "reset_default_engine",
]
