"""`XPathEngine`: the stateful session façade over the whole pipeline.

One engine object owns everything a serving process accumulates across
queries — the document registry (LRU-bounded, index forced once per
document), the plan cache, and per-(document, engine-kind) evaluator
pools — and exposes one uniform result type
(:class:`~repro.engine.result.QueryResult`) in place of the legacy
``XPathValue | list[XMLNode] | bool`` union.

Thread-safety contract
----------------------

Every public method is safe to call from any number of threads sharing
one engine:

* the plan cache is guarded by one engine-level lock (lookups are
  dict-speed, so one lock is cheaper than striping them);
* per-document state is lock-striped in the registry
  (:mod:`repro.engine.registry`): evaluators are *checked out* while in
  use, so no two threads ever share an evaluator instance;
* :meth:`XPathEngine.evaluate_concurrent` additionally *coalesces*
  identical in-flight requests (same document, query and mode): when
  eight workers ask for the same hot query at once, one evaluation runs
  and the other seven wait on it and share the result — the classic
  single-flight pattern of production serving layers, and the reason the
  concurrency benchmark's throughput scales with workers even under the
  GIL.

Examples
--------
>>> from repro.engine import XPathEngine
>>> engine = XPathEngine()
>>> doc = engine.add("<a><b/><b><c/></b></a>")
>>> result = engine.evaluate("//b[child::c]", doc)
>>> [node.tag for node in result.nodes], result.engine
(['b'], 'core')
>>> engine.evaluate("count(//b)", doc).value
2.0
>>> [r.ids for r in engine.evaluate_batch([("//b", doc), ("//c", doc)])]
[[2, 3], [4]]
>>> engine.evaluate("//b[child::c]", doc).cache_hit
True
>>> stats = engine.stats()
>>> (stats.documents.size, stats.dispatch["core"] >= 2)
(1, True)
"""

from __future__ import annotations

import sys
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Union

from repro.errors import XPathEvaluationError
from repro.evaluation.context import Context
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.singleton import (
    DEFAULT_MAX_NEGATION_DEPTH,
    SingletonSuccessChecker,
)
from repro.evaluation.values import XPathValue
from repro.engine.registry import DocHandle, DocumentRegistry, RegistryStats
from repro.engine.result import QueryResult
from repro.fragments.classify import DEFAULT_NESTING_BOUND
from repro.planner.cache import CacheStats, PlanCache
from repro.planner.plan import QueryPlan
from repro.store import StoreKey
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.render import render_kv_block
from repro.telemetry.slowlog import DEFAULT_SLOW_THRESHOLD, SlowQueryLog
from repro.telemetry.trace import Trace, maybe_span
from repro.xmlmodel.document import Document
from repro.xmlmodel.kernels import active_backend
from repro.xmlmodel.parser import parse_xml
from repro.xpath.ast import XPathExpr
from repro.xpath.functions import NODESET, static_type

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.serving import ServingStats, ShardedPool, XPathServer
    from repro.store import CorpusStore

#: Engines an explicit ``engine=`` override may name (mirrors the legacy API).
ENGINE_KINDS = ("auto", "cvt", "naive", "core", "singleton")

#: Interpreter thread-switch interval (seconds) while a concurrent batch is
#: in flight.  CPython's default of 5 ms is tuned for throughput of
#: long-running compute threads; a serving batch wants the opposite trade:
#: finished evaluations must propagate to their waiting coalesced followers
#: quickly so the followers can pull (and coalesce) the next requests.  The
#: original interval is restored when the outermost batch finishes.
CONCURRENT_SWITCH_INTERVAL = 0.001

_switch_lock = threading.Lock()
_switch_depth = 0
_switch_saved = 0.0
_switch_applied = 0.0


def _enter_concurrent_regime(interval: Optional[float]) -> None:
    """Lower the interpreter switch interval for the outermost batch.

    The interval is process-global state: overlapping batches share one
    depth counter (the first batch's interval wins until all are done).
    """
    global _switch_depth, _switch_saved, _switch_applied
    if interval is None:
        return
    with _switch_lock:
        if _switch_depth == 0:
            _switch_saved = sys.getswitchinterval()
            sys.setswitchinterval(interval)
            # Re-read rather than trust `interval`: CPython stores the
            # interval with microsecond truncation, and the restore guard
            # below must compare against what was actually applied.
            _switch_applied = sys.getswitchinterval()
        _switch_depth += 1


def _exit_concurrent_regime(interval: Optional[float]) -> None:
    global _switch_depth
    if interval is None:
        return
    with _switch_lock:
        _switch_depth -= 1
        if _switch_depth == 0 and sys.getswitchinterval() == _switch_applied:
            # Restore only if nobody else changed the interval meanwhile —
            # an external sys.setswitchinterval() call wins over our undo.
            sys.setswitchinterval(_switch_saved)

DocumentLike = Union[Document, DocHandle, str]


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the batch/concurrent entry points."""

    query: Union[XPathExpr, str]
    document: DocumentLike
    context: Optional[Context] = None
    variables: Optional[Mapping[str, XPathValue]] = None
    engine: str = "auto"
    ids: bool = False
    trace: bool = False


@dataclass(frozen=True)
class StoreStats:
    """Counters of the engine's corpus-store hydration path.

    ``hits`` counts :meth:`XPathEngine.add_from_store` requests that were
    served (from the live registry or from a snapshot load); ``loads``
    counts the subset that actually deserialised a snapshot from disk
    (cold hydrations); ``misses`` counts requests whose key was absent
    from the store.
    """

    hits: int = 0
    misses: int = 0
    loads: int = 0


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of an engine's counters.

    ``dispatch`` counts evaluations by the engine that answered them (the
    planner's pick for auto runs); ``coalesced`` counts concurrent
    requests that joined an identical in-flight evaluation instead of
    running their own.  ``store`` is None until a corpus store is
    attached; ``serving`` is None until :meth:`XPathEngine.serve` starts
    a worker pool (it then merges the per-worker engine counters).
    """

    plans: CacheStats
    documents: RegistryStats
    dispatch: Mapping[str, int]
    queries: int = 0
    coalesced: int = 0
    store: Optional[StoreStats] = None
    serving: "Optional[ServingStats]" = None
    kernel_backend: str = "pure"

    def describe(self) -> str:
        """Render the snapshot as the CLI's ``--stats`` block."""
        plans, docs = self.plans, self.documents
        dispatch = (
            " ".join(f"{name}={count}" for name, count in sorted(self.dispatch.items()))
            or "(none)"
        )
        rows = [
            ("plan cache",
             f"{plans.size}/{plans.maxsize} plans, "
             f"{plans.hits} hit(s), {plans.misses} miss(es), "
             f"{plans.evictions} eviction(s), hit rate {plans.hit_rate:.0%}"),
            ("documents",
             f"{docs.size}/{docs.maxsize} registered, "
             f"{docs.adds} add(s), {docs.reuses} reuse(s), "
             f"{docs.evictions} eviction(s)"),
            ("dispatch counts", dispatch),
            ("queries", f"{self.queries} total, {self.coalesced} coalesced"),
            ("kernel backend", self.kernel_backend),
        ]
        if self.store is not None:
            rows.append(
                ("store",
                 f"{self.store.hits} hit(s), {self.store.misses} miss(es), "
                 f"{self.store.loads} snapshot load(s)")
            )
        lines = [render_kv_block(rows)]
        if self.serving is not None:
            lines.append(self.serving.describe())
        return "\n".join(lines)


class _InFlight:
    """A single-flight slot: one leader computes, followers wait and share."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[QueryResult] = None
        self.error: Optional[BaseException] = None


class XPathEngine:
    """A thread-safe session façade over documents, plans and evaluators.

    Parameters
    ----------
    max_documents:
        LRU bound on the document registry; the least recently used
        document (and its pooled evaluators) is dropped beyond it.
    plan_cache_size:
        LRU bound on this engine's own :class:`PlanCache`.
    max_negation_depth:
        The ``not(…)`` nesting bound handed to ``singleton`` evaluators
        (one documented default for the whole public surface:
        :data:`~repro.evaluation.singleton.DEFAULT_MAX_NEGATION_DEPTH`).
    nesting_bound:
        Arithmetic-nesting bound forwarded to the fragment classifiers.
    stripes:
        Number of per-document lock stripes in the registry.
    slow_query_threshold:
        Evaluations at or above this wall time (seconds) are recorded in
        the engine's ring-buffer :attr:`slow_log`.

    Counters live in a per-engine telemetry registry
    (:class:`~repro.telemetry.MetricsRegistry`, per-thread shards, no
    lock on the increment path); :meth:`stats` renders the registry as
    the frozen :class:`EngineStats` view the pre-telemetry API promised.
    """

    def __init__(
        self,
        max_documents: int = 64,
        plan_cache_size: int = 512,
        max_negation_depth: int = DEFAULT_MAX_NEGATION_DEPTH,
        nesting_bound: int = DEFAULT_NESTING_BOUND,
        stripes: int = 8,
        switch_interval: Optional[float] = CONCURRENT_SWITCH_INTERVAL,
        slow_query_threshold: float = DEFAULT_SLOW_THRESHOLD,
    ) -> None:
        self.max_negation_depth = max_negation_depth
        self.switch_interval = switch_interval
        self._plan_cache = PlanCache(plan_cache_size, nesting_bound)
        self._plan_lock = threading.Lock()
        self._registry = DocumentRegistry(max_documents, stripes, engine=self)
        self.metrics = MetricsRegistry()
        self.slow_log = SlowQueryLog(threshold=slow_query_threshold)
        self._queries_total = self.metrics.counter(
            "repro_engine_queries_total",
            "requests served (coalesced followers included)",
        )
        self._coalesced_total = self.metrics.counter(
            "repro_engine_coalesced_total",
            "requests that joined an identical in-flight evaluation",
        )
        self._dispatch_total = self.metrics.counter(
            "repro_engine_dispatch_total",
            "evaluations by the engine that answered",
            labels=("engine",),
        )
        self._dispatch_children: dict[str, object] = {}
        self._store_hits_total = self.metrics.counter(
            "repro_engine_store_hits_total", "store hydration requests served"
        )
        self._store_misses_total = self.metrics.counter(
            "repro_engine_store_misses_total",
            "store hydration requests for unknown keys",
        )
        self._store_loads_total = self.metrics.counter(
            "repro_engine_store_loads_total", "cold snapshot loads from disk"
        )
        self._query_seconds = self.metrics.histogram(
            "repro_engine_query_seconds", "end-to-end evaluation wall time"
        )
        self._inflight: dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._store: "Optional[CorpusStore]" = None
        self._store_mmap = False
        self._store_lock = threading.Lock()
        # Hydrated documents keyed by (snapshot hash, mmap residency),
        # weakly: re-requests of a live (still-registered) document reuse
        # it — and its evaluator pools and cached IdSet partitions —
        # without re-reading the snapshot (a warm request costs one
        # manifest mtime check), while evicted documents stay collectable
        # (the WeakValueDictionary drops entries with them).
        self._store_docs: "weakref.WeakValueDictionary[tuple[str, bool], Document]" = (
            weakref.WeakValueDictionary()
        )
        self._store_hits = 0
        self._store_misses = 0
        self._store_loads = 0
        self._serving: "Optional[ShardedPool]" = None
        self._serving_finalizer = None
        self._network_server = None
        # The pool is a single-dispatcher backend (one pipe conversation
        # per worker); this lock is what upholds the engine's public
        # thread-safety contract over it — concurrent sharded batches,
        # stats round-trips and serve()/shutdown() calls serialise here.
        self._serving_lock = threading.RLock()

    # -- documents -------------------------------------------------------------

    def add(self, source: DocumentLike) -> DocHandle:
        """Register a document (or parse and register XML text).

        Registration is idempotent per document object and forces the
        :class:`~repro.xmlmodel.index.DocumentIndex` exactly once, off
        the evaluation hot path.
        """
        if isinstance(source, DocHandle):
            return self._registry.add(source.document)
        if isinstance(source, StoreKey):
            return self.add_from_store(source)
        if isinstance(source, str):
            source = parse_xml(source)
        return self._registry.add(source)

    # -- corpus store ----------------------------------------------------------

    def attach_store(
        self, store: "CorpusStore", mmap: bool = False
    ) -> "XPathEngine":
        """Attach a :class:`~repro.store.CorpusStore` and return the engine.

        Once attached, :meth:`add_from_store` (and
        :class:`~repro.store.StoreKey` documents passed to any evaluate
        entry point) hydrate documents from snapshots instead of parsing
        and re-indexing.  ``mmap=True`` makes hydrations map snapshot
        files zero-copy by default.
        """
        with self._store_lock:
            self._store = store
            self._store_mmap = mmap
        return self

    @property
    def store(self) -> "Optional[CorpusStore]":
        """The attached corpus store, if any."""
        return self._store

    def add_from_store(
        self,
        key: str,
        store: "Optional[CorpusStore]" = None,
        mmap: Optional[bool] = None,
    ) -> DocHandle:
        """Register the document stored under ``key``, hydrating if cold.

        A key whose document is still registered (tracked weakly by
        snapshot hash and residency, so two keys naming identical
        content share one hydration) is reused together with its
        evaluator pools; an evicted or never-seen key costs one snapshot
        load — never an XML parse, never an index build.  Raises
        :class:`~repro.store.StoreKeyError` for unknown keys.
        """
        store = store if store is not None else self._store
        if store is None:
            raise RuntimeError(
                "no corpus store attached; call engine.attach_store(store) "
                "or pass store=..."
            )
        use_mmap = self._store_mmap if mmap is None else mmap
        try:
            entry = store.stat(key)
        except KeyError:
            self._store_misses_total.inc()
            raise
        cache_key = (entry.hash, use_mmap)
        loaded = False
        handle = None
        with self._store_lock:
            # Any live entry is reusable, registered or not: content is
            # immutable per hash, and re-registering an evicted-but-alive
            # document is cheaper than a reload and preserves node-object
            # identity with results callers may still hold.
            document = self._store_docs.get(cache_key)
        if document is None:
            # Load outside the lock (a stampede may duplicate the work),
            # then publish *and register* under it, so every racer ends
            # up registering the same document object.
            fresh = store.get(key, mmap=use_mmap)
            with self._store_lock:
                document = self._store_docs.get(cache_key)
                if document is None:
                    document = fresh
                    self._store_docs[cache_key] = fresh
                    handle = self._registry.add(fresh)
                    loaded = True
        self._store_hits_total.inc()
        if loaded:
            self._store_loads_total.inc()
        return handle if handle is not None else self._registry.add(document)

    # -- cross-process serving -------------------------------------------------

    def serve(
        self,
        workers: int = 4,
        mmap: bool = True,
        start_method: Optional[str] = None,
        warm: bool = True,
        restarts: Optional[int] = None,
        request_timeout: Optional[float] = None,
    ) -> "ShardedPool":
        """Start (or return) this engine's cross-process serving backend.

        Shards the attached store's documents across ``workers``
        processes over the id-native wire format — see
        :class:`repro.serving.ShardedPool` and ``docs/serving.md``.  The
        pool is supervised: a worker that dies is restarted (up to
        ``restarts`` times per worker, default
        :data:`repro.serving.DEFAULT_MAX_RESTARTS`) and its in-flight
        requests are replayed; ``request_timeout`` bounds each request's
        wall clock (``None`` = no bound).  The pool is cached on the
        engine: a second call with the same ``workers`` returns the live
        pool, a different ``workers`` count shuts the old pool down and
        starts a new one.  The engine's :meth:`stats` merge the workers'
        counters while a pool is live, and the pool is closed when the
        engine is garbage-collected (call :meth:`shutdown_serving` for
        deterministic shutdown).
        """
        if self._store is None:
            raise RuntimeError(
                "no corpus store attached; call engine.attach_store(store) "
                "first — the store is the workers' document transport"
            )
        with self._serving_lock:
            pool = self._serving
            if pool is not None and not pool.closed:
                if pool.workers == workers:
                    return pool
                self.shutdown_serving()
            from repro.serving import DEFAULT_MAX_RESTARTS, ShardedPool

            pool = ShardedPool(
                self._store,
                workers=workers,
                mmap=mmap,
                start_method=start_method,
                warm=warm,
                max_restarts=(
                    DEFAULT_MAX_RESTARTS if restarts is None else restarts
                ),
                request_timeout=request_timeout,
            )
            self._serving = pool
            self._serving_finalizer = weakref.finalize(self, pool.close)
            return pool

    def evaluate_sharded(
        self,
        requests: Iterable[tuple],
        workers: int = 4,
        ids: bool = False,
        trace: bool = False,
    ) -> list[QueryResult]:
        """Evaluate ``(query, store key)`` pairs on the worker pool.

        Results come back in input order and identical to evaluating the
        same requests in process (``engine.evaluate(query,
        StoreKey(key))``).  Reuses a live pool regardless of its worker
        count; starts one with ``workers`` processes otherwise.  Safe
        from any thread (batches from concurrent threads serialise on
        the engine's serving lock — the pool is one conversation).
        ``trace=True`` asks the workers for per-stage span trees (see
        :meth:`repro.serving.ShardedPool.evaluate_batch`).
        """
        with self._serving_lock:
            pool = self._serving
            if pool is None or pool.closed:
                pool = self.serve(workers=workers)
            return pool.evaluate_batch(requests, ids=ids, trace=trace)

    def serve_network(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        *,
        max_inflight: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        banner: str = "repro-xpath",
        **serve_kwargs,
    ) -> "XPathServer":
        """Put the network front door on this engine's serving pool.

        Starts (or reuses) the engine's :meth:`serve` pool and binds an
        :class:`repro.serving.XPathServer` over it on a background
        thread; returns the running server (its bound address is
        ``server.address`` — ``port=0`` picks an ephemeral port).  The
        server shares the engine's serving lock, so
        :meth:`evaluate_sharded` from this process stays safe while
        network clients are being served.  A second call returns the
        live server.  ``serve_kwargs`` go to :meth:`serve` (pool
        construction).  :meth:`shutdown_serving` drains the server
        before closing the pool.
        """
        with self._serving_lock:
            server = self._network_server
            if server is not None and not server.draining:
                return server
            pool = self.serve(workers=workers, **serve_kwargs)
            from repro.serving import XPathServer

            server = XPathServer(
                pool,
                host=host,
                port=port,
                max_inflight=max_inflight,
                idle_timeout=idle_timeout,
                banner=banner,
                dispatch_lock=self._serving_lock,
            )
            server.start_background()
            self._network_server = server
            return server

    def shutdown_serving(self) -> None:
        """Drain the network server (if any) and close the pool (idempotent)."""
        server = self._network_server
        if server is not None:
            # Outside the serving lock: the server's dispatcher needs the
            # lock to flush its in-flight requests during the drain.
            server.shutdown(graceful=True)
        with self._serving_lock:
            self._network_server = None
            if self._serving_finalizer is not None:
                self._serving_finalizer()  # runs pool.close() exactly once
                self._serving_finalizer = None
            self._serving = None

    @property
    def serving(self) -> "Optional[ShardedPool]":
        """The live serving pool, if :meth:`serve` started one."""
        pool = self._serving
        return pool if pool is not None and not pool.closed else None

    @property
    def plan_cache(self) -> PlanCache:
        """This engine's plan cache (shared by every evaluation)."""
        return self._plan_cache

    @property
    def documents(self) -> DocumentRegistry:
        """The engine's document registry."""
        return self._registry

    # -- planning --------------------------------------------------------------

    def get_plan(self, query: Union[XPathExpr, str]) -> QueryPlan:
        """Return the (cached) plan for ``query`` from this engine's cache."""
        with self._plan_lock:
            return self._plan_cache.plan(query)

    def clear_plan_cache(self) -> None:
        """Clear the plan cache (under the same lock evaluations take)."""
        with self._plan_lock:
            self._plan_cache.clear()

    def _plan(
        self, query: Union[XPathExpr, str], trace: Optional[Trace] = None
    ) -> tuple[QueryPlan, bool]:
        key = query if isinstance(query, str) else query.unparse()
        with self._plan_lock:
            hit = key in self._plan_cache
            return self._plan_cache.plan(query, trace=trace), hit

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        query: Union[XPathExpr, str],
        document: DocumentLike,
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        engine: str = "auto",
        ids: bool = False,
        trace: bool = False,
    ) -> QueryResult:
        """Evaluate one query and return a :class:`QueryResult`.

        ``engine="auto"`` (the default) goes through the planner;
        explicit engine names reproduce the legacy per-engine semantics.
        ``ids=True`` keeps core-engine node-sets id-native end-to-end.
        ``trace=True`` additionally records per-stage spans
        (``parse→plan→eval→materialise``) on ``result.trace``.
        """
        request = QueryRequest(
            query, document, context, variables, engine, ids, trace
        )
        return self._evaluate_request(request, coalesce=False)

    def evaluate_detached(
        self,
        query: Union[XPathExpr, str],
        document: Union[Document, DocHandle],
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        engine: str = "auto",
        ids: bool = False,
        evaluators: Optional[dict] = None,
        trace: bool = False,
    ) -> QueryResult:
        """Evaluate without registering ``document`` in the registry.

        The evaluation shares this engine's plan cache and counters but
        leaves no trace in the document registry — the engine keeps no
        reference to the document, so a transient document is garbage-
        collected as soon as the caller drops it.  This is the path the
        legacy free functions use: they must not grow process-lifetime
        state on behalf of callers that never asked for a session.

        There is no cross-call evaluator pooling; pass one ``evaluators``
        mapping across several calls (as :func:`repro.planner.evaluate_many`
        does for a batch) to reuse instances within a scope you control.
        """
        if isinstance(document, DocHandle):
            document = document.document
        request = QueryRequest(
            query, document, context, variables, engine, ids, trace
        )
        return self._evaluate_now(
            request, document, {} if evaluators is None else evaluators
        )

    def evaluate_batch(
        self,
        requests: Iterable[Union[QueryRequest, tuple]],
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        engine: str = "auto",
        ids: bool = False,
        trace: bool = False,
    ) -> list[QueryResult]:
        """Evaluate a batch sequentially, sharing plans, indexes and pools.

        Requests are ``(query, document)`` pairs or :class:`QueryRequest`
        objects; the keyword arguments are defaults applied to the pair
        form.  Results come back in input order.
        """
        items = self._resolve_requests(
            self._as_request(item, context, variables, engine, ids, trace)
            for item in requests
        )
        return [self._evaluate_request(item, coalesce=False) for item in items]

    def evaluate_concurrent(
        self,
        requests: Iterable[Union[QueryRequest, tuple]],
        max_workers: int = 4,
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        engine: str = "auto",
        ids: bool = False,
        trace: bool = False,
    ) -> list[QueryResult]:
        """Evaluate a batch on a thread pool, coalescing identical requests.

        Results come back in input order and are identical to
        :meth:`evaluate_batch` on the same requests.  Identical requests
        in flight at the same moment share a single evaluation (their
        results are marked ``coalesced=True``), which is what makes a hot
        repeated-query workload scale with ``max_workers`` even though
        the evaluators themselves are pure Python.

        Note the deliberate process-wide side effect: while the batch is
        in flight, the interpreter's thread-switch interval is lowered to
        this engine's ``switch_interval`` (default
        :data:`CONCURRENT_SWITCH_INTERVAL`, restored afterwards), which
        also makes *unrelated* threads in the host process switch more
        often.  Construct the engine with ``switch_interval=None`` to
        opt out when embedding alongside other CPU-bound threads.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        items = self._resolve_requests(
            self._as_request(item, context, variables, engine, ids, trace)
            for item in requests
        )
        if not items:
            return []
        _enter_concurrent_regime(self.switch_interval)
        try:
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-engine"
            ) as executor:
                futures = [
                    executor.submit(self._evaluate_request, request, True)
                    for request in items
                ]
                return [future.result() for future in futures]
        finally:
            _exit_concurrent_regime(self.switch_interval)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> EngineStats:
        """Return a point-in-time snapshot of every engine counter.

        The counters live in this engine's telemetry registry
        (:attr:`metrics`); this method renders them as the frozen
        :class:`EngineStats` view.  While a serving pool is live
        (:meth:`serve`), the snapshot's ``serving`` field carries the
        merged per-worker counters — one ``stats()`` call describes the
        whole process tree.
        """
        serving = None
        with self._serving_lock:
            pool = self.serving
            if pool is not None:
                serving = pool.stats()
        with self._plan_lock:
            plans = self._plan_cache.stats()
        dispatch = {
            child.labels["engine"]: int(child.value())
            for child in self._dispatch_total.children()
        }
        queries = int(self._queries_total.value())
        coalesced = int(self._coalesced_total.value())
        store = (
            StoreStats(
                hits=int(self._store_hits_total.value()),
                misses=int(self._store_misses_total.value()),
                loads=int(self._store_loads_total.value()),
            )
            if self._store is not None
            else None
        )
        return EngineStats(
            plans=plans,
            documents=self._registry.stats(),
            dispatch=dispatch,
            queries=queries,
            coalesced=coalesced,
            store=store,
            serving=serving,
            kernel_backend=active_backend().name,
        )

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _as_request(
        item,
        context: Optional[Context],
        variables: Optional[Mapping[str, XPathValue]],
        engine: str,
        ids: bool,
        trace: bool = False,
    ) -> QueryRequest:
        if isinstance(item, QueryRequest):
            return item
        if isinstance(item, tuple) and len(item) == 2:
            return QueryRequest(
                item[0], item[1], context, variables, engine, ids, trace
            )
        raise TypeError(
            "request must be a QueryRequest or a (query, document) pair, "
            f"got {item!r}"
        )

    def _resolve_requests(self, items) -> list[QueryRequest]:
        """Normalise a batch's documents to handles before any work runs.

        In particular, equal XML *text* must resolve to one registered
        document per batch — parsing it per request would yield distinct
        trees, so identical requests could never coalesce and the
        registry would fill with duplicates.
        """
        parsed: dict[str, DocHandle] = {}
        resolved = []
        for item in items:
            document = item.document
            if isinstance(document, str):
                handle = parsed.get(document)
                if handle is None:
                    handle = parsed[document] = self.add(document)
                item = replace(item, document=handle)
            resolved.append(item)
        return resolved

    def _record(self, engine: str) -> None:
        # The labelled child is memoised in a plain dict: labels() itself
        # is get-or-create and always returns the same object, so a racy
        # double-store is benign, and the fast path is one dict hit.
        child = self._dispatch_children.get(engine)
        if child is None:
            child = self._dispatch_total.labels(engine=engine)
            self._dispatch_children[engine] = child
        child.inc()
        self._queries_total.inc()

    def _evaluate_request(self, request: QueryRequest, coalesce: bool) -> QueryResult:
        handle = self.add(request.document)
        if (
            coalesce
            and request.engine == "auto"
            and request.context is None
            and not request.variables
            # A traced request never coalesces: its spans must measure
            # *this* request's evaluation, not a leader's.
            and not request.trace
        ):
            key = (
                handle.uid,
                request.query
                if isinstance(request.query, str)
                else request.query.unparse(),
                request.ids,
            )
            return self._single_flight(key, request, handle)
        return self._evaluate_pooled(request, handle)

    def _evaluate_pooled(self, request: QueryRequest, handle: DocHandle) -> QueryResult:
        """Run one request with evaluators checked out of the handle's pool."""
        evaluators = self._registry.checkout(handle)
        try:
            return self._evaluate_now(request, handle.document, evaluators)
        finally:
            self._registry.checkin(handle, evaluators)

    def _single_flight(
        self, key: tuple, request: QueryRequest, handle: DocHandle
    ) -> QueryResult:
        with self._inflight_lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = _InFlight()
                self._inflight[key] = entry
        if leader:
            try:
                entry.result = self._evaluate_pooled(request, handle)
            except BaseException as error:
                entry.error = error
                raise
            finally:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                entry.event.set()
            return entry.result
        entry.event.wait()
        if entry.error is not None:
            raise entry.error
        result = entry.result.as_coalesced()
        # A follower is a served request but not an evaluation: it counts
        # toward `queries`/`coalesced`, never toward `dispatch`.
        self._queries_total.inc()
        self._coalesced_total.inc()
        return result

    def _finish(
        self,
        plan: QueryPlan,
        engine: str,
        document: Document,
        cache_hit: bool,
        start: float,
        trace: Optional[Trace],
        **payload,
    ) -> QueryResult:
        """Stamp wall time, feed the telemetry sinks, build the result.

        Every evaluation path funnels through here, which is what makes
        ``wall_time`` unconditionally populated (and the latency
        histogram and slow-query log complete).
        """
        wall = perf_counter() - start
        self._query_seconds.observe(wall)
        self.slow_log.record(plan.query, engine, wall)
        return QueryResult(
            query=plan.query,
            engine=engine,
            document=document,
            classification=plan.classification,
            cache_hit=cache_hit,
            wall_time=wall,
            trace=trace,
            **payload,
        )

    def _evaluate_now(
        self, request: QueryRequest, document: Document, evaluators: dict
    ) -> QueryResult:
        trace = Trace("engine") if request.trace else None
        start = perf_counter()
        if request.engine == "auto":
            plan, cache_hit = self._plan(request.query, trace)
            payload: dict[str, object] = {}
            if request.ids:
                with maybe_span(trace, "eval", engine=plan.engine):
                    payload["ids"] = plan.run_ids(
                        document,
                        context=request.context,
                        variables=request.variables,
                        evaluators=evaluators,
                    )
            else:
                with maybe_span(trace, "eval", engine=plan.engine):
                    payload["value"] = plan.run(
                        document,
                        context=request.context,
                        variables=request.variables,
                        evaluators=evaluators,
                    )
            self._record(plan.engine)
            return self._finish(
                plan, plan.engine, document, cache_hit, start, trace, **payload
            )
        return self._evaluate_explicit(request, document, evaluators, start, trace)

    def _evaluate_explicit(
        self,
        request: QueryRequest,
        document: Document,
        evaluators: dict,
        start: float,
        trace: Optional[Trace] = None,
    ) -> QueryResult:
        engine = request.engine
        if engine not in ENGINE_KINDS:
            raise XPathEvaluationError(
                f"unknown engine {engine!r}; choose one of {ENGINE_KINDS} "
                "(see repro.engine.XPathEngine for the session API)"
            )
        # The plan cache doubles as the parse cache: explicit-engine runs
        # reuse the cached AST (so pooled evaluators memoise on one expr
        # object per query text) and inherit the classification metadata.
        plan, cache_hit = self._plan(request.query, trace)
        context, variables = request.context, request.variables
        if engine == "core" and request.ids and context is None:
            # Keep the explicit core path id-native for ids=True, exactly
            # like the auto path: no node objects, no reverse mapping.
            evaluator = evaluators.get("core")
            if evaluator is None:
                evaluator = CoreXPathEvaluator(document)
            with maybe_span(trace, "eval", engine=engine):
                ids = evaluator.evaluate_ids(plan.expr)
            evaluators["core"] = evaluator
            self._record(engine)
            return self._finish(
                plan, engine, document, cache_hit, start, trace, ids=ids
            )
        if engine == "singleton":
            # The planner never dispatches to the checker, so its calling
            # convention (result shape by static type) lives here.
            checker = evaluators.get("singleton")
            if checker is None:
                checker = SingletonSuccessChecker(
                    document, max_negation_depth=self.max_negation_depth
                )
            kind = static_type(plan.expr)
            with maybe_span(trace, "eval", engine=engine):
                if kind == NODESET:
                    value = checker.evaluate_nodes(plan.expr, context)
                elif kind == "boolean":
                    value = checker.evaluate_boolean(plan.expr, context)
                else:
                    value = checker.evaluate_number(plan.expr, context)
            evaluators["singleton"] = checker
        else:
            with maybe_span(trace, "eval", engine=engine):
                value = plan.run_engine(
                    engine, document, context, variables, evaluators
                )
        self._record(engine)
        return self._finish(
            plan, engine, document, cache_hit, start, trace, value=value
        )


_default_engine: Optional[XPathEngine] = None
_default_engine_lock = threading.Lock()


def default_engine() -> XPathEngine:
    """Return the process-default engine the legacy free functions share.

    Created lazily on first use; :func:`reset_default_engine` replaces it
    (mainly for tests that need pristine counters).
    """
    global _default_engine
    engine = _default_engine
    if engine is None:
        with _default_engine_lock:
            engine = _default_engine
            if engine is None:
                engine = _default_engine = XPathEngine()
    return engine


def reset_default_engine() -> XPathEngine:
    """Replace the process-default engine with a fresh one and return it."""
    global _default_engine
    with _default_engine_lock:
        _default_engine = XPathEngine()
        return _default_engine
