"""The engine's document registry: handles, LRU bounds, evaluator pools.

A :class:`DocumentRegistry` owns the per-document state a serving session
accumulates:

* the :class:`~repro.xmlmodel.document.Document` itself, with its
  :class:`~repro.xmlmodel.index.DocumentIndex` forced exactly once at
  registration time (never lazily on a hot evaluation path);
* a per-document **evaluator pool**, one free-list per engine kind, so
  context-value tables and id-set condition caches survive across calls
  instead of being rebuilt per query.

Thread-safety is lock-striped: one small registry lock guards only the
LRU ordering (constant-time dict operations), while per-document work —
index forcing, evaluator checkout/checkin — runs under one of
``stripes`` independent locks picked by document handle.  Concurrent
requests against different documents therefore never contend on a
per-document lock, and requests against the same document only contend
for the microseconds of a pool pop/push, never for the evaluation
itself: evaluators are *checked out* (removed from the pool) while in
use, so no two threads ever share an evaluator instance.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.xmlmodel.document import Document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.engine.engine import XPathEngine
    from repro.engine.result import QueryResult

#: Evaluator instances kept per (document, engine kind); checkins beyond
#: this are dropped so a burst of workers cannot pin unbounded memory.
POOL_DEPTH = 8


class DocHandle:
    """A registered document: the unit the engine's API operates on.

    Handles are cheap tickets — they hold the document, a stable ``uid``,
    and the per-document evaluator pool.  They stay valid after LRU
    eviction (the engine transparently re-registers the document on next
    use); eviction only drops the pooled evaluators.
    """

    __slots__ = ("uid", "document", "_engine", "_pool", "_stripe", "_retired")

    def __init__(self, uid: int, document: Document, engine: "Optional[XPathEngine]", stripe: threading.RLock) -> None:
        self.uid = uid
        self.document = document
        self._engine = engine
        self._pool: dict[str, list[object]] = {}
        self._stripe = stripe
        self._retired = False

    @property
    def size(self) -> int:
        """Node count of the registered document (|D|)."""
        return self.document.size

    def evaluate(self, query, **kwargs) -> "QueryResult":
        """Evaluate ``query`` on this document via the owning engine."""
        if self._engine is None:
            raise RuntimeError("handle is not attached to an engine")
        return self._engine.evaluate(query, self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocHandle uid={self.uid} size={self.document.size}>"


@dataclass(frozen=True)
class RegistryStats:
    """A point-in-time snapshot of a :class:`DocumentRegistry`'s counters."""

    size: int
    maxsize: int
    adds: int
    reuses: int
    evictions: int


class DocumentRegistry:
    """LRU-bounded mapping from documents to :class:`DocHandle` entries."""

    def __init__(self, maxsize: int = 64, stripes: int = 8, engine: "Optional[XPathEngine]" = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        self.maxsize = maxsize
        self._engine = engine
        self._lock = threading.Lock()
        self._stripes = tuple(threading.RLock() for _ in range(stripes))
        self._handles: "OrderedDict[int, DocHandle]" = OrderedDict()
        self._uids = itertools.count()
        self.adds = 0
        self.reuses = 0
        self.evictions = 0

    def add(self, document: Document) -> DocHandle:
        """Register ``document`` (idempotent) and return its handle.

        The document's index is forced under the handle's stripe lock, so
        exactly one thread pays the O(|D|) build even under a concurrent
        stampede for the same fresh document.
        """
        if not isinstance(document, Document):
            raise TypeError(f"expected a Document, got {type(document).__name__}")
        key = id(document)
        evicted: Optional[DocHandle] = None
        with self._lock:
            handle = self._handles.get(key)
            if handle is None:
                uid = next(self._uids)
                handle = DocHandle(
                    uid, document, self._engine, self._stripes[uid % len(self._stripes)]
                )
                self._handles[key] = handle
                self.adds += 1
                if len(self._handles) > self.maxsize:
                    _, evicted = self._handles.popitem(last=False)
                    self.evictions += 1
            else:
                self._handles.move_to_end(key)
                self.reuses += 1
        if evicted is not None:
            self._retire(evicted)
        # Force the index on every path (the reuse path may arrive while a
        # first registration is still building): the stripe serialises the
        # build, and the property's cache makes the second entrant a no-op.
        if not document.has_index:
            with handle._stripe:
                document.index
        return handle

    # -- evaluator pooling -----------------------------------------------------

    def _retire(self, handle: DocHandle) -> None:
        """Mark an evicted handle dead for pooling purposes.

        Eviction can race an in-flight evaluation that checked evaluators
        out of this handle's pool.  Retiring (under the handle's own
        stripe, so it serialises with checkout/checkin) empties the pool
        and makes every later :meth:`checkin` drop its evaluators instead
        of re-pooling them — otherwise the orphaned handle would silently
        pin evaluators (and through them the document) that no future
        request can ever reach, while the re-registered document starts a
        *second* pool for the same document.
        """
        with handle._stripe:
            handle._retired = True
            handle._pool.clear()

    def checkout(self, handle: DocHandle) -> dict[str, object]:
        """Remove one pooled evaluator per engine kind and return them.

        The returned mapping has the shape :meth:`QueryPlan.run` expects
        for its ``evaluators`` argument; entries added to it during the
        run come back to the pool via :meth:`checkin`.
        """
        with handle._stripe:
            out: dict[str, object] = {}
            for engine, free in handle._pool.items():
                if free:
                    out[engine] = free.pop()
            return out

    def checkin(self, handle: DocHandle, evaluators: dict[str, object]) -> None:
        """Return checked-out (and newly built) evaluators to the pool.

        Checkins to a handle that was evicted while the evaluation ran
        are dropped on the floor — see :meth:`_retire`.
        """
        with handle._stripe:
            if handle._retired:
                return
            pool = handle._pool
            for engine, evaluator in evaluators.items():
                free = pool.setdefault(engine, [])
                if evaluator is not None and len(free) < POOL_DEPTH:
                    free.append(evaluator)

    def pooled(self, handle: DocHandle, engine: str) -> int:
        """Number of idle pooled evaluators of kind ``engine`` (for tests)."""
        with handle._stripe:
            return len(handle._pool.get(engine, ()))

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)

    def __contains__(self, document: Document) -> bool:
        with self._lock:
            return id(document) in self._handles

    def stats(self) -> RegistryStats:
        """Return a snapshot of the registry counters."""
        with self._lock:
            return RegistryStats(
                size=len(self._handles),
                maxsize=self.maxsize,
                adds=self.adds,
                reuses=self.reuses,
                evictions=self.evictions,
            )

    def clear(self) -> None:
        """Drop every registered document, its pools, and the counters."""
        with self._lock:
            dropped = list(self._handles.values())
            self._handles.clear()
            self.adds = 0
            self.reuses = 0
            self.evictions = 0
        for handle in dropped:
            self._retire(handle)
