"""The one key/value block renderer every ``describe()`` shares.

``EngineStats.describe()``, ``ServingStats.describe()`` and
``QueryPlan.explain()`` all print the same shape — a left-aligned label
column padded to 20 characters, a colon, the value — and each used to
hand-roll the padding.  They now all call :func:`render_kv_block`, so
the column width is one constant and the blocks compose (the serving
block appended under the engine block stays aligned).

>>> print(render_kv_block([("plan cache", "3/512 plans"), ("queries", "7")]))
plan cache          : 3/512 plans
queries             : 7
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: Label column width of every stats/explain block in the project.
KV_LABEL_WIDTH = 20


def render_kv_line(label: str, text: str, width: int = KV_LABEL_WIDTH) -> str:
    """One ``label : text`` row, label padded to ``width`` characters."""
    return f"{label:<{width}}: {text}"


def render_kv_block(
    rows: Iterable[Tuple[str, str]], width: int = KV_LABEL_WIDTH
) -> str:
    """Render ``(label, text)`` rows as an aligned block."""
    return "\n".join(render_kv_line(label, text, width) for label, text in rows)
