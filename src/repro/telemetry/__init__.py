"""``repro.telemetry`` — metrics, traces and profiling for every tier.

The observability layer the serving stack reports through (see
``docs/telemetry.md``):

* :mod:`repro.telemetry.metrics` — dependency-free ``Counter`` /
  ``Gauge`` / ``Histogram`` primitives with per-thread shards, grouped
  by a :class:`MetricsRegistry` per component;
* :mod:`repro.telemetry.trace` — per-query :class:`Trace` span trees
  (``parse→plan→eval→materialise`` in the engine, the dispatch stages
  in the pool and server), serialisable across the RPW1 wire;
* :mod:`repro.telemetry.exposition` — Prometheus-text and JSON
  rendering of registry snapshots;
* :mod:`repro.telemetry.slowlog` — the ring-buffer slow-query log;
* :mod:`repro.telemetry.render` — the shared ``describe()`` block
  renderer.
"""

from repro.telemetry.exposition import (
    counter_family,
    gauge_family,
    render_json,
    render_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.render import KV_LABEL_WIDTH, render_kv_block, render_kv_line
from repro.telemetry.slowlog import (
    DEFAULT_SLOW_CAPACITY,
    DEFAULT_SLOW_THRESHOLD,
    SlowQueryLog,
)
from repro.telemetry.trace import Span, Trace, maybe_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOW_CAPACITY",
    "DEFAULT_SLOW_THRESHOLD",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "KV_LABEL_WIDTH",
    "MetricFamily",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "Trace",
    "counter_family",
    "gauge_family",
    "maybe_span",
    "render_json",
    "render_kv_block",
    "render_kv_line",
    "render_prometheus",
]
