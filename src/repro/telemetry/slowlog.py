"""A ring-buffer slow-query log with a configurable threshold.

Every evaluated query's wall time is offered to the log; only those at
or above the threshold are kept, in a bounded ``deque`` (oldest entries
roll off).  Recording is a threshold compare plus one ``deque.append``
— both safe from concurrent evaluation threads without a lock — while
the threshold itself is mutable state and is written under the
telemetry lock.

>>> log = SlowQueryLog(threshold=0.01, capacity=2)
>>> log.record("//fast", "core", 0.001)
False
>>> log.record("//slow", "cvt", 0.5)
True
>>> [entry["query"] for entry in log.entries()]
['//slow']
"""

from __future__ import annotations

import threading
from collections import deque
from time import time
from typing import Deque, Dict, List

#: Default slow-query threshold (seconds).
DEFAULT_SLOW_THRESHOLD = 0.1

#: Default ring-buffer capacity (entries kept).
DEFAULT_SLOW_CAPACITY = 64


class SlowQueryLog:
    """Bounded log of the slowest recent queries (see module docstring)."""

    __slots__ = ("capacity", "_telemetry_lock", "_threshold", "_entries")

    def __init__(
        self,
        threshold: float = DEFAULT_SLOW_THRESHOLD,
        capacity: int = DEFAULT_SLOW_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be at least 1")
        self.capacity = capacity
        self._telemetry_lock = threading.Lock()
        self._threshold = float(threshold)
        self._entries: Deque[Dict[str, object]] = deque(maxlen=capacity)

    @property
    def threshold(self) -> float:
        """The current threshold in seconds."""
        return self._threshold

    def set_threshold(self, seconds: float) -> None:
        """Change the threshold (affects future ``record`` calls only)."""
        with self._telemetry_lock:
            self._threshold = float(seconds)

    def record(
        self, query: str, engine: str, wall_time: float, **extra: object
    ) -> bool:
        """Offer one evaluation; keep it if at/above threshold.

        Returns True when the entry was recorded.
        """
        if wall_time < self._threshold:
            return False
        entry: Dict[str, object] = {
            "query": query,
            "engine": engine,
            "wall_time": wall_time,
            "when": time(),
        }
        entry.update(extra)
        self._entries.append(entry)
        return True

    def entries(self) -> List[Dict[str, object]]:
        """Newest-last snapshot of the retained entries."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
