"""Metrics exposition: Prometheus text format and a JSON mirror.

Both renderers consume the family-dict exchange format of
:meth:`repro.telemetry.metrics.MetricsRegistry.snapshot` — a list of
``{"name", "kind", "help", "samples"}`` dicts — so tiers can merge
registries (and hand-built derived families) by list concatenation
before rendering.

The text renderer emits the classic Prometheus exposition format:
``# HELP`` / ``# TYPE`` headers, ``name{label="value"} value`` samples,
and the ``_bucket``/``_sum``/``_count`` triplet for histograms with
cumulative ``le`` buckets ending at ``+Inf``.

>>> families = [{
...     "name": "repro_demo_total", "kind": "counter", "help": "a demo",
...     "samples": [{"labels": {"tier": "engine"}, "value": 3}],
... }]
>>> print(render_prometheus(families), end="")
# HELP repro_demo_total a demo
# TYPE repro_demo_total counter
repro_demo_total{tier="engine"} 3
"""

from __future__ import annotations

import json
from typing import Iterable, List, Union

Numberish = Union[int, float]


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels(labels: dict, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape(value)}"' for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _number(value: Numberish) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _le(bound: Union[float, str]) -> str:
    return bound if isinstance(bound, str) else _number(bound)


def render_prometheus(families: Iterable[dict]) -> str:
    """Render family dicts as Prometheus exposition text."""
    lines: List[str] = []
    for family in families:
        name, kind = family["name"], family["kind"]
        lines.append(f"# HELP {name} {_escape(family.get('help', ''))}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind == "histogram":
                for bound, cumulative in sample["buckets"]:
                    suffix = _labels(labels, f'le="{_le(bound)}"')
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                lines.append(f"{name}_sum{_labels(labels)} {_number(sample['sum'])}")
                lines.append(f"{name}_count{_labels(labels)} {sample['count']}")
            else:
                lines.append(f"{name}{_labels(labels)} {_number(sample['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(families: Iterable[dict]) -> str:
    """Render family dicts as a stable JSON document."""
    return json.dumps({"families": list(families)}, sort_keys=True)


def gauge_family(name: str, help: str, value: Numberish, **labels: str) -> dict:
    """A hand-built one-sample gauge family (for derived metrics)."""
    return {
        "name": name, "kind": "gauge", "help": help,
        "samples": [{"labels": labels, "value": value}],
    }


def counter_family(name: str, help: str, samples: Iterable[tuple]) -> dict:
    """A hand-built counter family from ``(labels dict, value)`` pairs."""
    return {
        "name": name, "kind": "counter", "help": help,
        "samples": [
            {"labels": dict(labels), "value": value} for labels, value in samples
        ],
    }
