"""Per-query trace spans: where one request's wall time went.

A :class:`Trace` is the timing record of one request inside one tier
(``engine``, ``worker``, ``pool``, ``server``, ``client``): a flat list
of named :class:`Span` rows (offset + duration relative to the trace
start) plus child traces from the tiers below.  Tiers nest by
attachment, not by clock agreement — a worker's trace is serialised
with :meth:`Trace.to_dict`, crosses the wire as the RPW1 ``TRACE``
frame keyed by the request's ``seq``, and is re-attached under the
pool's trace with :meth:`Trace.add_child`, so every offset stays
relative to the tier that measured it (no cross-process clock games).

Traces are single-request, single-threaded objects: recording takes no
locks and costs two ``perf_counter`` calls per span.

Examples
--------
>>> trace = Trace("engine")
>>> with trace.span("plan"):
...     pass
>>> with trace.span("eval", engine="core"):
...     pass
>>> [name for name, _ in trace.named_spans()]
['engine.plan', 'engine.eval']
>>> restored = Trace.from_dict(trace.to_dict())
>>> [name for name, _ in restored.named_spans()]
['engine.plan', 'engine.eval']
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple


class Span:
    """One named stage: ``offset`` seconds after its trace began, for
    ``duration`` seconds, with optional string metadata."""

    __slots__ = ("name", "offset", "duration", "meta")

    def __init__(
        self,
        name: str,
        offset: float,
        duration: float,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.offset = offset
        self.duration = duration
        self.meta = dict(meta or {})

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "offset": self.offset,
                     "duration": self.duration}
        if self.meta:
            out["meta"] = self.meta
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            str(payload.get("name", "")),
            float(payload.get("offset", 0.0)),
            float(payload.get("duration", 0.0)),
            payload.get("meta"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} +{self.offset:.6f}s {self.duration:.6f}s>"


class Trace:
    """The span record of one request within one tier (see module doc)."""

    __slots__ = ("tier", "started", "spans", "children")

    def __init__(self, tier: str) -> None:
        self.tier = tier
        self.started = perf_counter()
        self.spans: List[Span] = []
        self.children: List["Trace"] = []

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[None]:
        """Record the ``with`` body as one span."""
        begun = perf_counter()
        try:
            yield
        finally:
            self.spans.append(
                Span(name, begun - self.started, perf_counter() - begun, meta)
            )

    def add_span(
        self,
        name: str,
        offset: Optional[float] = None,
        duration: float = 0.0,
        **meta: object,
    ) -> Span:
        """Record a span from externally measured timestamps.

        ``offset`` defaults to "now" relative to the trace start — for
        marker spans whose duration was measured elsewhere.
        """
        if offset is None:
            offset = perf_counter() - self.started
        span = Span(name, offset, duration, meta)
        self.spans.append(span)
        return span

    def add_child(self, child: "Trace") -> "Trace":
        self.children.append(child)
        return child

    @property
    def duration(self) -> float:
        """The latest span end across this tier and its children."""
        ends = [span.offset + span.duration for span in self.spans]
        ends.extend(child.duration for child in self.children)
        return max(ends, default=0.0)

    def named_spans(self) -> List[Tuple[str, Span]]:
        """Flatten to ``("tier.name", span)`` rows, children included."""
        rows = [(f"{self.tier}.{span.name}", span) for span in self.spans]
        for child in self.children:
            rows.extend(child.named_spans())
        return rows

    def to_dict(self) -> dict:
        """A JSON-able form (the RPW1 ``TRACE`` frame payload)."""
        return {
            "tier": self.tier,
            "spans": [span.to_dict() for span in self.spans],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        trace = cls(str(payload.get("tier", "")))
        trace.spans = [Span.from_dict(row) for row in payload.get("spans", [])]
        trace.children = [
            cls.from_dict(row) for row in payload.get("children", [])
        ]
        return trace

    def describe(self, indent: int = 0) -> str:
        """Render the per-stage breakdown the CLI's ``--profile`` prints."""
        pad = "  " * indent
        lines = [f"{pad}{self.tier} [{self.duration * 1e3:.2f} ms]"]
        for span in self.spans:
            meta = "".join(
                f" {key}={value}" for key, value in sorted(span.meta.items())
            )
            lines.append(
                f"{pad}  {span.name:<12} {span.duration * 1e3:9.3f} ms "
                f"@ +{span.offset * 1e3:.3f} ms{meta}"
            )
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Trace {self.tier} spans={len(self.spans)} "
            f"children={len(self.children)}>"
        )


def maybe_span(trace: Optional[Trace], name: str, **meta: object):
    """``trace.span(name)`` when tracing, a free no-op context otherwise.

    This is what keeps tracing strictly opt-in on the hot path: callers
    write one ``with maybe_span(trace, "eval"):`` and pay nothing when
    ``trace`` is None.
    """
    if trace is None:
        return nullcontext()
    return trace.span(name, **meta)
