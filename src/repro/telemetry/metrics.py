"""Dependency-free metrics primitives: counters, gauges, histograms.

The design target is the engine's hot path: an increment must not
contend with other threads.  :class:`Counter` and :class:`Histogram`
therefore keep **per-thread shards** — each thread owns a private
accumulator cell created once (under the registry lock) and bumped
thereafter without any synchronisation; :meth:`Counter.value` and
:meth:`Histogram.merged` sum the shards on demand.  Shards of finished
threads are retained on purpose, so counts never vanish when a worker
thread exits.  The price is that a snapshot taken *while* another
thread increments may miss that last increment — monotone counters make
this harmless, and the merged totals are exact once writers quiesce
(the Hypothesis suite pins merged-shards ≡ single-threaded counts).

:class:`Gauge` is the one primitive with a true read-modify-write
(``set``/``inc``/``dec`` from any thread), so it is guarded by the
``_telemetry_lock`` the lock-discipline checker knows about — the
innermost lock of the project hierarchy.

A :class:`MetricsRegistry` names the metrics of one component (the
engine, the pool, the server each own one; tests get isolation for
free).  Families are get-or-create by name and may carry label names;
``family.labels(engine="core")`` returns the labelled child, created on
first use.

Examples
--------
>>> registry = MetricsRegistry()
>>> queries = registry.counter("repro_engine_queries_total", "queries served")
>>> queries.inc(); queries.inc(2)
>>> queries.value()
3
>>> dispatch = registry.counter(
...     "repro_engine_dispatch_total", "per-engine answers", labels=("engine",)
... )
>>> dispatch.labels(engine="core").inc()
>>> latency = registry.histogram("repro_engine_query_seconds", "query wall time")
>>> latency.observe(0.004)
>>> latency.merged().count
1
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple, Union

Number = Union[int, float]

#: Fixed log-scale latency buckets (seconds): 100 µs to 5 s in 1-2.5-5
#: decades, the range of a Python XPath evaluation.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class HistogramSnapshot(NamedTuple):
    """The merged view of one histogram child: per-bucket counts + totals."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]  # one slot per bucket, plus the +Inf overflow slot
    total: float
    count: int

    def cumulative(self) -> List[Tuple[Union[float, str], int]]:
        """``[(le, cumulative count), ...]`` with the ``"+Inf"`` row last."""
        rows: List[Tuple[Union[float, str], int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            rows.append((bound, running))
        rows.append(("+Inf", self.count))
        return rows


class Counter:
    """A monotone counter with per-thread shards (see the module docstring)."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "_telemetry_lock", "_shards")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._telemetry_lock = lock if lock is not None else threading.Lock()
        self._shards: Dict[int, List[Number]] = {}

    def _shard(self) -> List[Number]:
        ident = threading.get_ident()
        shard = self._shards.get(ident)
        if shard is None:
            with self._telemetry_lock:
                shard = self._shards.setdefault(ident, [0])
        return shard

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (no lock taken on the per-thread fast path)."""
        self._shard()[0] += amount

    def value(self) -> Number:
        """The merged total across every shard ever created."""
        return sum(shard[0] for shard in list(self._shards.values()))


class Gauge:
    """A settable value; every mutation holds the telemetry lock."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_telemetry_lock", "_value")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._telemetry_lock = lock if lock is not None else threading.Lock()
        self._value: Number = 0

    def set(self, value: Number) -> None:
        with self._telemetry_lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._telemetry_lock:
            self._value = self._value + amount

    def dec(self, amount: Number = 1) -> None:
        self.inc(-amount)

    def value(self) -> Number:
        return self._value


class Histogram:
    """Fixed-bucket latency histogram with per-thread shards.

    A shard is ``[counts, total, count]`` where ``counts`` has one slot
    per bucket plus the ``+Inf`` overflow slot; ``observe`` is two list
    writes and one ``bisect`` — no lock after the shard exists.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "labels", "buckets", "_telemetry_lock", "_shards")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError("histogram buckets must be non-empty and sorted")
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._telemetry_lock = lock if lock is not None else threading.Lock()
        self._shards: Dict[int, list] = {}

    def _shard(self) -> list:
        ident = threading.get_ident()
        shard = self._shards.get(ident)
        if shard is None:
            with self._telemetry_lock:
                shard = self._shards.setdefault(
                    ident, [[0] * (len(self.buckets) + 1), 0.0, 0]
                )
        return shard

    def observe(self, value: float) -> None:
        """Record one observation into this thread's shard."""
        shard = self._shard()
        shard[0][bisect_left(self.buckets, value)] += 1
        shard[1] += value
        shard[2] += 1

    def merged(self) -> HistogramSnapshot:
        """Sum every per-thread shard into one snapshot."""
        counts = [0] * (len(self.buckets) + 1)
        total = 0.0
        count = 0
        for shard in list(self._shards.values()):
            for i, bucket_count in enumerate(shard[0]):
                counts[i] += bucket_count
            total += shard[1]
            count += shard[2]
        return HistogramSnapshot(self.buckets, tuple(counts), total, count)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with labelled children, get-or-create per label set."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets",
                 "_telemetry_lock", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._telemetry_lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """Return the child for ``labels`` (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._telemetry_lock:
                child = self._children.get(key)
                if child is None:
                    values = dict(zip(self.label_names, key))
                    if self.kind == "histogram":
                        child = Histogram(
                            self.name, self.help, values,
                            buckets=self.buckets, lock=self._telemetry_lock,
                        )
                    else:
                        child = _KINDS[self.kind](
                            self.name, self.help, values,
                            lock=self._telemetry_lock,
                        )
                    self._children[key] = child
        return child

    def children(self) -> list:
        """Every child created so far, sorted by label values."""
        return [child for _, child in sorted(self._children.items())]


class MetricsRegistry:
    """The named metrics of one component (engine, pool, server, ...).

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, asking with a different
    kind or label set raises.  With ``labels=()`` (the default) the call
    returns the single unlabelled child directly; with label names it
    returns the :class:`MetricFamily`, whose ``labels(...)`` method
    hands out children.
    """

    def __init__(self) -> None:
        self._telemetry_lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._telemetry_lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, kind, help, label_names,
                        self._telemetry_lock, buckets,
                    )
                    self._families[name] = family
        if family.kind != kind or family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.label_names}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Tuple[str, ...] = ()):
        family = self._family(name, "counter", help, tuple(labels))
        return family if labels else family.labels()

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = ()):
        family = self._family(name, "gauge", help, tuple(labels))
        return family if labels else family.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        family = self._family(name, "histogram", help, tuple(labels), tuple(buckets))
        return family if labels else family.labels()

    def families(self) -> List[MetricFamily]:
        return [family for _, family in sorted(self._families.items())]

    def snapshot(self) -> List[dict]:
        """A JSON-able view: one dict per family, exposition-ready.

        This is the exchange format of :mod:`repro.telemetry.exposition`
        — tiers that derive metrics from remote counters (the server
        folding in per-worker engine stats) build the same dicts by hand
        and concatenate.
        """
        out: List[dict] = []
        for family in self.families():
            samples = []
            for child in family.children():
                if family.kind == "histogram":
                    merged = child.merged()
                    samples.append({
                        "labels": dict(child.labels),
                        "buckets": [
                            [bound, cum] for bound, cum in merged.cumulative()
                        ],
                        "sum": merged.total,
                        "count": merged.count,
                    })
                else:
                    samples.append({
                        "labels": dict(child.labels),
                        "value": child.value(),
                    })
            out.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            })
        return out
