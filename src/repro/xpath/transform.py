"""AST transformations used by the fragment results of the paper.

* :func:`push_negations` — the de Morgan rewriting used in the proof of
  Theorem 5.9: after the transformation, ``not`` only occurs immediately in
  front of location paths (comparisons have their operator flipped
  instead).
* :func:`merge_iterated_predicates` — Remark 5.2: when ``position()`` and
  ``last()`` are not used, ``χ::t[e1]…[ek]`` is equivalent to
  ``χ::t[e1 and … and ek]``, which moves a query from "pWF extended by
  iterated predicates" back into pWF.
"""

from __future__ import annotations

from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    PathExpr,
    Step,
    XPathExpr,
    not_,
)

_FLIPPED_COMPARISON = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def push_negations(expr: XPathExpr) -> XPathExpr:
    """Push every ``not(…)`` down to comparisons and location paths.

    The result is logically equivalent to ``expr`` for boolean-valued
    sub-expressions: ``not(a and b)`` becomes ``not(a) or not(b)``,
    ``not(a or b)`` becomes ``not(a) and not(b)``, double negations cancel,
    and ``not(x RelOp y)`` becomes ``x FlippedRelOp y`` when both operands
    are non-node-set expressions (the flip is only valid when no
    existential node-set semantics are involved).
    """
    return _push(expr, negated=False)


def _push(expr: XPathExpr, negated: bool) -> XPathExpr:
    if isinstance(expr, FunctionCall) and expr.name == "not" and len(expr.args) == 1:
        return _push(expr.args[0], not negated)
    if isinstance(expr, BinaryOp) and expr.op in ("and", "or"):
        op = expr.op
        if negated:
            op = "or" if op == "and" else "and"
        return BinaryOp(op, _push(expr.left, negated), _push(expr.right, negated))
    if isinstance(expr, BinaryOp) and expr.op in _FLIPPED_COMPARISON and negated:
        if _is_scalar(expr.left) and _is_scalar(expr.right):
            return BinaryOp(_FLIPPED_COMPARISON[expr.op], _rebuild(expr.left), _rebuild(expr.right))
        return not_(_rebuild(expr))
    rebuilt = _rebuild(expr)
    return not_(rebuilt) if negated else rebuilt


def _rebuild(expr: XPathExpr) -> XPathExpr:
    """Rebuild ``expr`` with negations pushed inside nested predicates."""
    if isinstance(expr, Step):
        return Step(
            expr.axis,
            expr.node_test,
            tuple(push_negations(pred) for pred in expr.predicates),
        )
    if isinstance(expr, LocationPath):
        return LocationPath(
            expr.absolute, tuple(_rebuild(step) for step in expr.steps)
        )
    if isinstance(expr, PathExpr):
        return PathExpr(_rebuild(expr.start), _rebuild(expr.tail))
    if isinstance(expr, FilterExpr):
        return FilterExpr(
            _rebuild(expr.primary),
            tuple(push_negations(pred) for pred in expr.predicates),
        )
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rebuild(expr.left), _rebuild(expr.right))
    if isinstance(expr, FunctionCall):
        if expr.name == "not" and len(expr.args) == 1:
            return _push(expr.args[0], negated=True)
        return FunctionCall(expr.name, tuple(_rebuild(arg) for arg in expr.args))
    if isinstance(expr, Negate):
        return Negate(_rebuild(expr.operand))
    return expr


def _is_scalar(expr: XPathExpr) -> bool:
    """True if ``expr`` is certainly not node-set-valued (safe to flip comparisons)."""
    from repro.xpath.functions import NODESET, OBJECT, static_type

    return static_type(expr) not in (NODESET, OBJECT)


def merge_iterated_predicates(expr: XPathExpr) -> XPathExpr:
    """Rewrite ``χ::t[e1]…[ek]`` into ``χ::t[e1 and … and ek]`` where sound.

    The rewrite is applied only to steps whose predicates contain neither
    ``position()`` nor ``last()`` at their own context level (Remark 5.2's
    proviso); other steps are left untouched.
    """
    if isinstance(expr, Step):
        predicates = tuple(merge_iterated_predicates(p) for p in expr.predicates)
        if len(predicates) >= 2 and not any(_uses_position(p) for p in predicates):
            merged = predicates[0]
            for predicate in predicates[1:]:
                merged = BinaryOp("and", merged, predicate)
            predicates = (merged,)
        return Step(expr.axis, expr.node_test, predicates)
    if isinstance(expr, LocationPath):
        return LocationPath(
            expr.absolute, tuple(merge_iterated_predicates(s) for s in expr.steps)
        )
    if isinstance(expr, PathExpr):
        return PathExpr(
            merge_iterated_predicates(expr.start), merge_iterated_predicates(expr.tail)
        )
    if isinstance(expr, FilterExpr):
        return FilterExpr(
            merge_iterated_predicates(expr.primary),
            tuple(merge_iterated_predicates(p) for p in expr.predicates),
        )
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            merge_iterated_predicates(expr.left),
            merge_iterated_predicates(expr.right),
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, tuple(merge_iterated_predicates(a) for a in expr.args)
        )
    if isinstance(expr, Negate):
        return Negate(merge_iterated_predicates(expr.operand))
    return expr


def _uses_position(expr: XPathExpr) -> bool:
    """True if ``expr`` uses position()/last() at its own context level."""
    from repro.xpath.analysis import is_position_sensitive

    return is_position_sensitive(expr)
