"""Recursive-descent parser for XPath 1.0.

The parser follows the grammar of the W3C recommendation; abbreviated
syntax (``//``, ``.``, ``..``, ``@``, implicit ``child::`` axes) is expanded
during parsing so that the AST only ever contains fully spelled-out steps.
This keeps the evaluators and the fragment classifiers free of
abbreviation-handling logic, exactly as the paper's grammar
(Definition 2.5) assumes.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    NodeTest,
    Number,
    PathExpr,
    Step,
    VariableReference,
    XPathExpr,
)
from repro.xpath.lexer import (
    KIND_EOF,
    KIND_LITERAL,
    KIND_NAME,
    KIND_NUMBER,
    KIND_OPERATOR,
    KIND_SYMBOL,
    KIND_VARIABLE,
    Token,
    tokenize,
)

#: Axis names of XPath 1.0 accepted by the parser (namespace axis excluded).
AXIS_NAMES = frozenset(
    {
        "self",
        "child",
        "parent",
        "descendant",
        "descendant-or-self",
        "ancestor",
        "ancestor-or-self",
        "following",
        "following-sibling",
        "preceding",
        "preceding-sibling",
        "attribute",
    }
)

#: Node-type test names.
NODE_TYPE_NAMES = frozenset({"node", "text", "comment", "processing-instruction"})

_DESCENDANT_OR_SELF_STEP = Step("descendant-or-self", NodeTest("type", "node()"), ())


def parse(expression: str) -> XPathExpr:
    """Parse an XPath 1.0 expression string into an AST."""
    return _Parser(expression).parse()


def parse_location_path(expression: str) -> LocationPath:
    """Parse ``expression`` and require the result to be a location path."""
    expr = parse(expression)
    if not isinstance(expr, LocationPath):
        raise XPathSyntaxError(
            f"expected a location path, got {type(expr).__name__}: {expression!r}"
        )
    return expr


class _Parser:
    """Token-stream cursor with one method per grammar production."""

    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != KIND_EOF:
            self.index += 1
        return token

    def accept_symbol(self, *values: str) -> Token | None:
        if self.current.kind == KIND_SYMBOL and self.current.value in values:
            return self.advance()
        return None

    def accept_operator(self, *values: str) -> Token | None:
        if self.current.kind == KIND_OPERATOR and self.current.value in values:
            return self.advance()
        return None

    def expect_symbol(self, value: str) -> Token:
        token = self.accept_symbol(value)
        if token is None:
            raise XPathSyntaxError(
                f"expected {value!r}, found {self.current.value!r}", self.current.position
            )
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.current.position)

    # -- entry point -----------------------------------------------------------

    def parse(self) -> XPathExpr:
        expr = self.parse_or_expr()
        if self.current.kind != KIND_EOF:
            raise self.error(f"unexpected trailing token {self.current.value!r}")
        return expr

    # -- expression grammar ------------------------------------------------------

    def parse_or_expr(self) -> XPathExpr:
        expr = self.parse_and_expr()
        while self.accept_operator("or"):
            expr = BinaryOp("or", expr, self.parse_and_expr())
        return expr

    def parse_and_expr(self) -> XPathExpr:
        expr = self.parse_equality_expr()
        while self.accept_operator("and"):
            expr = BinaryOp("and", expr, self.parse_equality_expr())
        return expr

    def parse_equality_expr(self) -> XPathExpr:
        expr = self.parse_relational_expr()
        while True:
            token = self.accept_symbol("=", "!=")
            if token is None:
                return expr
            expr = BinaryOp(token.value, expr, self.parse_relational_expr())

    def parse_relational_expr(self) -> XPathExpr:
        expr = self.parse_additive_expr()
        while True:
            token = self.accept_symbol("<", "<=", ">", ">=")
            if token is None:
                return expr
            expr = BinaryOp(token.value, expr, self.parse_additive_expr())

    def parse_additive_expr(self) -> XPathExpr:
        expr = self.parse_multiplicative_expr()
        while True:
            token = self.accept_symbol("+", "-")
            if token is None:
                return expr
            expr = BinaryOp(token.value, expr, self.parse_multiplicative_expr())

    def parse_multiplicative_expr(self) -> XPathExpr:
        expr = self.parse_unary_expr()
        while True:
            token = self.accept_operator("*", "div", "mod")
            if token is None:
                return expr
            expr = BinaryOp(token.value, expr, self.parse_unary_expr())

    def parse_unary_expr(self) -> XPathExpr:
        if self.accept_symbol("-"):
            return Negate(self.parse_unary_expr())
        return self.parse_union_expr()

    def parse_union_expr(self) -> XPathExpr:
        expr = self.parse_path_expr()
        while self.accept_symbol("|"):
            expr = BinaryOp("|", expr, self.parse_path_expr())
        return expr

    # -- paths ------------------------------------------------------------------

    def parse_path_expr(self) -> XPathExpr:
        if self._starts_filter_expr():
            filter_expr = self.parse_filter_expr()
            separator = self.accept_symbol("/", "//")
            if separator is None:
                return filter_expr
            steps: list[Step] = []
            if separator.value == "//":
                steps.append(_DESCENDANT_OR_SELF_STEP)
            steps.extend(self._parse_relative_steps())
            return PathExpr(filter_expr, LocationPath(False, tuple(steps)))
        return self.parse_location_path()

    def _starts_filter_expr(self) -> bool:
        token = self.current
        if token.kind in (KIND_VARIABLE, KIND_LITERAL, KIND_NUMBER):
            return True
        if token.kind == KIND_SYMBOL and token.value == "(":
            return True
        if token.kind == KIND_NAME and self.peek().kind == KIND_SYMBOL and self.peek().value == "(":
            return token.value not in NODE_TYPE_NAMES
        return False

    def parse_filter_expr(self) -> XPathExpr:
        expr = self.parse_primary_expr()
        predicates: list[XPathExpr] = []
        while self.accept_symbol("["):
            predicates.append(self.parse_or_expr())
            self.expect_symbol("]")
        if predicates:
            return FilterExpr(expr, tuple(predicates))
        return expr

    def parse_primary_expr(self) -> XPathExpr:
        token = self.current
        if token.kind == KIND_VARIABLE:
            self.advance()
            return VariableReference(token.value)
        if token.kind == KIND_LITERAL:
            self.advance()
            return Literal(token.value)
        if token.kind == KIND_NUMBER:
            self.advance()
            return Number(float(token.value))
        if token.kind == KIND_SYMBOL and token.value == "(":
            self.advance()
            expr = self.parse_or_expr()
            self.expect_symbol(")")
            return expr
        if token.kind == KIND_NAME:
            return self.parse_function_call()
        raise self.error(f"unexpected token {token.value!r}")

    def parse_function_call(self) -> FunctionCall:
        name_token = self.advance()
        self.expect_symbol("(")
        args: list[XPathExpr] = []
        if not (self.current.kind == KIND_SYMBOL and self.current.value == ")"):
            args.append(self.parse_or_expr())
            while self.accept_symbol(","):
                args.append(self.parse_or_expr())
        self.expect_symbol(")")
        return FunctionCall(name_token.value, tuple(args))

    def parse_location_path(self) -> LocationPath:
        if self.accept_symbol("//"):
            steps = [_DESCENDANT_OR_SELF_STEP]
            steps.extend(self._parse_relative_steps())
            return LocationPath(True, tuple(steps))
        if self.accept_symbol("/"):
            if self._starts_step():
                return LocationPath(True, tuple(self._parse_relative_steps()))
            return LocationPath(True, ())
        return LocationPath(False, tuple(self._parse_relative_steps()))

    def _parse_relative_steps(self) -> list[Step]:
        steps = [self.parse_step()]
        while True:
            separator = self.accept_symbol("/", "//")
            if separator is None:
                return steps
            if separator.value == "//":
                steps.append(_DESCENDANT_OR_SELF_STEP)
            steps.append(self.parse_step())

    def _starts_step(self) -> bool:
        token = self.current
        if token.kind == KIND_NAME:
            return True
        if token.kind == KIND_SYMBOL and token.value in (".", "..", "@", "*"):
            return True
        return False

    def parse_step(self) -> Step:
        if self.accept_symbol("."):
            return Step("self", NodeTest("type", "node()"), ())
        if self.accept_symbol(".."):
            return Step("parent", NodeTest("type", "node()"), ())

        axis = "child"
        if self.accept_symbol("@"):
            axis = "attribute"
        elif (
            self.current.kind == KIND_NAME
            and self.current.value in AXIS_NAMES
            and self.peek().kind == KIND_SYMBOL
            and self.peek().value == "::"
        ):
            axis = self.advance().value
            self.advance()  # '::'

        node_test = self.parse_node_test()
        predicates: list[XPathExpr] = []
        while self.accept_symbol("["):
            predicates.append(self.parse_or_expr())
            self.expect_symbol("]")
        return Step(axis, node_test, tuple(predicates))

    def parse_node_test(self) -> NodeTest:
        token = self.current
        if token.kind == KIND_SYMBOL and token.value == "*":
            self.advance()
            return NodeTest("name", "*")
        if token.kind != KIND_NAME:
            raise self.error(f"expected a node test, found {token.value!r}")
        name = self.advance().value
        if name in NODE_TYPE_NAMES and self.current.kind == KIND_SYMBOL and self.current.value == "(":
            self.advance()
            argument = ""
            if self.current.kind == KIND_LITERAL:
                argument = f"'{self.advance().value}'"
            self.expect_symbol(")")
            if argument and name != "processing-instruction":
                raise self.error(f"node test {name}() does not take an argument")
            return NodeTest("type", f"{name}({argument})")
        return NodeTest("name", name)
