"""Tokeniser for XPath 1.0 expressions.

The lexer follows the W3C XPath 1.0 lexical structure, including the two
disambiguation rules of section 3.7 of the recommendation:

* ``*`` is the multiplication operator (rather than a wildcard name test)
  when the preceding token implies that an operator is expected;
* an NCName is an operator name (``and``, ``or``, ``div``, ``mod``) in the
  same situation, a function name when followed by ``(``, and an axis name
  when followed by ``::``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import XPathSyntaxError


@dataclass(frozen=True)
class Token:
    """A single XPath token.

    Attributes
    ----------
    kind:
        One of the ``KIND_*`` constants below.
    value:
        The token text (with quotes stripped for literals).
    position:
        Character offset of the token in the input expression.
    """

    kind: str
    value: str
    position: int


KIND_NAME = "name"  # NCName / QName (node test, axis, function, operator name)
KIND_NUMBER = "number"
KIND_LITERAL = "literal"
KIND_VARIABLE = "variable"
KIND_SYMBOL = "symbol"
KIND_OPERATOR = "operator"  # resolved operator-name or symbolic operator
KIND_EOF = "eof"

#: Symbols, longest first so that the scanner is greedy.
_SYMBOLS = (
    "..",
    "//",
    "::",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    ".",
    "@",
    ",",
    "/",
    "|",
    "+",
    "-",
    "=",
    "<",
    ">",
    "*",
    "$",
)

#: NCNames that act as binary operators when in operator position.
OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})

_NUMBER_RE = re.compile(r"(\d+(\.\d*)?)|(\.\d+)")
_NAME_RE = re.compile(r"[A-Za-z_][-A-Za-z0-9_.]*(:[A-Za-z_][-A-Za-z0-9_.]*)?")
_WHITESPACE = " \t\r\n"

#: Symbol-token values after which ``*`` and the operator names must NOT be
#: read as operators (XPath 1.0, section 3.7).  A ``*`` name-test token and
#: closing brackets are intentionally absent: after them an operator is
#: expected.
_NON_OPERATOR_PRECEDERS = {
    "@",
    "::",
    "(",
    "[",
    ",",
    "/",
    "//",
    "|",
    "+",
    "-",
    "=",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "$",
}


def tokenize(expression: str) -> list[Token]:
    """Tokenise ``expression`` and return the token list (terminated by an EOF token)."""
    tokens: list[Token] = []
    position = 0
    length = len(expression)

    def previous_token() -> Token | None:
        return tokens[-1] if tokens else None

    while position < length:
        char = expression[position]
        if char in _WHITESPACE:
            position += 1
            continue

        if char in ("'", '"'):
            end = expression.find(char, position + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", position)
            tokens.append(Token(KIND_LITERAL, expression[position + 1 : end], position))
            position = end + 1
            continue

        number_match = _NUMBER_RE.match(expression, position)
        if number_match and (char.isdigit() or (char == "." and number_match.group(3))):
            tokens.append(Token(KIND_NUMBER, number_match.group(0), position))
            position = number_match.end()
            continue

        if char == "$":
            name_match = _NAME_RE.match(expression, position + 1)
            if not name_match:
                raise XPathSyntaxError("expected variable name after '$'", position)
            tokens.append(Token(KIND_VARIABLE, name_match.group(0), position))
            position = name_match.end()
            continue

        symbol = _match_symbol(expression, position)
        if symbol is not None:
            prev = previous_token()
            if symbol == "*" and _in_operator_position(prev):
                tokens.append(Token(KIND_OPERATOR, "*", position))
            else:
                tokens.append(Token(KIND_SYMBOL, symbol, position))
            position += len(symbol)
            continue

        name_match = _NAME_RE.match(expression, position)
        if name_match:
            name = name_match.group(0)
            prev = previous_token()
            if name in OPERATOR_NAMES and _in_operator_position(prev):
                tokens.append(Token(KIND_OPERATOR, name, position))
            else:
                tokens.append(Token(KIND_NAME, name, position))
            position = name_match.end()
            continue

        raise XPathSyntaxError(f"unexpected character {char!r}", position)

    tokens.append(Token(KIND_EOF, "", length))
    return tokens


def _match_symbol(expression: str, position: int) -> str | None:
    for symbol in _SYMBOLS:
        if expression.startswith(symbol, position):
            return symbol
    return None


def _in_operator_position(prev: Token | None) -> bool:
    """Return True if the next ``*`` / name must be interpreted as an operator."""
    if prev is None:
        return False
    if prev.kind in (KIND_NUMBER, KIND_LITERAL, KIND_VARIABLE):
        return True
    if prev.kind == KIND_OPERATOR:
        return False
    if prev.kind == KIND_NAME:
        return True
    # symbol tokens
    return prev.value not in _NON_OPERATOR_PRECEDERS
