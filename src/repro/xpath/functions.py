"""The XPath 1.0 core function library: signatures and static typing.

This module holds the *signatures* (name, arity, result type) of the core
function library and a static result-type analysis for expressions.  The
actual run-time implementations live with the evaluators in
:mod:`repro.evaluation.values`; keeping the signatures separate lets the
fragment classifiers (Definitions 5.1 and 6.1 forbid particular functions
and particular result types) reason about queries without evaluating them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XPathTypeError
from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    Number,
    PathExpr,
    Step,
    VariableReference,
    XPathExpr,
)

# Result type names.
NODESET = "node-set"
NUMBER = "number"
STRING = "string"
BOOLEAN = "boolean"
OBJECT = "object"  # statically unknown (variables)


@dataclass(frozen=True)
class FunctionSignature:
    """Signature of a core-library function."""

    name: str
    min_args: int
    max_args: int | None  # None means unbounded (concat)
    result_type: str
    arg_types: tuple[str, ...] = ()

    def accepts_arity(self, count: int) -> bool:
        """Return True if a call with ``count`` arguments is well-formed."""
        if count < self.min_args:
            return False
        return self.max_args is None or count <= self.max_args


_SIGNATURES = [
    FunctionSignature("last", 0, 0, NUMBER),
    FunctionSignature("position", 0, 0, NUMBER),
    FunctionSignature("count", 1, 1, NUMBER, (NODESET,)),
    FunctionSignature("id", 1, 1, NODESET, (OBJECT,)),
    FunctionSignature("local-name", 0, 1, STRING, (NODESET,)),
    FunctionSignature("namespace-uri", 0, 1, STRING, (NODESET,)),
    FunctionSignature("name", 0, 1, STRING, (NODESET,)),
    FunctionSignature("string", 0, 1, STRING, (OBJECT,)),
    FunctionSignature("concat", 2, None, STRING),
    FunctionSignature("starts-with", 2, 2, BOOLEAN, (STRING, STRING)),
    FunctionSignature("contains", 2, 2, BOOLEAN, (STRING, STRING)),
    FunctionSignature("substring-before", 2, 2, STRING, (STRING, STRING)),
    FunctionSignature("substring-after", 2, 2, STRING, (STRING, STRING)),
    FunctionSignature("substring", 2, 3, STRING, (STRING, NUMBER, NUMBER)),
    FunctionSignature("string-length", 0, 1, NUMBER, (STRING,)),
    FunctionSignature("normalize-space", 0, 1, STRING, (STRING,)),
    FunctionSignature("translate", 3, 3, STRING, (STRING, STRING, STRING)),
    FunctionSignature("boolean", 1, 1, BOOLEAN, (OBJECT,)),
    FunctionSignature("not", 1, 1, BOOLEAN, (BOOLEAN,)),
    FunctionSignature("true", 0, 0, BOOLEAN),
    FunctionSignature("false", 0, 0, BOOLEAN),
    FunctionSignature("lang", 1, 1, BOOLEAN, (STRING,)),
    FunctionSignature("number", 0, 1, NUMBER, (OBJECT,)),
    FunctionSignature("sum", 1, 1, NUMBER, (NODESET,)),
    FunctionSignature("floor", 1, 1, NUMBER, (NUMBER,)),
    FunctionSignature("ceiling", 1, 1, NUMBER, (NUMBER,)),
    FunctionSignature("round", 1, 1, NUMBER, (NUMBER,)),
]

#: Name → signature map of the core function library.
CORE_FUNCTIONS: dict[str, FunctionSignature] = {sig.name: sig for sig in _SIGNATURES}

#: Functions banned by pXPath (Definition 6.1, restriction 2).
PXPATH_FORBIDDEN_FUNCTIONS = frozenset(
    {
        "not",
        "count",
        "sum",
        "string",
        "number",
        "local-name",
        "namespace-uri",
        "name",
        "string-length",
        "normalize-space",
    }
)

#: String-manipulation functions excluded from the Wadler fragment.
STRING_FUNCTIONS = frozenset(
    {
        "string",
        "concat",
        "starts-with",
        "contains",
        "substring-before",
        "substring-after",
        "substring",
        "string-length",
        "normalize-space",
        "translate",
        "local-name",
        "namespace-uri",
        "name",
        "lang",
        "id",
    }
)


def signature(name: str) -> FunctionSignature:
    """Return the signature of core function ``name``.

    Raises :class:`XPathTypeError` for unknown functions — XPath 1.0 has no
    user-defined functions, so an unknown name is a static error.
    """
    try:
        return CORE_FUNCTIONS[name]
    except KeyError:
        raise XPathTypeError(f"unknown function {name}()") from None


def validate_call(call: FunctionCall) -> FunctionSignature:
    """Check arity of ``call`` against the core library and return its signature."""
    sig = signature(call.name)
    if not sig.accepts_arity(len(call.args)):
        raise XPathTypeError(
            f"function {call.name}() called with {len(call.args)} argument(s); "
            f"expected between {sig.min_args} and {sig.max_args if sig.max_args is not None else 'any'}"
        )
    return sig


def static_type(expr: XPathExpr) -> str:
    """Return the static result type of ``expr``.

    The analysis is exact for every expression XPath 1.0 can form except
    variable references, which are reported as :data:`OBJECT`.
    """
    if isinstance(expr, (LocationPath, PathExpr, Step)):
        return NODESET
    if isinstance(expr, FilterExpr):
        return static_type(expr.primary)
    if isinstance(expr, BinaryOp):
        if expr.op in ("and", "or"):
            return BOOLEAN
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return BOOLEAN
        if expr.op == "|":
            return NODESET
        return NUMBER
    if isinstance(expr, Negate):
        return NUMBER
    if isinstance(expr, FunctionCall):
        return signature(expr.name).result_type
    if isinstance(expr, Literal):
        return STRING
    if isinstance(expr, Number):
        return NUMBER
    if isinstance(expr, VariableReference):
        return OBJECT
    raise XPathTypeError(f"cannot type {type(expr).__name__}")
