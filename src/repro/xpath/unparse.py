"""Serialise XPath ASTs back to XPath 1.0 syntax.

``parse(unparse(ast)) == ast`` holds for every AST the parser produces
(the property is enforced by a hypothesis test), which lets the hardness
reductions build queries as ASTs and still hand textual XPath to external
engines such as :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

from repro.errors import XPathTypeError
from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    Number,
    PathExpr,
    Step,
    VariableReference,
    XPathExpr,
)

#: Binding strength of each binary operator; higher binds tighter.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "div": 6,
    "mod": 6,
    "|": 8,
}

_UNARY_PRECEDENCE = 7
_LEAF_PRECEDENCE = 10


def unparse(expr: XPathExpr) -> str:
    """Return XPath 1.0 syntax for ``expr``."""
    text, _ = _unparse(expr)
    return text


def _unparse(expr: XPathExpr) -> tuple[str, int]:
    """Return ``(text, precedence)`` for ``expr``."""
    if isinstance(expr, LocationPath):
        return _unparse_location_path(expr), _LEAF_PRECEDENCE
    if isinstance(expr, Step):
        return _unparse_step(expr), _LEAF_PRECEDENCE
    if isinstance(expr, PathExpr):
        start_text = _parenthesise(expr.start, _LEAF_PRECEDENCE)
        tail_text = _unparse_location_path(expr.tail)
        return f"{start_text}/{tail_text}", _LEAF_PRECEDENCE
    if isinstance(expr, FilterExpr):
        primary = _parenthesise(expr.primary, _LEAF_PRECEDENCE)
        if isinstance(expr.primary, (LocationPath, PathExpr)):
            # Without parentheses the predicates would re-attach to the last
            # step of the path, which has different (per-sibling) semantics.
            primary = f"({primary})"
        predicates = "".join(f"[{unparse(pred)}]" for pred in expr.predicates)
        return f"{primary}{predicates}", _LEAF_PRECEDENCE
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        left = _parenthesise(expr.left, precedence)
        right = _parenthesise(expr.right, precedence + 1)
        separator = f" {expr.op} " if expr.op.isalpha() or expr.op in ("and", "or") else f" {expr.op} "
        return f"{left}{separator}{right}", precedence
    if isinstance(expr, Negate):
        operand = _parenthesise(expr.operand, _UNARY_PRECEDENCE)
        return f"-{operand}", _UNARY_PRECEDENCE
    if isinstance(expr, FunctionCall):
        args = ", ".join(unparse(arg) for arg in expr.args)
        return f"{expr.name}({args})", _LEAF_PRECEDENCE
    if isinstance(expr, Literal):
        return _quote_literal(expr.value), _LEAF_PRECEDENCE
    if isinstance(expr, Number):
        return _format_number(expr.value), _LEAF_PRECEDENCE
    if isinstance(expr, VariableReference):
        return f"${expr.name}", _LEAF_PRECEDENCE
    raise XPathTypeError(f"cannot unparse {type(expr).__name__}")


def _parenthesise(expr: XPathExpr, minimum_precedence: int) -> str:
    text, precedence = _unparse(expr)
    if precedence < minimum_precedence:
        return f"({text})"
    return text


def _unparse_location_path(location_path: LocationPath) -> str:
    steps_text = "/".join(_unparse_step(step) for step in location_path.steps)
    if location_path.absolute:
        return "/" + steps_text
    return steps_text


def _unparse_step(step: Step) -> str:
    predicates = "".join(f"[{unparse(pred)}]" for pred in step.predicates)
    return f"{step.axis}::{step.node_test.text()}{predicates}"


def _quote_literal(value: str) -> str:
    if '"' not in value:
        return f'"{value}"'
    if "'" not in value:
        return f"'{value}'"
    raise XPathTypeError(
        "XPath 1.0 cannot represent a literal containing both quote characters"
    )


def _format_number(value: float) -> str:
    if value != value:  # NaN
        return "number('nan')"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)
