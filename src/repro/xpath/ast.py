"""Typed abstract syntax tree for XPath 1.0 expressions.

The AST mirrors the grammar of the W3C recommendation (and of
Definitions 2.5 / 2.6 in the paper): location paths made of steps with
predicates, filter and path expressions, unions, boolean / relational /
arithmetic operators, function calls, literals, numbers and variable
references.

Every node supports

* ``children()`` — the direct sub-expressions, used by the fragment
  classifiers, the evaluators' memo tables and the query-size metrics;
* ``walk()`` — pre-order traversal of the whole expression tree;
* structural equality and hashing, so expressions can be used as
  dictionary keys in the context-value tables;
* ``unparse()`` (via :mod:`repro.xpath.unparse`) back to XPath syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

# Operator categories used across the package.
BOOLEAN_OPERATORS = ("and", "or")
EQUALITY_OPERATORS = ("=", "!=")
RELATIONAL_OPERATORS = ("<", "<=", ">", ">=")
ARITHMETIC_OPERATORS = ("+", "-", "*", "div", "mod")
COMPARISON_OPERATORS = EQUALITY_OPERATORS + RELATIONAL_OPERATORS


class XPathExpr:
    """Base class of all AST nodes."""

    __slots__ = ()

    def children(self) -> Tuple["XPathExpr", ...]:
        """Return the direct sub-expressions of this node."""
        return ()

    def walk(self) -> Iterator["XPathExpr"]:
        """Yield this node and every descendant expression, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Return the number of AST nodes in this expression (|Q| in the paper)."""
        return sum(1 for _ in self.walk())

    def unparse(self) -> str:
        """Return XPath 1.0 syntax for this expression."""
        from repro.xpath.unparse import unparse

        return unparse(self)

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class NodeTest:
    """A node test: a name, ``*``, or a node-type test like ``text()``.

    ``kind`` is ``"name"`` for name tests (including ``*``) and
    ``"type"`` for node-type tests; ``value`` holds the name or the full
    node-type test text (e.g. ``"node()"``).
    """

    kind: str
    value: str

    def text(self) -> str:
        """Return the node test as it appears in XPath syntax."""
        return self.value

    def is_wildcard(self) -> bool:
        """Return True for the ``*`` name test."""
        return self.kind == "name" and self.value == "*"


NAME_WILDCARD = NodeTest("name", "*")
NODE_TYPE_NODE = NodeTest("type", "node()")
NODE_TYPE_TEXT = NodeTest("type", "text()")


@dataclass(frozen=True)
class Step(XPathExpr):
    """A location step ``axis::node-test[pred1]…[predk]``."""

    axis: str
    node_test: NodeTest
    predicates: Tuple[XPathExpr, ...] = ()

    def children(self) -> Tuple[XPathExpr, ...]:
        return self.predicates

    def with_predicates(self, predicates: Sequence[XPathExpr]) -> "Step":
        """Return a copy of this step with ``predicates`` replacing the old ones."""
        return Step(self.axis, self.node_test, tuple(predicates))


@dataclass(frozen=True)
class LocationPath(XPathExpr):
    """A location path: an optional leading ``/`` and a sequence of steps."""

    absolute: bool
    steps: Tuple[Step, ...]

    def children(self) -> Tuple[XPathExpr, ...]:
        return self.steps

    def is_condition_free(self) -> bool:
        """Return True if no step carries a predicate (the PF fragment shape)."""
        return all(not step.predicates for step in self.steps)


@dataclass(frozen=True)
class PathExpr(XPathExpr):
    """A path expression ``filter-expr / relative-location-path``.

    Produced by queries such as ``id('x')/child::a`` where the first step
    is a general expression rather than a location step.
    """

    start: XPathExpr
    tail: LocationPath

    def children(self) -> Tuple[XPathExpr, ...]:
        return (self.start, self.tail)


@dataclass(frozen=True)
class FilterExpr(XPathExpr):
    """A primary expression followed by one or more predicates, e.g. ``(//a)[1]``."""

    primary: XPathExpr
    predicates: Tuple[XPathExpr, ...]

    def children(self) -> Tuple[XPathExpr, ...]:
        return (self.primary,) + self.predicates


@dataclass(frozen=True)
class BinaryOp(XPathExpr):
    """A binary operator application: boolean, comparison, arithmetic or union."""

    op: str
    left: XPathExpr
    right: XPathExpr

    def children(self) -> Tuple[XPathExpr, ...]:
        return (self.left, self.right)

    def is_boolean(self) -> bool:
        return self.op in BOOLEAN_OPERATORS

    def is_comparison(self) -> bool:
        return self.op in COMPARISON_OPERATORS

    def is_arithmetic(self) -> bool:
        return self.op in ARITHMETIC_OPERATORS

    def is_union(self) -> bool:
        return self.op == "|"


@dataclass(frozen=True)
class Negate(XPathExpr):
    """Unary minus."""

    operand: XPathExpr

    def children(self) -> Tuple[XPathExpr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class FunctionCall(XPathExpr):
    """A call to a core-library function, e.g. ``not(…)`` or ``position()``."""

    name: str
    args: Tuple[XPathExpr, ...] = ()

    def children(self) -> Tuple[XPathExpr, ...]:
        return self.args


@dataclass(frozen=True)
class Literal(XPathExpr):
    """A string literal."""

    value: str


@dataclass(frozen=True)
class Number(XPathExpr):
    """A numeric literal (XPath numbers are IEEE doubles)."""

    value: float


@dataclass(frozen=True)
class VariableReference(XPathExpr):
    """A variable reference ``$name``."""

    name: str


# ---------------------------------------------------------------------------
# Convenience constructors used throughout the reductions and tests
# ---------------------------------------------------------------------------


def step(axis: str, node_test: str, *predicates: XPathExpr) -> Step:
    """Build a :class:`Step` from plain strings.

    ``node_test`` may be a name, ``*``, or a node-type test such as
    ``node()``.
    """
    if node_test.endswith(")"):
        test = NodeTest("type", node_test)
    else:
        test = NodeTest("name", node_test)
    return Step(axis, test, tuple(predicates))


def path(*steps: Step, absolute: bool = False) -> LocationPath:
    """Build a :class:`LocationPath` from steps."""
    return LocationPath(absolute, tuple(steps))


def conjunction(*operands: XPathExpr) -> XPathExpr:
    """Combine ``operands`` with ``and`` (left-associative)."""
    if not operands:
        raise ValueError("conjunction of zero operands")
    result = operands[0]
    for operand in operands[1:]:
        result = BinaryOp("and", result, operand)
    return result


def disjunction(*operands: XPathExpr) -> XPathExpr:
    """Combine ``operands`` with ``or`` (left-associative)."""
    if not operands:
        raise ValueError("disjunction of zero operands")
    result = operands[0]
    for operand in operands[1:]:
        result = BinaryOp("or", result, operand)
    return result


def not_(operand: XPathExpr) -> FunctionCall:
    """Build ``not(operand)``."""
    return FunctionCall("not", (operand,))
