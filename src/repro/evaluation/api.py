"""Convenience entry points: evaluate a query with a chosen engine.

Five engines are available, matching the paper's algorithmic landscape:

``"cvt"`` (default)
    The context-value-table dynamic program — polynomial combined
    complexity for full XPath 1.0 (Proposition 2.7).
``"naive"``
    The literal functional-semantics evaluator — worst-case exponential in
    the query size (the behaviour of fielded engines the introduction
    describes).
``"core"``
    The O(|D|·|Q|) Core XPath evaluator — only accepts Core XPath.
    Id-native: evaluates on integer id sets over the document index and
    materialises nodes once, at this API boundary.
``"singleton"``
    The Singleton-Success checker of Lemma 5.4 — only accepts pWF/pXPath
    (optionally with bounded negation).
``"auto"``
    The query planner (:mod:`repro.planner`): classifies the query once,
    picks the cheapest sound evaluator (``core`` → ``cvt`` → ``naive``)
    and caches the compiled plan for reuse.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import XPathEvaluationError
from repro.evaluation.context import Context
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.cvt import ContextValueTableEvaluator
from repro.evaluation.naive import NaiveEvaluator
from repro.evaluation.singleton import SingletonSuccessChecker
from repro.evaluation.values import NodeSet, XPathValue
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import XPathExpr
from repro.xpath.functions import NODESET, static_type
from repro.xpath.parser import parse

ENGINES = ("cvt", "naive", "core", "singleton", "auto")


def make_evaluator(
    document: Document,
    engine: str = "cvt",
    variables: Optional[Mapping[str, XPathValue]] = None,
    max_negation_depth: int = 0,
):
    """Instantiate the evaluator object for ``engine`` on ``document``."""
    if engine == "cvt":
        return ContextValueTableEvaluator(document, variables)
    if engine == "naive":
        return NaiveEvaluator(document, variables)
    if engine == "core":
        return CoreXPathEvaluator(document)
    if engine == "singleton":
        return SingletonSuccessChecker(document, max_negation_depth=max_negation_depth)
    if engine == "auto":
        raise XPathEvaluationError(
            "engine 'auto' has no standalone evaluator object; use evaluate() "
            "or repro.planner.get_plan() instead"
        )
    raise XPathEvaluationError(f"unknown engine {engine!r}; choose one of {ENGINES}")


def evaluate(
    query: XPathExpr | str,
    document: Document,
    engine: str = "cvt",
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> XPathValue | list[XMLNode] | bool:
    """Evaluate ``query`` on ``document`` with the chosen engine.

    Node-set results are returned as a plain list of nodes in document
    order; other results as Python ``float`` / ``str`` / ``bool``.

    Examples
    --------
    >>> from repro.xmlmodel import parse_xml
    >>> document = parse_xml("<a><b/><b><c/></b></a>")
    >>> [n.tag for n in evaluate("//b[child::c]", document, engine="auto")]
    ['b']
    >>> evaluate("count(//b)", document)
    2.0
    """
    if engine == "auto":
        # Imported lazily: the planner builds on this module's evaluators.
        from repro.planner import get_plan

        return get_plan(query).run(document, context=context, variables=variables)
    expr = parse(query) if isinstance(query, str) else query
    if engine in ("cvt", "naive"):
        evaluator = make_evaluator(document, engine, variables)
        value = evaluator.evaluate(expr, context)
        return list(value.nodes) if isinstance(value, NodeSet) else value
    if engine == "core":
        evaluator = CoreXPathEvaluator(document)
        context_nodes = [context.node] if context is not None else None
        return evaluator.evaluate_nodes(expr, context_nodes)
    if engine == "singleton":
        checker = SingletonSuccessChecker(document, max_negation_depth=64)
        if static_type(expr) == NODESET:
            return checker.evaluate_nodes(expr, context)
        if static_type(expr) == "boolean":
            return checker.evaluate_boolean(expr, context)
        return checker.evaluate_number(expr, context)
    raise XPathEvaluationError(f"unknown engine {engine!r}; choose one of {ENGINES}")


def evaluate_nodes(
    query: XPathExpr | str,
    document: Document,
    engine: str = "cvt",
    context: Optional[Context] = None,
) -> list[XMLNode]:
    """Evaluate a node-set query and return its nodes in document order."""
    result = evaluate(query, document, engine=engine, context=context)
    if not isinstance(result, list):
        raise XPathEvaluationError(
            f"query produced a {type(result).__name__}, not a node-set"
        )
    return result


def query_selects(
    query: XPathExpr | str,
    document: Document,
    engine: str = "cvt",
) -> bool:
    """Return True if the (node-set) query selects at least one node.

    This "is the result non-empty" form is the decision problem all of the
    paper's hardness reductions target.
    """
    return bool(evaluate_nodes(query, document, engine=engine))
