"""Convenience entry points: evaluate a query with a chosen engine.

These free functions are thin wrappers over the process-default
:class:`repro.engine.XPathEngine` (see :func:`repro.engine.default_engine`),
which owns the plan cache, the document registry and the per-document
evaluator pools.  New code should talk to an engine directly — it gets
the richer :class:`~repro.engine.result.QueryResult` (metadata, ids) and
the batch/concurrent entry points; these wrappers keep the historic
"bare value" convention.

Five engines are available, matching the paper's algorithmic landscape:

``"cvt"`` (default)
    The context-value-table dynamic program — polynomial combined
    complexity for full XPath 1.0 (Proposition 2.7).
``"naive"``
    The literal functional-semantics evaluator — worst-case exponential in
    the query size (the behaviour of fielded engines the introduction
    describes).
``"core"``
    The O(|D|·|Q|) Core XPath evaluator — only accepts Core XPath.
    Id-native: evaluates on integer id sets over the document index and
    materialises nodes once, at this API boundary.
``"singleton"``
    The Singleton-Success checker of Lemma 5.4 — only accepts pWF/pXPath
    (with negation nesting bounded by
    :data:`~repro.evaluation.singleton.DEFAULT_MAX_NEGATION_DEPTH`).
``"auto"``
    The query planner (:mod:`repro.planner`): classifies the query once,
    picks the cheapest sound evaluator (``core`` → ``cvt`` → ``naive``)
    and caches the compiled plan for reuse.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import XPathEvaluationError
from repro.evaluation.context import Context
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.cvt import ContextValueTableEvaluator
from repro.evaluation.naive import NaiveEvaluator
from repro.evaluation.singleton import (
    DEFAULT_MAX_NEGATION_DEPTH,
    SingletonSuccessChecker,
)
from repro.evaluation.values import XPathValue
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import XPathExpr

ENGINES = ("cvt", "naive", "core", "singleton", "auto")


class PlannedEvaluator:
    """The evaluator object for ``engine="auto"``: a planner-backed callable.

    Binds a document (and optional construction-time variable bindings,
    like the other evaluator classes) to the process-default engine's
    planner, so it slots into any code written against the
    ``make_evaluator(...)`` protocol: call it (or its :meth:`evaluate`
    method) with a query and it runs the auto-dispatched plan, returning
    results in the legacy convention.
    """

    def __init__(
        self,
        document: Document,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> None:
        self.document = document
        self.variables = dict(variables or {})
        # Evaluator instances reused across this object's calls; dropped
        # with it (the default engine never retains the document).
        self._evaluators: dict[str, object] = {}

    def evaluate(
        self,
        query: XPathExpr | str,
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> XPathValue | list[XMLNode] | bool:
        """Plan ``query`` via the default engine and evaluate it.

        Call-time ``variables`` override the construction-time bindings.
        """
        from repro.engine import default_engine

        bindings = self.variables if variables is None else variables
        return default_engine().evaluate_detached(
            query,
            self.document,
            context=context,
            variables=bindings or None,
            evaluators=self._evaluators,
        ).value

    __call__ = evaluate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlannedEvaluator document={self.document!r}>"


def make_evaluator(
    document: Document,
    engine: str = "cvt",
    variables: Optional[Mapping[str, XPathValue]] = None,
    max_negation_depth: int = DEFAULT_MAX_NEGATION_DEPTH,
):
    """Instantiate the evaluator object for ``engine`` on ``document``.

    ``engine="auto"`` returns a :class:`PlannedEvaluator` — the default
    engine's planner bound to ``document`` — so every member of
    :data:`ENGINES` produces a working evaluator object.
    """
    if engine == "cvt":
        return ContextValueTableEvaluator(document, variables)
    if engine == "naive":
        return NaiveEvaluator(document, variables)
    if engine == "core":
        return CoreXPathEvaluator(document)
    if engine == "singleton":
        return SingletonSuccessChecker(document, max_negation_depth=max_negation_depth)
    if engine == "auto":
        # The planner never dispatches to the singleton checker, so
        # max_negation_depth plays no role on this path.
        return PlannedEvaluator(document, variables)
    raise XPathEvaluationError(
        f"unknown engine {engine!r}; choose one of {ENGINES} "
        "(or use repro.engine.XPathEngine, which owns evaluators itself)"
    )


def evaluate(
    query: XPathExpr | str,
    document: Document,
    engine: str = "cvt",
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
) -> XPathValue | list[XMLNode] | bool:
    """Evaluate ``query`` on ``document`` with the chosen engine.

    Node-set results are returned as a plain list of nodes in document
    order; other results as Python ``float`` / ``str`` / ``bool``.  This
    delegates to the process-default :class:`~repro.engine.XPathEngine`
    (sharing its plan cache and counters) but evaluates *detached*: the
    engine keeps no reference to ``document``.  Use the engine directly
    to get the full :class:`~repro.engine.result.QueryResult`, evaluator
    pooling and the batch/concurrent entry points.

    Examples
    --------
    >>> from repro.xmlmodel import parse_xml
    >>> document = parse_xml("<a><b/><b><c/></b></a>")
    >>> [n.tag for n in evaluate("//b[child::c]", document, engine="auto")]
    ['b']
    >>> evaluate("count(//b)", document)
    2.0
    """
    from repro.engine import default_engine

    return default_engine().evaluate_detached(
        query, document, context=context, variables=variables, engine=engine
    ).value


def evaluate_nodes(
    query: XPathExpr | str,
    document: Document,
    engine: str = "cvt",
    context: Optional[Context] = None,
) -> list[XMLNode]:
    """Evaluate a node-set query and return its nodes in document order."""
    result = evaluate(query, document, engine=engine, context=context)
    if not isinstance(result, list):
        raise XPathEvaluationError(
            f"query produced a {type(result).__name__}, not a node-set"
        )
    return result


def query_selects(
    query: XPathExpr | str,
    document: Document,
    engine: str = "cvt",
) -> bool:
    """Return True if the (node-set) query selects at least one node.

    This "is the result non-empty" form is the decision problem all of the
    paper's hardness reductions target.
    """
    return bool(evaluate_nodes(query, document, engine=engine))
