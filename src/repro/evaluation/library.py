"""Run-time implementations of the XPath 1.0 core function library.

The functions operate on already-evaluated argument values (see
:mod:`repro.evaluation.values`); functions whose arguments are optional
default to the context node, as the recommendation prescribes.  The same
implementations are shared by the naive and the context-value-table
evaluators so that any disagreement between the two is attributable to
their evaluation strategies rather than to library semantics.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import XPathEvaluationError, XPathTypeError
from repro.evaluation.context import Context, Environment
from repro.evaluation.values import (
    NodeSet,
    XPathValue,
    format_number,
    to_boolean,
    to_number,
    to_string,
    xpath_round,
)
from repro.xmlmodel.nodes import ElementNode


def call_function(
    name: str, args: Sequence[XPathValue], context: Context, env: Environment
) -> XPathValue:
    """Evaluate core-library function ``name`` on evaluated arguments ``args``."""
    try:
        implementation = _FUNCTIONS[name]
    except KeyError:
        raise XPathTypeError(f"unknown function {name}()") from None
    return implementation(args, context, env)


def _context_node_set(context: Context) -> NodeSet:
    return NodeSet([context.node])


def _arg_or_context_string(args: Sequence[XPathValue], context: Context) -> str:
    if args:
        return to_string(args[0])
    return context.node.string_value()


def _arg_or_context_node_set(args: Sequence[XPathValue], context: Context) -> NodeSet:
    if not args:
        return _context_node_set(context)
    value = args[0]
    if not isinstance(value, NodeSet):
        raise XPathTypeError("argument must be a node-set")
    return value


# -- node-set functions ------------------------------------------------------


def _fn_last(args, context, env):
    return float(context.size)


def _fn_position(args, context, env):
    return float(context.position)


def _fn_count(args, context, env):
    value = args[0]
    if not isinstance(value, NodeSet):
        raise XPathTypeError("count() requires a node-set")
    return float(len(value))


def _fn_id(args, context, env):
    tokens = to_string(args[0]).split() if not isinstance(args[0], NodeSet) else [
        value for node in args[0] for value in node.string_value().split()
    ]
    wanted = set(tokens)
    matches = [
        element
        for element in env.document.elements
        if element.get_attribute("id") in wanted
    ]
    return NodeSet(matches)


def _fn_local_name(args, context, env):
    node_set = _arg_or_context_node_set(args, context)
    first = node_set.first()
    if first is None:
        return ""
    name = first.name()
    return name.split(":", 1)[-1] if ":" in name else name


def _fn_namespace_uri(args, context, env):
    # Namespace handling is out of scope (see DESIGN.md); prefixed names
    # report an empty URI, exactly like documents with no namespace nodes.
    return ""


def _fn_name(args, context, env):
    node_set = _arg_or_context_node_set(args, context)
    first = node_set.first()
    return first.name() if first is not None else ""


def _fn_sum(args, context, env):
    value = args[0]
    if not isinstance(value, NodeSet):
        raise XPathTypeError("sum() requires a node-set")
    return float(sum(to_number(sv) for sv in value.string_values())) if len(value) else 0.0


# -- string functions ----------------------------------------------------------


def _fn_string(args, context, env):
    if args:
        return to_string(args[0])
    return context.node.string_value()


def _fn_concat(args, context, env):
    return "".join(to_string(arg) for arg in args)


def _fn_starts_with(args, context, env):
    return to_string(args[0]).startswith(to_string(args[1]))


def _fn_contains(args, context, env):
    return to_string(args[1]) in to_string(args[0])


def _fn_substring_before(args, context, env):
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def _fn_substring_after(args, context, env):
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[index + len(needle) :] if index >= 0 else ""


def _fn_substring(args, context, env):
    text = to_string(args[0])
    start = xpath_round(to_number(args[1]))
    if math.isnan(start):
        return ""
    if len(args) >= 3:
        length = xpath_round(to_number(args[2]))
        if math.isnan(length):
            return ""
        end = start + length
    else:
        end = math.inf
    # XPath positions are 1-based; characters at positions p with
    # start <= p < end are kept.
    result_chars = [
        char for offset, char in enumerate(text, start=1) if start <= offset < end
    ]
    return "".join(result_chars)


def _fn_string_length(args, context, env):
    return float(len(_arg_or_context_string(args, context)))


def _fn_normalize_space(args, context, env):
    return " ".join(_arg_or_context_string(args, context).split())


def _fn_translate(args, context, env):
    text, source, target = (to_string(arg) for arg in args[:3])
    mapping: dict[str, str | None] = {}
    for index, char in enumerate(source):
        if char in mapping:
            continue
        mapping[char] = target[index] if index < len(target) else None
    out = []
    for char in text:
        if char in mapping:
            replacement = mapping[char]
            if replacement is not None:
                out.append(replacement)
        else:
            out.append(char)
    return "".join(out)


# -- boolean functions ----------------------------------------------------------


def _fn_boolean(args, context, env):
    return to_boolean(args[0])


def _fn_not(args, context, env):
    return not to_boolean(args[0])


def _fn_true(args, context, env):
    return True


def _fn_false(args, context, env):
    return False


def _fn_lang(args, context, env):
    wanted = to_string(args[0]).lower()
    node = context.node
    while node is not None:
        if isinstance(node, ElementNode):
            lang = node.get_attribute("xml:lang")
            if lang is not None:
                lang = lang.lower()
                return lang == wanted or lang.startswith(wanted + "-")
        node = node.parent
    return False


# -- number functions -------------------------------------------------------------


def _fn_number(args, context, env):
    if args:
        return to_number(args[0])
    return to_number(context.node.string_value())


def _fn_floor(args, context, env):
    value = to_number(args[0])
    return value if math.isnan(value) or math.isinf(value) else float(math.floor(value))


def _fn_ceiling(args, context, env):
    value = to_number(args[0])
    return value if math.isnan(value) or math.isinf(value) else float(math.ceil(value))


def _fn_round(args, context, env):
    return xpath_round(to_number(args[0]))


_FUNCTIONS = {
    "last": _fn_last,
    "position": _fn_position,
    "count": _fn_count,
    "id": _fn_id,
    "local-name": _fn_local_name,
    "namespace-uri": _fn_namespace_uri,
    "name": _fn_name,
    "string": _fn_string,
    "concat": _fn_concat,
    "starts-with": _fn_starts_with,
    "contains": _fn_contains,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "substring": _fn_substring,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "translate": _fn_translate,
    "boolean": _fn_boolean,
    "not": _fn_not,
    "true": _fn_true,
    "false": _fn_false,
    "lang": _fn_lang,
    "number": _fn_number,
    "sum": _fn_sum,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
}

#: Names of all implemented core-library functions.
IMPLEMENTED_FUNCTIONS = frozenset(_FUNCTIONS)
