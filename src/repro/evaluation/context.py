"""Evaluation contexts.

XPath expressions are evaluated relative to a *context*: a context node, a
context position and a context size (the triple the paper writes as
``(v, i, j)``), plus — for full XPath — a set of variable bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.errors import XPathEvaluationError
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode


@dataclass(frozen=True)
class Context:
    """An XPath evaluation context (the paper's context-triple).

    Attributes
    ----------
    node:
        The context node.
    position:
        The context position (1-based).
    size:
        The context size.
    """

    node: XMLNode
    position: int = 1
    size: int = 1

    def with_node(self, node: XMLNode, position: int = 1, size: int = 1) -> "Context":
        """Return a new context focused on ``node`` with the given position/size."""
        return Context(node, position, size)

    def key(self) -> tuple[int, int, int]:
        """Return a hashable key identifying this context (used by memo tables)."""
        return (self.node.uid, self.position, self.size)

    def node_key(self) -> int:
        """Return a key identifying only the context node."""
        return self.node.uid


def initial_context(document: Document, node: Optional[XMLNode] = None) -> Context:
    """Return the conventional initial context for evaluating a query on ``document``.

    By default the context node is the conceptual root node with position
    and size 1, which is how absolute queries are evaluated.
    """
    return Context(node if node is not None else document.root, 1, 1)


@dataclass
class Environment:
    """Evaluation environment shared by all contexts of one query run.

    Bundles the document, the variable bindings and an operation counter.
    The counter gives an implementation-independent cost measure used by
    the scaling benchmarks (wall-clock is noisy at small sizes).
    """

    document: Document
    variables: Mapping[str, object] = field(default_factory=dict)
    operations: int = 0

    def tick(self, amount: int = 1) -> None:
        """Record ``amount`` units of evaluation work."""
        self.operations += amount

    def variable(self, name: str):
        """Look up variable ``$name`` or raise if unbound."""
        try:
            return self.variables[name]
        except KeyError:
            raise XPathEvaluationError(f"unbound variable ${name}") from None
