"""Set-at-a-time axis application in time O(|D|) per application.

The linear-time Core XPath algorithm repeatedly maps a *set* of nodes
through an axis.  Doing this by iterating :func:`repro.xmlmodel.axes.axis_nodes`
per member would cost O(|S| · |D|) for the recursive axes, so this module
provides three set-level strategies, all linear in the document size:

* the **id-native** path (:func:`apply_axis_idset`, used by the id-native
  Core XPath evaluator) maps an :class:`~repro.xmlmodel.idset.IdSet`
  through the id-set kernels of the
  :class:`~repro.xmlmodel.index.DocumentIndex` — interval arithmetic and
  array-chain sweeps with no node objects involved at all;
* the **indexed node-set** path (default for :func:`apply_axis_set`
  whenever the document carries an index, which is built lazily on first
  use) converts the node set to integer ids, runs the same kernels, and
  converts back;
* the original **object-walk** path exploits the fact that document order
  is a pre-order traversal (parents precede children) and that sibling
  lists can be swept with a carry flag.  It remains as the fallback for
  document-like objects without an index and as the differential-testing
  baseline.

Node tests are applied by the caller (:mod:`repro.evaluation.core` uses
:meth:`~repro.xmlmodel.index.DocumentIndex.filter_idset`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.errors import XPathEvaluationError
from repro.xmlmodel.document import Document
from repro.xmlmodel.idset import IdSet
from repro.xmlmodel.nodes import XMLNode

NodeSetType = Set[XMLNode]


def apply_axis_idset(document: Document, axis: str, ids: IdSet) -> IdSet:
    """Return the :class:`IdSet` reachable from ``ids`` via ``axis``.

    This is the id-native form of :func:`apply_axis_set`: both input and
    output are id sets over ``document.index``, so repeated applications
    (the shape of a multi-step location path) never materialise nodes.
    """
    return document.index.axis_idset(axis, ids)


def apply_axis_set(
    document: Document,
    axis: str,
    nodes: NodeSetType,
    use_index: Optional[bool] = None,
) -> NodeSetType:
    """Return the set of nodes reachable from ``nodes`` via ``axis``.

    ``use_index`` selects the strategy: ``None`` (the default) uses the
    document index when the document provides one, ``True`` requires it,
    and ``False`` forces the object-walk path.
    """
    if axis not in _AXIS_SET_FUNCTIONS:
        raise XPathEvaluationError(f"axis {axis!r} is not a navigational axis")
    if use_index is not False:
        index = getattr(document, "index", None)
        if index is None:
            if use_index:
                raise XPathEvaluationError(
                    f"document {document!r} does not provide a DocumentIndex"
                )
        else:
            try:
                return index.axis_node_set(axis, nodes)
            except KeyError:
                # A context node outside the indexed tree (e.g. an attribute
                # node) — only the object walk knows how to step from it.
                if use_index:
                    raise XPathEvaluationError(
                        "node set contains nodes outside the indexed tree "
                        "(e.g. attribute nodes); the index cannot apply "
                        f"axis {axis!r} to them"
                    ) from None
    return _AXIS_SET_FUNCTIONS[axis](document, nodes)


def _self_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    return set(nodes)


def _child_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    result: set[XMLNode] = set()
    for node in nodes:
        result.update(node.children)
    return result


def _parent_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    return {node.parent for node in nodes if node.parent is not None}


def _descendant_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    """One pre-order sweep: a node is a descendant of S if its parent is in S
    or is itself such a descendant."""
    result: set[XMLNode] = set()
    for node in document.nodes:
        parent = node.parent
        if parent is not None and (parent in nodes or parent in result):
            result.add(node)
    return result


def _descendant_or_self_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    return set(nodes) | _descendant_set(document, nodes)


def _ancestor_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    """One reverse pre-order sweep computing "subtree contains an S member"."""
    subtree_hits: set[XMLNode] = set()
    for node in reversed(document.nodes):
        if node in nodes or any(child in subtree_hits for child in node.children):
            subtree_hits.add(node)
    return {
        node
        for node in document.nodes
        if any(child in subtree_hits for child in node.children)
    }


def _ancestor_or_self_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    return set(nodes) | _ancestor_set(document, nodes)


def _following_sibling_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    """Left-to-right sweep over every sibling list with a carry flag."""
    result: set[XMLNode] = set()
    for parent in document.nodes:
        seen_member = False
        for child in parent.children:
            if seen_member:
                result.add(child)
            if child in nodes:
                seen_member = True
    return result


def _preceding_sibling_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    result: set[XMLNode] = set()
    for parent in document.nodes:
        seen_member = False
        for child in reversed(parent.children):
            if seen_member:
                result.add(child)
            if child in nodes:
                seen_member = True
    return result


def _following_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    """following = descendant-or-self ∘ following-sibling ∘ ancestor-or-self."""
    ancestors_or_self = _ancestor_or_self_set(document, nodes)
    siblings = _following_sibling_set(document, ancestors_or_self)
    return _descendant_or_self_set(document, siblings)


def _preceding_set(document: Document, nodes: NodeSetType) -> NodeSetType:
    ancestors_or_self = _ancestor_or_self_set(document, nodes)
    siblings = _preceding_sibling_set(document, ancestors_or_self)
    return _descendant_or_self_set(document, siblings)


_AXIS_SET_FUNCTIONS = {
    "self": _self_set,
    "child": _child_set,
    "parent": _parent_set,
    "descendant": _descendant_set,
    "descendant-or-self": _descendant_or_self_set,
    "ancestor": _ancestor_set,
    "ancestor-or-self": _ancestor_or_self_set,
    "following": _following_set,
    "following-sibling": _following_sibling_set,
    "preceding": _preceding_set,
    "preceding-sibling": _preceding_sibling_set,
}

#: Axes supported by the set-at-a-time machinery (the navigational axes).
NAVIGATIONAL_AXES = frozenset(_AXIS_SET_FUNCTIONS)
