"""The naive, functional-style XPath evaluator (the paper's negative baseline).

The introduction of the paper observes that "all publicly available XPath
engines … take time exponential in the sizes of the XPath expressions in
the input", because an "immediate functional implementation of the
standards documents" evaluates the remainder of a location path once for
*every* node selected by the current step, without ever merging duplicate
intermediate results.

:class:`NaiveEvaluator` is exactly that immediate functional
implementation.  Its answers are correct (duplicates are removed when the
final node-set is built), but on documents such as
:func:`repro.xmlmodel.generators.caterpillar_document` the number of
explored navigation paths doubles with every added step, which experiment
E8 measures against the polynomial evaluators.
"""

from __future__ import annotations

from repro.evaluation.base import BaseEvaluator
from repro.evaluation.context import Context
from repro.evaluation.values import NodeSet
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import LocationPath, Step


class NaiveEvaluator(BaseEvaluator):
    """Literal recursive-descent evaluation with no sharing of intermediate results."""

    def evaluate_location_path(self, expr: LocationPath, context: Context) -> NodeSet:
        start = self.document.root if expr.absolute else context.node
        collected = self._evaluate_steps(list(expr.steps), start)
        return NodeSet(collected)

    def _evaluate_steps(self, steps: list[Step], node: XMLNode) -> list[XMLNode]:
        """Evaluate the remaining ``steps`` starting from ``node``.

        This is the exponential core: the recursion is re-entered once per
        selected node and nothing is deduplicated or memoised, so a path
        expression with k steps over a document in which every step has two
        continuations explores 2^k navigation paths.
        """
        if not steps:
            return [node]
        head, *tail = steps
        selected = self.apply_step_to_node(head, node)
        results: list[XMLNode] = []
        for next_node in selected:
            results.extend(self._evaluate_steps(tail, next_node))
        return results
