"""The Singleton-Success checker of Lemma 5.4 / Table 1 (pWF and pXPath).

The paper proves LOGCFL membership of pWF (Theorem 5.5) and pXPath
(Theorem 6.2) by exhibiting an NAuxPDA that *guesses* a context and result
value for every node of the query parse tree and verifies the guesses with
purely local consistency checks — the rows of Table 1.  Nothing larger
than a context triple and a scalar value is ever stored, and node sets are
never materialised.

:class:`SingletonSuccessChecker` is the deterministic simulation of that
machine: each existential guess is replaced by enumeration over its
(polynomial) domain — document nodes for node-valued guesses, the step's
witness set for positions — and the recursion is memoised on
``(sub-expression, context, value)`` so the overall work stays polynomial.
The structure of the checks follows Table 1 row by row; the node-set
result case loops over candidate nodes exactly as in the proof of
Theorem 5.5, and ``not(π)`` with bounded nesting depth is handled by a
loop over ``dom`` as in the proof of Theorem 5.9.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import FragmentViolationError, XPathEvaluationError, XPathTypeError
from repro.evaluation.context import Context, initial_context
from repro.evaluation.values import compare as value_compare
from repro.xmlmodel.axes import axis_step
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.analysis import negation_depth
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    Number,
    Step,
    XPathExpr,
)
from repro.xpath.functions import NODESET, static_type
from repro.xpath.parser import parse
from repro.xpath.transform import push_negations

#: The negation-nesting bound the public API threads through by default.
#:
#: ``SingletonSuccessChecker`` itself defaults to 0 (plain pWF/pXPath, the
#: fragments of Theorems 5.5/6.2); the convenience layer —
#: :func:`repro.evaluation.api.make_evaluator`,
#: :func:`repro.evaluation.api.evaluate` and
#: :class:`repro.engine.XPathEngine` — uses this far-above-any-real-query
#: bound instead, so ``engine="singleton"`` accepts the bounded-negation
#: extension of Theorem 5.9 without per-call tuning.
DEFAULT_MAX_NEGATION_DEPTH = 64

#: Scalar functions the checker can evaluate deterministically in place.
_DETERMINISTIC_FUNCTIONS = {
    "concat": lambda args: "".join(str(a) for a in args),
    "starts-with": lambda args: str(args[0]).startswith(str(args[1])),
    "contains": lambda args: str(args[1]) in str(args[0]),
    "floor": lambda args: float(math.floor(args[0])),
    "ceiling": lambda args: float(math.ceil(args[0])),
    "round": lambda args: float(math.floor(args[0] + 0.5)),
    "true": lambda args: True,
    "false": lambda args: False,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "div": lambda a, b: a / b if b != 0 else math.copysign(math.inf, a) * math.copysign(1.0, b) if a != 0 else math.nan,
    "mod": lambda a, b: math.fmod(a, b) if b != 0 else math.nan,
}


class SingletonSuccessChecker:
    """Guess-and-check evaluation of pWF / pXPath queries (Table 1).

    Parameters
    ----------
    document:
        The document to evaluate against.
    max_negation_depth:
        Maximum allowed nesting depth of ``not(…)`` around location paths
        (Theorem 5.9 / 6.3).  The default of 0 is plain pWF/pXPath.
    """

    def __init__(self, document: Document, max_negation_depth: int = 0) -> None:
        self.document = document
        self.max_negation_depth = max_negation_depth
        self._memo: dict[tuple, bool] = {}
        self._steps_memo: dict[tuple, bool] = {}
        # Memo keys embed id(expr); pin checked expressions so ids are never
        # recycled across queries evaluated by the same checker instance.
        self._pinned: list = []
        # The guessing domain: tree nodes plus attribute nodes, so that
        # pXPath queries ending in the attribute axis are covered too.
        self._domain: list[XMLNode] = list(document.nodes) + list(document.attributes)
        #: Number of local consistency checks performed (cost measure).
        self.checks = 0

    # -- public API -------------------------------------------------------------

    def singleton_success(
        self,
        query: XPathExpr | str,
        value,
        context: Optional[Context] = None,
    ) -> bool:
        """Decide the Singleton-Success problem (Definition 5.3).

        ``value`` is a node for node-set-typed queries, ``True`` for
        boolean-typed queries, or a number/string for scalar queries.
        """
        expr = self._prepare(query)
        if context is None:
            context = initial_context(self.document)
        return self._check(expr, context, value)

    def evaluate_nodes(
        self, query: XPathExpr | str, context: Optional[Context] = None
    ) -> list[XMLNode]:
        """Return the full node-set result by looping Singleton-Success over dom.

        This is exactly the reduction used in the proof of Theorem 5.5.
        """
        expr = self._prepare(query)
        if context is None:
            context = initial_context(self.document)
        return [node for node in self._domain if self._check(expr, context, node)]

    def evaluate_boolean(
        self, query: XPathExpr | str, context: Optional[Context] = None
    ) -> bool:
        """Return the boolean value of ``query``.

        Checking *false* is the complement problem; LOGCFL is closed under
        complement (Proposition 2.4), so returning ``not check(true)`` is
        legitimate.
        """
        expr = self._prepare(query)
        if context is None:
            context = initial_context(self.document)
        return self._check(expr, context, True)

    def evaluate_number(
        self, query: XPathExpr | str, context: Optional[Context] = None
    ) -> float:
        """Return the numeric value of a number-typed query (evaluated scalar-only)."""
        expr = self._prepare(query)
        if context is None:
            context = initial_context(self.document)
        return float(self._eval_scalar(expr, context))

    # -- preparation ----------------------------------------------------------------

    def _prepare(self, query: XPathExpr | str) -> XPathExpr:
        expr = parse(query) if isinstance(query, str) else query
        depth = negation_depth(expr)
        if depth > self.max_negation_depth:
            raise FragmentViolationError(
                "pWF/pXPath",
                [
                    f"negation depth {depth} exceeds the allowed bound "
                    f"{self.max_negation_depth} (Definition 5.1(2) / Theorem 5.9)"
                ],
            )
        if depth:
            expr = push_negations(expr)
        self._pinned.append(expr)
        return expr

    # -- the checker -------------------------------------------------------------------

    def _check(self, expr: XPathExpr, context: Context, value) -> bool:
        key = (id(expr), context.key(), _value_key(value))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Guard against reentrancy on the same key (cannot happen for
        # well-formed queries, but protects against pathological ASTs).
        self._memo[key] = False
        result = self._check_uncached(expr, context, value)
        self._memo[key] = result
        return result

    def _check_uncached(self, expr: XPathExpr, context: Context, value) -> bool:
        self.checks += 1
        if isinstance(expr, LocationPath):
            return self._check_location_path(expr, context, value)
        if isinstance(expr, Step):
            return self._check_location_path(LocationPath(False, (expr,)), context, value)
        if isinstance(expr, BinaryOp):
            return self._check_binary(expr, context, value)
        if isinstance(expr, FunctionCall):
            return self._check_function(expr, context, value)
        if isinstance(expr, (Number, Literal, Negate)):
            return _scalar_equal(self._eval_scalar(expr, context), value)
        raise FragmentViolationError(
            "pWF/pXPath", [f"construct {type(expr).__name__} is not supported by the checker"]
        )

    # -- Table 1: location paths ----------------------------------------------------

    def _check_location_path(self, expr: LocationPath, context: Context, value) -> bool:
        if not isinstance(value, XMLNode):
            if value is True:
                # A location path in boolean position has exists-semantics
                # (footnote 3 of the paper): guess the witness node.
                return any(
                    self._check_location_path(expr, context, node)
                    for node in self._domain
                )
            return False
        start = self.document.root if expr.absolute else context.node
        if not expr.steps:
            return expr.absolute and value is self.document.root
        return self._check_steps(expr.steps, start, value)

    def _check_steps(self, steps: tuple[Step, ...], start: XMLNode, target: XMLNode) -> bool:
        key = (tuple(id(s) for s in steps), start.uid, target.uid)
        cached = self._steps_memo.get(key)
        if cached is not None:
            return cached
        self._steps_memo[key] = False
        result = self._check_steps_uncached(steps, start, target)
        self._steps_memo[key] = result
        return result

    def _check_steps_uncached(
        self, steps: tuple[Step, ...], start: XMLNode, target: XMLNode
    ) -> bool:
        head, rest = steps[0], steps[1:]
        if len(head.predicates) > 1:
            raise FragmentViolationError(
                "pWF/pXPath",
                ["iterated predicates [e1][e2]… are excluded (Definition 5.1(1))"],
            )
        witnesses = axis_step(start, head.axis, head.node_test.text())
        size = len(witnesses)
        for position, witness in enumerate(witnesses, start=1):
            self.checks += 1
            if rest:
                if not self._check_steps(rest, witness, target):
                    continue
            elif witness is not target:
                continue
            if head.predicates:
                predicate_context = Context(witness, position, size)
                if not self._check(head.predicates[0], predicate_context, True):
                    continue
            return True
        return False

    # -- Table 1: boolean and scalar operators --------------------------------------

    def _check_binary(self, expr: BinaryOp, context: Context, value) -> bool:
        if expr.op == "and":
            return (
                value is True
                and self._check(expr.left, context, True)
                and self._check(expr.right, context, True)
            )
        if expr.op == "or":
            return value is True and (
                self._check(expr.left, context, True)
                or self._check(expr.right, context, True)
            )
        if expr.op == "|":
            return isinstance(value, XMLNode) and (
                self._check(expr.left, context, value)
                or self._check(expr.right, context, value)
            )
        if expr.is_comparison():
            if value is not True:
                return False
            return self._check_comparison(expr, context)
        if expr.is_arithmetic():
            return _scalar_equal(self._eval_scalar(expr, context), value)
        raise FragmentViolationError("pWF/pXPath", [f"operator {expr.op!r} is not supported"])

    def _check_comparison(self, expr: BinaryOp, context: Context) -> bool:
        left_candidates = self._comparison_candidates(expr.left, context)
        right_candidates = self._comparison_candidates(expr.right, context)
        return any(
            value_compare(expr.op, left, right)
            for left in left_candidates
            for right in right_candidates
        )

    def _comparison_candidates(self, expr: XPathExpr, context: Context) -> list:
        """Candidate scalar values of one comparison operand.

        Node-set operands contribute the string-value of every node the
        operand can evaluate to (existential semantics); scalar operands
        contribute their single deterministic value.  Boolean operands are
        rejected, mirroring Definition 6.1(3).
        """
        operand_type = static_type(expr)
        if operand_type == "boolean":
            raise FragmentViolationError(
                "pXPath",
                ["comparisons with boolean operands are forbidden (Definition 6.1(3))"],
            )
        if operand_type == NODESET:
            return [
                node.string_value()
                for node in self._domain
                if self._check(expr, context, node)
            ]
        return [self._eval_scalar(expr, context)]

    def _check_function(self, expr: FunctionCall, context: Context, value) -> bool:
        if expr.name == "position":
            return _scalar_equal(float(context.position), value)
        if expr.name == "last":
            return _scalar_equal(float(context.size), value)
        if expr.name == "boolean" and len(expr.args) == 1:
            return value is True and self._check_exists(expr.args[0], context)
        if expr.name == "not" and len(expr.args) == 1:
            # After push_negations, not() only wraps node-set expressions
            # (Theorem 5.9's normal form): loop over dom, Theorem 5.9 style.
            return value is True and not self._check_exists(expr.args[0], context)
        if expr.name in ("true", "false"):
            return _scalar_equal(expr.name == "true", value)
        if expr.name in _DETERMINISTIC_FUNCTIONS or expr.name in (
            "substring",
            "substring-before",
            "substring-after",
            "translate",
        ):
            return _scalar_equal(self._eval_scalar(expr, context), value)
        raise FragmentViolationError(
            "pXPath",
            [f"function {expr.name}() is excluded from pWF/pXPath (Definition 6.1(2))"],
        )

    def _check_exists(self, expr: XPathExpr, context: Context) -> bool:
        """Does the (node-set-typed) expression select at least one node?"""
        if static_type(expr) != NODESET:
            return self._check(expr, context, True)
        return any(self._check(expr, context, node) for node in self._domain)

    # -- deterministic scalar evaluation -----------------------------------------------

    def _eval_scalar(self, expr: XPathExpr, context: Context):
        """Evaluate a scalar (number/string) pWF/pXPath expression deterministically.

        Scalars in pWF/pXPath are built from ``position()``, ``last()``,
        constants, bounded arithmetic and bounded ``concat``; their values
        fit in logarithmic space, which is why the NAuxPDA can carry them
        on its worktape.
        """
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Negate):
            return -float(self._eval_scalar(expr.operand, context))
        if isinstance(expr, FunctionCall):
            if expr.name == "position":
                return float(context.position)
            if expr.name == "last":
                return float(context.size)
            if expr.name in _DETERMINISTIC_FUNCTIONS:
                args = [self._eval_scalar(arg, context) for arg in expr.args]
                return _DETERMINISTIC_FUNCTIONS[expr.name](args)
            if expr.name == "substring":
                args = [self._eval_scalar(arg, context) for arg in expr.args]
                text = str(args[0])
                start = int(math.floor(float(args[1]) + 0.5))
                if len(args) >= 3:
                    length = int(math.floor(float(args[2]) + 0.5))
                    return text[max(start - 1, 0) : max(start - 1 + length, 0)]
                return text[max(start - 1, 0) :]
            if expr.name == "substring-before":
                haystack, needle = (str(self._eval_scalar(a, context)) for a in expr.args)
                index = haystack.find(needle)
                return haystack[:index] if index >= 0 else ""
            if expr.name == "substring-after":
                haystack, needle = (str(self._eval_scalar(a, context)) for a in expr.args)
                index = haystack.find(needle)
                return haystack[index + len(needle) :] if index >= 0 else ""
        if isinstance(expr, BinaryOp) and expr.is_arithmetic():
            left = float(self._eval_scalar(expr.left, context))
            right = float(self._eval_scalar(expr.right, context))
            return float(_ARITHMETIC[expr.op](left, right))
        raise FragmentViolationError(
            "pWF/pXPath",
            [
                f"expression {expr} is not a logspace-evaluable scalar "
                "(Definition 5.1(3) / 6.1(4))"
            ],
        )


def _value_key(value):
    if isinstance(value, XMLNode):
        return ("node", value.uid)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, float):
        return ("number", value)
    if isinstance(value, (int,)):
        return ("number", float(value))
    if isinstance(value, str):
        return ("string", value)
    raise XPathTypeError(f"unsupported result value of type {type(value).__name__}")


def _scalar_equal(computed, value) -> bool:
    if isinstance(computed, bool) or isinstance(value, bool):
        return computed is value
    if isinstance(computed, float) and isinstance(value, (int, float)):
        return computed == float(value)
    return computed == value
