"""Id-native linear-time evaluation of Core XPath (Proposition 2.7, second part).

Core XPath (Definition 2.5) has location paths, the navigational axes and
boolean conditions built from ``and``, ``or``, ``not`` and location paths.
The evaluator in this module runs in time O(|D| · |Q|), and — new since
the id-native rewrite — never touches a node object between parsing and
the final materialisation:

* frontiers and condition sets are
  :class:`~repro.xmlmodel.idset.IdSet` values over the document-order ids
  of the :class:`~repro.xmlmodel.index.DocumentIndex` (sorted id arrays,
  or bitmasks once a set passes the density threshold);
* each step applies its axis to the whole frontier in O(|D|) using the
  id-set kernels of the index (interval arithmetic for
  ``descendant``/``following``/``preceding``, array-chain sweeps for the
  rest), then restricts by the node test via a sorted-partition
  intersection — a single bitmask ``&`` on dense sets;
* every condition is compiled to the *id set of nodes satisfying it*
  (``E[bexpr]`` in the proof discussion), computed bottom-up; ``and`` /
  ``or`` / ``not`` become ``&`` / ``|`` / complement on those sets;
* a location path used as a condition is evaluated *backwards* through
  inverse axes, so it also costs one O(|D|) pass per step;
* condition sets are cached per sub-expression, so each of the |Q|
  sub-expressions contributes O(|D|) work;
* ids are pre-order ranks, so the final id array *is* document order —
  the result is materialised into nodes exactly once, at the API
  boundary (:meth:`CoreXPathEvaluator.evaluate_nodes`), with no sort.

The PR-1 set-of-node-objects implementation survives as
:class:`~repro.evaluation.core_nodeset.NodeSetCoreXPathEvaluator`; it is
the differential-testing baseline and handles the one case ids cannot —
context nodes outside the indexed tree (attribute nodes) — to which this
evaluator transparently falls back.

The evaluator rejects queries outside Core XPath with
:class:`~repro.errors.FragmentViolationError`; use the full-XPath
evaluators for anything richer.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import FragmentViolationError, XPathEvaluationError
from repro.evaluation.setaxes import NAVIGATIONAL_AXES, apply_axis_idset
from repro.xmlmodel.axes import inverse_axis
from repro.xmlmodel.document import Document
from repro.xmlmodel.idset import IdSet
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    Step,
    XPathExpr,
)
from repro.xpath.parser import parse


class CoreXPathEvaluator:
    """O(|D| · |Q|) evaluation of Core XPath queries, natively on id sets.

    One evaluator instance serves any number of queries against its
    document; condition sets are cached across queries, and
    ``axis_applications`` counts the set-at-a-time axis applications
    performed (the cost measure of the linear-time argument).

    >>> from repro.xmlmodel import parse_xml
    >>> document = parse_xml("<a><b><c/></b><b/></a>")
    >>> evaluator = CoreXPathEvaluator(document)
    >>> [node.tag for node in evaluator.evaluate_nodes("//b[child::c]")]
    ['b']
    >>> evaluator.evaluate_ids("//b")
    [2, 4]
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self.index = document.index
        self._universe = self.index.size
        self._condition_cache: dict[int, IdSet] = {}
        # The cache is keyed by id(expr); keep every cached expression alive
        # so ids are never reused by later, structurally different queries.
        self._pinned: dict[int, XPathExpr] = {}
        self._nodeset_fallback = None
        #: Number of set-at-a-time axis applications performed (cost measure).
        self.axis_applications = 0

    # -- public API ----------------------------------------------------------

    def evaluate_nodes(
        self,
        query: XPathExpr | str,
        context_nodes: Optional[Iterable[XMLNode]] = None,
    ) -> list[XMLNode]:
        """Evaluate a Core XPath query and return the result in document order.

        ``context_nodes`` is the set of context nodes for a relative query;
        it defaults to the document root (so absolute and relative queries
        both work out of the box).  This is the single point where ids are
        materialised back into nodes.
        """
        expr = parse(query) if isinstance(query, str) else query
        if context_nodes is None:
            starts = self._root_idset()
        else:
            nodes = list(context_nodes)
            try:
                starts = self.index.idset_from_nodes(nodes)
            except KeyError:
                # A context node without a document-order id (an attribute
                # node): only the node-set baseline can step from it.
                return self._fallback().evaluate_nodes(expr, nodes)
        return self.index.idset_to_node_list(self._evaluate_union(expr, starts))

    def evaluate_ids(
        self,
        query: XPathExpr | str,
        context_ids: Optional[Iterable[int]] = None,
    ) -> list[int]:
        """Evaluate a Core XPath query entirely on ids.

        Returns the selected document-order ids ascending (= document
        order).  This is the entry point for callers that stay id-native
        themselves — the planner uses it so ``engine="auto"`` touches node
        objects only once, at its own boundary.
        """
        expr = parse(query) if isinstance(query, str) else query
        if context_ids is None:
            starts = self._root_idset()
        else:
            members = list(context_ids)
            universe = self._universe
            if any(not 0 <= i < universe for i in members):
                raise XPathEvaluationError(
                    f"context ids must lie in [0, {universe}); got "
                    f"{[i for i in members if not 0 <= i < universe][:5]}"
                )
            starts = IdSet.from_iterable(members, universe)
        return self._evaluate_union(expr, starts).tolist()

    def condition_nodes(self, condition: XPathExpr | str) -> list[XMLNode]:
        """Return, in document order, the nodes at which ``condition`` holds.

        This is the set ``E[bexpr]`` of the linear-time algorithm and the
        paper's notation ``[[φ]]`` for condition expressions.
        """
        expr = parse(condition) if isinstance(condition, str) else condition
        return self.index.idset_to_node_list(self._condition_set(expr))

    # -- helpers --------------------------------------------------------------

    def _root_idset(self) -> IdSet:
        return IdSet.from_sorted([0], self._universe)  # the root's id is 0

    def _fallback(self):
        if self._nodeset_fallback is None:
            from repro.evaluation.core_nodeset import NodeSetCoreXPathEvaluator

            self._nodeset_fallback = NodeSetCoreXPathEvaluator(self.document)
        return self._nodeset_fallback

    # -- top level ------------------------------------------------------------

    def _evaluate_union(self, expr: XPathExpr, starts: IdSet) -> IdSet:
        if isinstance(expr, BinaryOp) and expr.op == "|":
            return self._evaluate_union(expr.left, starts) | self._evaluate_union(
                expr.right, starts
            )
        if isinstance(expr, LocationPath):
            return self._evaluate_path(expr, starts)
        raise FragmentViolationError(
            "Core XPath",
            [f"top-level expression must be a location path or union, got {type(expr).__name__}"],
        )

    # -- location paths --------------------------------------------------------

    def _evaluate_path(self, path: LocationPath, starts: IdSet) -> IdSet:
        frontier = self._root_idset() if path.absolute else starts
        for step in path.steps:
            frontier = self._apply_step(step, frontier)
            if not frontier:
                return frontier
        return frontier

    def _apply_step(self, step: Step, frontier: IdSet) -> IdSet:
        self._require_navigational(step)
        self.axis_applications += 1
        reached = apply_axis_idset(self.document, step.axis, frontier)
        selected = self.index.filter_idset(reached, step.axis, step.node_test.text())
        for predicate in step.predicates:
            if not selected:
                break
            selected = selected & self._condition_set(predicate)
        return selected

    # -- condition sets -----------------------------------------------------------

    def _condition_set(self, expr: XPathExpr) -> IdSet:
        cached = self._condition_cache.get(id(expr))
        if cached is not None:
            return cached
        result = self._compute_condition_set(expr)
        self._pinned[id(expr)] = expr
        self._condition_cache[id(expr)] = result
        return result

    def _compute_condition_set(self, expr: XPathExpr) -> IdSet:
        if isinstance(expr, BinaryOp) and expr.op == "and":
            return self._condition_set(expr.left) & self._condition_set(expr.right)
        if isinstance(expr, BinaryOp) and expr.op == "or":
            return self._condition_set(expr.left) | self._condition_set(expr.right)
        if isinstance(expr, FunctionCall) and expr.name == "not" and len(expr.args) == 1:
            return self._condition_set(expr.args[0]).complement()
        if isinstance(expr, FunctionCall) and expr.name == "true" and not expr.args:
            return IdSet.full(self._universe)
        if isinstance(expr, FunctionCall) and expr.name == "false" and not expr.args:
            return IdSet.empty(self._universe)
        if isinstance(expr, FunctionCall) and expr.name == "boolean" and len(expr.args) == 1:
            return self._condition_set(expr.args[0])
        if isinstance(expr, BinaryOp) and expr.op == "|":
            return self._condition_set(expr.left) | self._condition_set(expr.right)
        if isinstance(expr, LocationPath):
            return self._path_condition_set(expr)
        raise FragmentViolationError(
            "Core XPath",
            [
                "conditions may only use and/or/not and location paths; "
                f"found {type(expr).__name__} ({expr})"
            ],
        )

    def _path_condition_set(self, path: LocationPath) -> IdSet:
        """Ids from which ``path`` selects at least one node, via inverse axes."""
        if path.absolute:
            matches = self._evaluate_path(path, self._root_idset())
            universe = self._universe
            return IdSet.full(universe) if matches else IdSet.empty(universe)
        # Work backwards: witnesses is the set of ids y such that the steps
        # processed so far succeed when y is the node selected by the step
        # immediately before them.
        witnesses = IdSet.full(self._universe)
        for step in reversed(path.steps):
            self._require_navigational(step)
            satisfying = self.index.filter_idset(
                witnesses, step.axis, step.node_test.text()
            )
            for predicate in step.predicates:
                satisfying = satisfying & self._condition_set(predicate)
            self.axis_applications += 1
            witnesses = apply_axis_idset(
                self.document, inverse_axis(step.axis), satisfying
            )
        return witnesses

    # -- validation -----------------------------------------------------------------

    def _require_navigational(self, step: Step) -> None:
        if step.axis not in NAVIGATIONAL_AXES:
            raise FragmentViolationError(
                "Core XPath", [f"axis {step.axis!r} is not part of Core XPath"]
            )
