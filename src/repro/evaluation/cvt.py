"""The context-value-table dynamic-programming evaluator (Proposition 2.7).

This is the algorithm whose existence makes the combined complexity of full
XPath 1.0 polynomial: for every node of the query parse tree a
*context-value table* is maintained that maps evaluation contexts to the
value of that sub-expression, and every (sub-expression, context) pair is
computed at most once.

Two ingredients give the polynomial bound:

* **Sharing.**  The table lookup in :meth:`evaluate_expr` means a
  sub-expression is never re-evaluated for a context it has been evaluated
  in before — the paper's "one tuple for each meaningful context"
  (Theorem 7.2's proof sketch).
* **Set-at-a-time location paths.**  A location path is evaluated step by
  step over a *deduplicated* frontier of nodes, so the number of
  intermediate nodes never exceeds |D| regardless of how many navigation
  paths lead to them; the naive evaluator differs exactly here.

Context keys respect position-sensitivity: a sub-expression that does not
use ``position()``/``last()`` at its own level is tabulated per context
node only, which keeps tables small (this is the practical refinement the
authors describe in their companion papers [3, 4]).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.evaluation.base import BaseEvaluator
from repro.evaluation.context import Context
from repro.evaluation.values import NodeSet, XPathValue
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode, sort_document_order
from repro.xpath.analysis import is_position_sensitive
from repro.xpath.ast import LocationPath, Step, XPathExpr


class ContextValueTableEvaluator(BaseEvaluator):
    """Polynomial-time full-XPath evaluation via context-value tables."""

    def __init__(
        self, document: Document, variables: Optional[Mapping[str, XPathValue]] = None
    ) -> None:
        super().__init__(document, variables)
        self._tables: dict[int, dict[object, XPathValue]] = {}
        self._sensitivity: dict[int, bool] = {}
        # Tables are keyed by id(expr); pin every tabulated expression so a
        # garbage-collected AST can never hand its id (and hence its stale
        # table) to a structurally different expression parsed later.
        self._pinned: dict[int, XPathExpr] = {}

    # -- sharing wrapper --------------------------------------------------------

    def evaluate_expr(self, expr: XPathExpr, context: Context) -> XPathValue:
        self._pinned[id(expr)] = expr
        table = self._tables.setdefault(id(expr), {})
        key = self._context_key(expr, context)
        if key in table:
            return table[key]
        value = super().evaluate_expr(expr, context)
        table[key] = value
        return value

    def _context_key(self, expr: XPathExpr, context: Context):
        expr_id = id(expr)
        sensitive = self._sensitivity.get(expr_id)
        if sensitive is None:
            sensitive = is_position_sensitive(expr)
            self._sensitivity[expr_id] = sensitive
        return context.key() if sensitive else context.node_key()

    # -- introspection -------------------------------------------------------------

    def table_entries(self) -> int:
        """Total number of (sub-expression, context) pairs tabulated so far.

        This is the space measure the paper's Theorems 7.2/7.3 reason
        about; the data- and query-complexity benches report it alongside
        wall-clock time.
        """
        return sum(len(table) for table in self._tables.values())

    def table_count(self) -> int:
        """Number of distinct sub-expressions that own a table."""
        return len(self._tables)

    # -- location paths ---------------------------------------------------------------

    def evaluate_location_path(self, expr: LocationPath, context: Context) -> NodeSet:
        start = self.document.root if expr.absolute else context.node
        frontier: list[XMLNode] = [start]
        for step in expr.steps:
            frontier = self._apply_step_to_frontier(step, frontier)
        return NodeSet.from_ordered(frontier)

    def _apply_step_to_frontier(self, step: Step, frontier: list[XMLNode]) -> list[XMLNode]:
        """Apply one step to every frontier node and merge the results.

        The merge (document-order sort with duplicate elimination) is what
        bounds the frontier by |D| and hence keeps the whole evaluation
        polynomial.
        """
        collected: list[XMLNode] = []
        for node in frontier:
            collected.extend(self.apply_step_to_node(step, node))
        return sort_document_order(collected)
