"""Shared expression-evaluation machinery for the naive and DP evaluators.

The two full-XPath evaluators (:class:`repro.evaluation.naive.NaiveEvaluator`
and :class:`repro.evaluation.cvt.ContextValueTableEvaluator`) implement the
same W3C semantics and differ *only* in their evaluation strategy for
location paths and in whether (sub-expression, context) results are shared.
Everything strategy-independent — operator semantics, the core function
library, predicate filtering with positional renumbering, filter and path
expressions — lives here so the complexity difference between the two is
isolated to the two strategy hooks.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.errors import XPathEvaluationError, XPathTypeError
from repro.evaluation.context import Context, Environment, initial_context
from repro.evaluation.library import call_function
from repro.evaluation.values import (
    NodeSet,
    XPathValue,
    arithmetic,
    compare,
    negate,
    to_boolean,
)
from repro.xmlmodel.axes import axis_step, is_reverse_axis
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Negate,
    Number,
    PathExpr,
    Step,
    VariableReference,
    XPathExpr,
)
from repro.xpath.functions import validate_call
from repro.xpath.parser import parse


class BaseEvaluator:
    """Semantics shared by the naive and context-value-table evaluators.

    Parameters
    ----------
    document:
        The document queries are evaluated against.
    variables:
        Optional variable bindings for ``$name`` references.
    """

    def __init__(
        self, document: Document, variables: Optional[Mapping[str, XPathValue]] = None
    ) -> None:
        self.document = document
        self.env = Environment(document, dict(variables or {}))

    # -- public API -----------------------------------------------------------

    def evaluate(self, query: XPathExpr | str, context: Optional[Context] = None) -> XPathValue:
        """Evaluate ``query`` (AST or source text) and return its XPath value."""
        expr = parse(query) if isinstance(query, str) else query
        if context is None:
            context = initial_context(self.document)
        return self.evaluate_expr(expr, context)

    def evaluate_nodes(
        self, query: XPathExpr | str, context: Optional[Context] = None
    ) -> list[XMLNode]:
        """Evaluate ``query`` and return the resulting nodes in document order.

        Raises :class:`XPathTypeError` if the query does not produce a node-set.
        """
        value = self.evaluate(query, context)
        if not isinstance(value, NodeSet):
            raise XPathTypeError(
                f"query returned {type(value).__name__}, not a node-set"
            )
        return list(value.nodes)

    @property
    def operations(self) -> int:
        """Number of elementary evaluation operations performed so far."""
        return self.env.operations

    # -- dispatch -----------------------------------------------------------------

    def evaluate_expr(self, expr: XPathExpr, context: Context) -> XPathValue:
        """Evaluate ``expr`` in ``context``; subclasses may wrap this with sharing."""
        self.env.tick()
        if isinstance(expr, LocationPath):
            return self.evaluate_location_path(expr, context)
        if isinstance(expr, PathExpr):
            return self._evaluate_path_expr(expr, context)
        if isinstance(expr, FilterExpr):
            return self._evaluate_filter_expr(expr, context)
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr, context)
        if isinstance(expr, Negate):
            return negate(self.evaluate_expr(expr.operand, context))
        if isinstance(expr, FunctionCall):
            return self._evaluate_function_call(expr, context)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, VariableReference):
            return self.env.variable(expr.name)
        if isinstance(expr, Step):
            # A bare step only occurs when a Step is evaluated as a relative
            # location path of length one (the reductions build such ASTs).
            return self.evaluate_location_path(LocationPath(False, (expr,)), context)
        raise XPathTypeError(f"cannot evaluate {type(expr).__name__}")

    # -- strategy hook -------------------------------------------------------------

    def evaluate_location_path(self, expr: LocationPath, context: Context) -> NodeSet:
        """Evaluate a location path; implemented by each concrete evaluator."""
        raise NotImplementedError

    # -- strategy-independent constructs ----------------------------------------------

    def _evaluate_path_expr(self, expr: PathExpr, context: Context) -> NodeSet:
        start_value = self.evaluate_expr(expr.start, context)
        if not isinstance(start_value, NodeSet):
            raise XPathTypeError("the first operand of '/' must be a node-set")
        collected: list[XMLNode] = []
        for node in start_value:
            tail_value = self.evaluate_location_path(
                expr.tail, context.with_node(node)
            )
            collected.extend(tail_value.nodes)
        return NodeSet(collected)

    def _evaluate_filter_expr(self, expr: FilterExpr, context: Context) -> NodeSet:
        value = self.evaluate_expr(expr.primary, context)
        if not isinstance(value, NodeSet):
            raise XPathTypeError("predicates may only be applied to node-sets")
        nodes = list(value.nodes)
        for predicate in expr.predicates:
            nodes = self.filter_by_predicate(nodes, predicate)
        return NodeSet.from_ordered(nodes)

    def _evaluate_binary(self, expr: BinaryOp, context: Context) -> XPathValue:
        if expr.op == "or":
            if to_boolean(self.evaluate_expr(expr.left, context)):
                return True
            return to_boolean(self.evaluate_expr(expr.right, context))
        if expr.op == "and":
            if not to_boolean(self.evaluate_expr(expr.left, context)):
                return False
            return to_boolean(self.evaluate_expr(expr.right, context))
        left = self.evaluate_expr(expr.left, context)
        right = self.evaluate_expr(expr.right, context)
        if expr.op == "|":
            if not isinstance(left, NodeSet) or not isinstance(right, NodeSet):
                raise XPathTypeError("operands of '|' must be node-sets")
            return left.union(right)
        if expr.is_comparison():
            return compare(expr.op, left, right)
        if expr.is_arithmetic():
            return arithmetic(expr.op, left, right)
        raise XPathTypeError(f"unknown operator {expr.op!r}")

    def _evaluate_function_call(self, expr: FunctionCall, context: Context) -> XPathValue:
        validate_call(expr)
        args = [self.evaluate_expr(arg, context) for arg in expr.args]
        return call_function(expr.name, args, context, self.env)

    # -- predicates --------------------------------------------------------------------

    def filter_by_predicate(
        self, candidates: Sequence[XMLNode], predicate: XPathExpr
    ) -> list[XMLNode]:
        """Filter ``candidates`` (already in the relevant proximity order) by a predicate.

        A numeric predicate value selects the node at that proximity
        position; any other value is converted to boolean.
        """
        size = len(candidates)
        kept: list[XMLNode] = []
        for position, node in enumerate(candidates, start=1):
            value = self.evaluate_expr(predicate, Context(node, position, size))
            if isinstance(value, float):
                selected = value == float(position)
            else:
                selected = to_boolean(value)
            if selected:
                kept.append(node)
        return kept

    def apply_step_to_node(self, step: Step, node: XMLNode) -> list[XMLNode]:
        """Apply one location step to a single context node.

        Returns the selected nodes in axis order (the order ``position()``
        counts in); callers that need document order must sort.  When the
        document carries a :class:`~repro.xmlmodel.index.DocumentIndex` the
        navigational axes are enumerated from the index arrays instead of
        walking node objects; the attribute axis and attribute context
        nodes fall back to the object walk.
        """
        self.env.tick()
        candidates = self._step_candidates(step, node)
        self.env.tick(len(candidates))
        for predicate in step.predicates:
            candidates = self.filter_by_predicate(candidates, predicate)
        return candidates

    def _step_candidates(self, step: Step, node: XMLNode) -> list[XMLNode]:
        """Enumerate ``step``'s axis from ``node``, indexed when possible."""
        if step.axis != "attribute":
            index = getattr(self.document, "index", None)
            if index is not None:
                try:
                    node_id = index.id_of(node)
                except KeyError:
                    pass
                else:
                    return index.ids_to_node_list(
                        index.step_ids(node_id, step.axis, step.node_test.text())
                    )
        return axis_step(node, step.axis, step.node_test.text())
