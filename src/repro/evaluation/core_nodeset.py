"""The PR-1 node-set Core XPath evaluator, kept as the differential baseline.

This is the set-of-``XMLNode`` implementation of the linear-time Core
XPath algorithm that :class:`~repro.evaluation.core.CoreXPathEvaluator`
replaced when it went id-native: frontiers and condition sets are Python
sets of node objects, axis application goes through
:func:`repro.evaluation.setaxes.apply_axis_set` (indexed where possible,
object walk otherwise), and results are sorted into document order at the
end.  It remains exactly as correct as before and serves three purposes:

* the **differential baseline** the Hypothesis suite pits the id-native
  evaluator against (``tests/properties/test_property_idnative_core.py``);
* the **fallback** for context nodes outside the indexed tree (attribute
  nodes), which have no document-order id;
* the **baseline** of ``benchmarks/bench_idnative_core.py``, which
  measures and gates the id-native speedup.

The algorithm and complexity discussion live in
:mod:`repro.evaluation.core`; see ``docs/architecture.md`` for how the two
implementations relate.
"""


from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import FragmentViolationError
from repro.evaluation.setaxes import NAVIGATIONAL_AXES, apply_axis_set
from repro.xmlmodel.axes import inverse_axis, node_test_matches
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode, sort_document_order
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    Step,
    XPathExpr,
)
from repro.xpath.parser import parse


class NodeSetCoreXPathEvaluator:
    """The node-set (PR-1) form of the O(|D| · |Q|) Core XPath algorithm."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self._all_nodes: set[XMLNode] = set(document.nodes)
        self._condition_cache: dict[int, set[XMLNode]] = {}
        # The cache is keyed by id(expr); keep every cached expression alive
        # so ids are never reused by later, structurally different queries.
        self._pinned: dict[int, XPathExpr] = {}
        #: Number of set-at-a-time axis applications performed (cost measure).
        self.axis_applications = 0

    # -- public API ----------------------------------------------------------

    def evaluate_nodes(
        self,
        query: XPathExpr | str,
        context_nodes: Optional[Iterable[XMLNode]] = None,
    ) -> list[XMLNode]:
        """Evaluate a Core XPath query and return the result in document order.

        ``context_nodes`` is the set of context nodes for a relative query;
        it defaults to the document root (so absolute and relative queries
        both work out of the box).
        """
        expr = parse(query) if isinstance(query, str) else query
        starts = set(context_nodes) if context_nodes is not None else {self.document.root}
        result = self._evaluate_union(expr, starts)
        return sort_document_order(result)

    def condition_nodes(self, condition: XPathExpr | str) -> list[XMLNode]:
        """Return, in document order, the nodes at which ``condition`` holds.

        This is the set ``E[bexpr]`` of the linear-time algorithm and the
        paper's notation ``[[φ]]`` for condition expressions.
        """
        expr = parse(condition) if isinstance(condition, str) else condition
        return sort_document_order(self._condition_set(expr))

    # -- top level ------------------------------------------------------------

    def _evaluate_union(self, expr: XPathExpr, starts: set[XMLNode]) -> set[XMLNode]:
        if isinstance(expr, BinaryOp) and expr.op == "|":
            return self._evaluate_union(expr.left, starts) | self._evaluate_union(
                expr.right, starts
            )
        if isinstance(expr, LocationPath):
            return self._evaluate_path(expr, starts)
        raise FragmentViolationError(
            "Core XPath",
            [f"top-level expression must be a location path or union, got {type(expr).__name__}"],
        )

    # -- location paths --------------------------------------------------------

    def _evaluate_path(self, path: LocationPath, starts: set[XMLNode]) -> set[XMLNode]:
        frontier = {self.document.root} if path.absolute else set(starts)
        for step in path.steps:
            frontier = self._apply_step(step, frontier)
            if not frontier:
                return frontier
        return frontier

    def _apply_step(self, step: Step, frontier: set[XMLNode]) -> set[XMLNode]:
        self._require_navigational(step)
        self.axis_applications += 1
        reached = apply_axis_set(self.document, step.axis, frontier)
        test = step.node_test.text()
        selected = {
            node for node in reached if node_test_matches(node, step.axis, test)
        }
        for predicate in step.predicates:
            selected &= self._condition_set(predicate)
            if not selected:
                break
        return selected

    # -- condition sets -----------------------------------------------------------

    def _condition_set(self, expr: XPathExpr) -> set[XMLNode]:
        cached = self._condition_cache.get(id(expr))
        if cached is not None:
            return cached
        result = self._compute_condition_set(expr)
        self._pinned[id(expr)] = expr
        self._condition_cache[id(expr)] = result
        return result

    def _compute_condition_set(self, expr: XPathExpr) -> set[XMLNode]:
        if isinstance(expr, BinaryOp) and expr.op == "and":
            return self._condition_set(expr.left) & self._condition_set(expr.right)
        if isinstance(expr, BinaryOp) and expr.op == "or":
            return self._condition_set(expr.left) | self._condition_set(expr.right)
        if isinstance(expr, FunctionCall) and expr.name == "not" and len(expr.args) == 1:
            return self._all_nodes - self._condition_set(expr.args[0])
        if isinstance(expr, FunctionCall) and expr.name == "true" and not expr.args:
            return set(self._all_nodes)
        if isinstance(expr, FunctionCall) and expr.name == "false" and not expr.args:
            return set()
        if isinstance(expr, FunctionCall) and expr.name == "boolean" and len(expr.args) == 1:
            return self._condition_set(expr.args[0])
        if isinstance(expr, BinaryOp) and expr.op == "|":
            return self._condition_set(expr.left) | self._condition_set(expr.right)
        if isinstance(expr, LocationPath):
            return self._path_condition_set(expr)
        raise FragmentViolationError(
            "Core XPath",
            [
                "conditions may only use and/or/not and location paths; "
                f"found {type(expr).__name__} ({expr})"
            ],
        )

    def _path_condition_set(self, path: LocationPath) -> set[XMLNode]:
        """Nodes from which ``path`` selects at least one node, via inverse axes."""
        if path.absolute:
            matches = self._evaluate_path(path, {self.document.root})
            return set(self._all_nodes) if matches else set()
        # Work backwards: witnesses is the set of nodes y such that the steps
        # processed so far succeed when y is the node selected by the step
        # immediately before them.
        witnesses = set(self._all_nodes)
        for step in reversed(path.steps):
            self._require_navigational(step)
            test = step.node_test.text()
            satisfying = {
                node
                for node in witnesses
                if node_test_matches(node, step.axis, test)
            }
            for predicate in step.predicates:
                satisfying &= self._condition_set(predicate)
            self.axis_applications += 1
            witnesses = apply_axis_set(self.document, inverse_axis(step.axis), satisfying)
        return witnesses

    # -- validation -----------------------------------------------------------------

    def _require_navigational(self, step: Step) -> None:
        if step.axis not in NAVIGATIONAL_AXES:
            raise FragmentViolationError(
                "Core XPath", [f"axis {step.axis!r} is not part of Core XPath"]
            )
