"""XPath 1.0 value types, conversions, comparisons and arithmetic.

XPath 1.0 expressions evaluate to one of four types: node-set, number
(an IEEE double), string, or boolean.  This module implements those types
and the conversion, comparison and arithmetic rules of the recommendation
(sections 3.4, 3.5 and 4).  Every evaluator in the package shares these
semantics, which is what makes the cross-evaluator agreement tests
meaningful.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import XPathTypeError
from repro.xmlmodel.nodes import XMLNode, sort_document_order


class NodeSet:
    """An XPath node-set: a duplicate-free collection ordered in document order."""

    __slots__ = ("nodes",)

    def __init__(self, nodes: Iterable[XMLNode] = ()) -> None:
        self.nodes: list[XMLNode] = sort_document_order(nodes)

    @classmethod
    def from_ordered(cls, nodes: Sequence[XMLNode]) -> "NodeSet":
        """Build a node-set from nodes already known to be sorted and unique."""
        node_set = cls.__new__(cls)
        node_set.nodes = list(nodes)
        return node_set

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __bool__(self) -> bool:
        return bool(self.nodes)

    def __contains__(self, node: XMLNode) -> bool:
        return any(candidate is node for candidate in self.nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeSet):
            return NotImplemented
        return self.nodes == other.nodes

    def __hash__(self) -> int:
        return hash(tuple(node.uid for node in self.nodes))

    def first(self) -> XMLNode | None:
        """Return the first node in document order, or None if empty."""
        return self.nodes[0] if self.nodes else None

    def union(self, other: "NodeSet") -> "NodeSet":
        """Return the union of two node-sets (document order preserved)."""
        return NodeSet(list(self.nodes) + list(other.nodes))

    def string_values(self) -> list[str]:
        """Return the string-value of every member, in document order."""
        return [node.string_value() for node in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeSet({self.nodes!r})"


#: The Python-level union of XPath value types.
XPathValue = NodeSet | float | str | bool


# ---------------------------------------------------------------------------
# Conversions (XPath 1.0 section 4)
# ---------------------------------------------------------------------------


def to_boolean(value: XPathValue) -> bool:
    """Convert ``value`` to boolean with the rules of the ``boolean()`` function."""
    if isinstance(value, bool):
        return value
    if isinstance(value, NodeSet):
        return len(value) > 0
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    raise XPathTypeError(f"cannot convert {type(value).__name__} to boolean")


def to_number(value: XPathValue) -> float:
    """Convert ``value`` to a number with the rules of the ``number()`` function."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        return _string_to_number(value)
    if isinstance(value, NodeSet):
        return _string_to_number(to_string(value))
    raise XPathTypeError(f"cannot convert {type(value).__name__} to number")


def to_string(value: XPathValue) -> str:
    """Convert ``value`` to a string with the rules of the ``string()`` function."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, NodeSet):
        first = value.first()
        return first.string_value() if first is not None else ""
    raise XPathTypeError(f"cannot convert {type(value).__name__} to string")


def _string_to_number(text: str) -> float:
    stripped = text.strip()
    if not stripped:
        return float("nan")
    try:
        return float(stripped)
    except ValueError:
        return float("nan")


def format_number(value: float) -> str:
    """Format a number the way XPath's ``string()`` does."""
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "Infinity"
    if value == -math.inf:
        return "-Infinity"
    if value == int(value):
        return str(int(value))
    return repr(value)


# ---------------------------------------------------------------------------
# Comparisons (XPath 1.0 section 3.4)
# ---------------------------------------------------------------------------

_NUMERIC_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """Evaluate ``left op right`` with XPath 1.0's existential comparison rules."""
    if op not in _NUMERIC_COMPARATORS:
        raise XPathTypeError(f"unknown comparison operator {op!r}")
    left_is_set = isinstance(left, NodeSet)
    right_is_set = isinstance(right, NodeSet)
    if left_is_set and right_is_set:
        return _compare_two_node_sets(op, left, right)
    if left_is_set:
        return _compare_node_set_to_value(op, left, right, flipped=False)
    if right_is_set:
        return _compare_node_set_to_value(_flip(op), right, left, flipped=False)
    return _compare_scalars(op, left, right)


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def _compare_two_node_sets(op: str, left: NodeSet, right: NodeSet) -> bool:
    left_values = left.string_values()
    right_values = right.string_values()
    if op in ("=", "!="):
        return any(
            _NUMERIC_COMPARATORS[op](lv, rv) for lv in left_values for rv in right_values
        )
    return any(
        _NUMERIC_COMPARATORS[op](_string_to_number(lv), _string_to_number(rv))
        for lv in left_values
        for rv in right_values
    )


def _compare_node_set_to_value(op: str, node_set: NodeSet, value: XPathValue, flipped: bool) -> bool:
    comparator = _NUMERIC_COMPARATORS[op]
    if isinstance(value, bool):
        return comparator(to_number(to_boolean(node_set)), to_number(value)) if op not in ("=", "!=") else comparator(to_boolean(node_set), value)
    if isinstance(value, float) or op not in ("=", "!="):
        target = to_number(value)
        return any(comparator(_string_to_number(sv), target) for sv in node_set.string_values())
    # string compared with = or !=
    return any(comparator(sv, value) for sv in node_set.string_values())


def _compare_scalars(op: str, left: XPathValue, right: XPathValue) -> bool:
    comparator = _NUMERIC_COMPARATORS[op]
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            return comparator(to_boolean(left), to_boolean(right))
        if isinstance(left, float) or isinstance(right, float):
            return comparator(to_number(left), to_number(right))
        return comparator(to_string(left), to_string(right))
    return comparator(to_number(left), to_number(right))


# ---------------------------------------------------------------------------
# Arithmetic (XPath 1.0 section 3.5)
# ---------------------------------------------------------------------------


def arithmetic(op: str, left: XPathValue, right: XPathValue) -> float:
    """Evaluate the arithmetic operator ``op`` on two values."""
    a = to_number(left)
    b = to_number(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "div":
        if b == 0.0:
            if math.isnan(a) or a == 0.0:
                return float("nan")
            return math.inf * math.copysign(1.0, a) * math.copysign(1.0, b)
        return a / b
    if op == "mod":
        if b == 0.0 or math.isnan(a) or math.isnan(b) or math.isinf(a):
            return float("nan")
        return math.fmod(a, b)
    raise XPathTypeError(f"unknown arithmetic operator {op!r}")


def negate(value: XPathValue) -> float:
    """Evaluate unary minus."""
    return -to_number(value)


def xpath_round(value: float) -> float:
    """Round to the nearest integer, ties towards positive infinity (XPath rule)."""
    if math.isnan(value) or math.isinf(value):
        return value
    return math.floor(value + 0.5)
