"""Evaluation engines: values, contexts, and the four evaluators of the paper."""

from repro.evaluation.api import (
    ENGINES,
    PlannedEvaluator,
    evaluate,
    evaluate_nodes,
    make_evaluator,
    query_selects,
)
from repro.evaluation.context import Context, Environment, initial_context
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.core_nodeset import NodeSetCoreXPathEvaluator
from repro.evaluation.cvt import ContextValueTableEvaluator
from repro.evaluation.naive import NaiveEvaluator
from repro.evaluation.singleton import (
    DEFAULT_MAX_NEGATION_DEPTH,
    SingletonSuccessChecker,
)
from repro.evaluation.values import (
    NodeSet,
    XPathValue,
    arithmetic,
    compare,
    format_number,
    to_boolean,
    to_number,
    to_string,
)

__all__ = [
    "DEFAULT_MAX_NEGATION_DEPTH",
    "ENGINES",
    "Context",
    "ContextValueTableEvaluator",
    "CoreXPathEvaluator",
    "Environment",
    "NaiveEvaluator",
    "NodeSet",
    "NodeSetCoreXPathEvaluator",
    "PlannedEvaluator",
    "SingletonSuccessChecker",
    "XPathValue",
    "arithmetic",
    "compare",
    "evaluate",
    "evaluate_nodes",
    "format_number",
    "initial_context",
    "make_evaluator",
    "query_selects",
    "to_boolean",
    "to_number",
    "to_string",
]
