"""The complexity-class landscape of the paper (Section 2.1 and Figure 1).

This module models the chain NC¹ ⊆ L ⊆ NL ⊆ LOGCFL ⊆ NC² ⊆ NC ⊆ P used
throughout the paper, the notion of a completeness result, and the
fragment-to-complexity assignment of Figure 1 together with the fragment
inclusion arrows.  The benchmark ``bench_figure1_fragments`` renders these
structures as the textual analogue of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The inclusion chain of Section 2.1, from smallest to largest.
CLASS_CHAIN = ("NC1", "L", "NL", "LOGCFL", "NC2", "NC", "P")

#: Human-readable definitions, used by documentation and the Figure 1 bench.
CLASS_DESCRIPTIONS = {
    "NC1": "logarithmic-depth bounded fan-in circuits",
    "L": "deterministic logarithmic space",
    "NL": "nondeterministic logarithmic space",
    "LOGCFL": "problems L-reducible to a context-free language (= SAC1)",
    "NC2": "log^2-depth bounded fan-in circuits",
    "NC": "polylog time on polynomially many processors",
    "P": "deterministic polynomial time",
}

#: Classes the paper treats as "highly parallelizable" (inside NC).
PARALLELIZABLE_CLASSES = frozenset({"NC1", "L", "NL", "LOGCFL", "NC2", "NC"})


def class_index(name: str) -> int:
    """Return the position of ``name`` in the inclusion chain."""
    try:
        return CLASS_CHAIN.index(name)
    except ValueError:
        raise ValueError(f"unknown complexity class {name!r}") from None


def is_contained_in(smaller: str, larger: str) -> bool:
    """Return True if ``smaller`` ⊆ ``larger`` in the chain of Section 2.1."""
    return class_index(smaller) <= class_index(larger)


def is_parallelizable(name: str) -> bool:
    """Return True if the class is within NC (the paper's parallelizability notion)."""
    return name in PARALLELIZABLE_CLASSES


@dataclass(frozen=True)
class ComplexityAssignment:
    """One row of Figure 1: a fragment, its class, and whether hardness is known."""

    fragment: str
    complexity_class: str
    complete: bool
    theorem: str

    @property
    def label(self) -> str:
        """The label used in Figure 1 (e.g. ``"LOGCFL-complete"``)."""
        suffix = "-complete" if self.complete else ""
        return f"{self.complexity_class}{suffix}"

    @property
    def parallelizable(self) -> bool:
        """True if membership places the fragment inside NC."""
        return is_parallelizable(self.complexity_class)


#: The combined-complexity results of Figure 1, with their theorems.
FIGURE1_ASSIGNMENTS = (
    ComplexityAssignment("PF", "NL", True, "Theorem 4.3"),
    ComplexityAssignment("positive Core XPath", "LOGCFL", True, "Theorems 4.1 and 4.2"),
    ComplexityAssignment("pWF", "LOGCFL", False, "Theorem 5.5"),
    ComplexityAssignment("pXPath", "LOGCFL", True, "Theorem 6.2 (hardness from Thm 4.2)"),
    ComplexityAssignment("Core XPath", "P", True, "Theorem 3.2"),
    ComplexityAssignment("WF", "P", True, "Theorem 3.2 (membership from Prop. 2.7)"),
    ComplexityAssignment("XPath", "P", True, "Theorem 3.2 (membership from Prop. 2.7)"),
)

#: Fragment inclusion arrows of Figure 1 (an arrow L1 → L2 means L1 ⊆ L2).
FIGURE1_INCLUSIONS = (
    ("PF", "positive Core XPath"),
    ("positive Core XPath", "pWF"),
    ("positive Core XPath", "Core XPath"),
    ("pWF", "WF"),
    ("pWF", "pXPath"),
    ("Core XPath", "WF"),
    ("WF", "XPath"),
    ("pXPath", "XPath"),
)

#: The other complexity measures of Section 7.
DATA_COMPLEXITY = {
    "XPath": ComplexityAssignment("XPath (data complexity)", "L", False, "Theorem 7.2"),
    "PF": ComplexityAssignment("PF (data complexity)", "L", True, "Theorems 7.1 and 7.2"),
}
QUERY_COMPLEXITY = {
    "XPath without * and concat": ComplexityAssignment(
        "XPath w/o multiplication and concat (query complexity)", "L", False, "Theorem 7.3"
    ),
}


def figure1_assignment(fragment: str) -> ComplexityAssignment:
    """Return the Figure 1 assignment for ``fragment``."""
    for assignment in FIGURE1_ASSIGNMENTS:
        if assignment.fragment == fragment:
            return assignment
    raise ValueError(f"unknown fragment {fragment!r}")


def render_figure1() -> str:
    """Render Figure 1 as text: one line per fragment plus the inclusion arrows."""
    lines = ["Combined complexity of XPath fragments (Figure 1):", ""]
    for assignment in FIGURE1_ASSIGNMENTS:
        marker = "parallelizable" if assignment.parallelizable else "inherently sequential (unless P ⊆ NC)"
        lines.append(
            f"  {assignment.fragment:<22} {assignment.label:<18} {marker}  [{assignment.theorem}]"
        )
    lines.append("")
    lines.append("Fragment inclusions (L1 -> L2 means L1 is a fragment of L2):")
    for smaller, larger in FIGURE1_INCLUSIONS:
        lines.append(f"  {smaller} -> {larger}")
    return "\n".join(lines)
