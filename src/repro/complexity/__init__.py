"""Complexity-class modelling (Figure 1) and empirical scaling measurement."""

from repro.complexity.classes import (
    CLASS_CHAIN,
    CLASS_DESCRIPTIONS,
    DATA_COMPLEXITY,
    FIGURE1_ASSIGNMENTS,
    FIGURE1_INCLUSIONS,
    PARALLELIZABLE_CLASSES,
    QUERY_COMPLEXITY,
    ComplexityAssignment,
    class_index,
    figure1_assignment,
    is_contained_in,
    is_parallelizable,
    render_figure1,
)
from repro.complexity.measures import (
    ScalingSeries,
    doubling_ratios,
    fit_exponential,
    fit_power_law,
    operations_per_input,
)

__all__ = [
    "CLASS_CHAIN",
    "CLASS_DESCRIPTIONS",
    "ComplexityAssignment",
    "DATA_COMPLEXITY",
    "FIGURE1_ASSIGNMENTS",
    "FIGURE1_INCLUSIONS",
    "PARALLELIZABLE_CLASSES",
    "QUERY_COMPLEXITY",
    "ScalingSeries",
    "class_index",
    "doubling_ratios",
    "figure1_assignment",
    "fit_exponential",
    "fit_power_law",
    "is_contained_in",
    "is_parallelizable",
    "operations_per_input",
    "render_figure1",
]
