"""Empirical complexity measurement helpers.

The paper makes asymptotic claims (linear, polynomial, exponential);
this module provides the small statistical toolbox the benchmarks use to
turn measured (size, cost) series into those judgements:

* :func:`fit_power_law` — least-squares fit of ``cost ≈ c · size^k`` on a
  log-log scale, returning the exponent ``k`` (≈1 for the Core XPath
  linear-time claim, ≈ constant-degree polynomial for the DP evaluator);
* :func:`fit_exponential` — least-squares fit of ``cost ≈ c · b^size``
  returning the base ``b`` (> 1 indicates exponential blow-up, the naive
  evaluator's signature);
* :func:`doubling_ratios` — successive cost ratios, the most readable
  evidence of exponential behaviour;
* :class:`ScalingSeries` — a labelled (size, cost) series with pretty
  printing used by every benchmark's textual output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def fit_power_law(sizes: Sequence[float], costs: Sequence[float]) -> tuple[float, float]:
    """Fit ``cost = c * size**k`` by linear regression in log-log space.

    Returns ``(k, c)``.  Zero or negative observations are ignored (they
    carry no information about the asymptotic growth).
    """
    points = [
        (math.log(size), math.log(cost))
        for size, cost in zip(sizes, costs)
        if size > 0 and cost > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive observations to fit a power law")
    slope, intercept = _linear_regression(points)
    return slope, math.exp(intercept)


def fit_exponential(sizes: Sequence[float], costs: Sequence[float]) -> tuple[float, float]:
    """Fit ``cost = c * b**size`` by linear regression in semi-log space.

    Returns ``(b, c)``; ``b`` noticeably above 1 indicates exponential growth.
    """
    points = [
        (float(size), math.log(cost)) for size, cost in zip(sizes, costs) if cost > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive observations to fit an exponential")
    slope, intercept = _linear_regression(points)
    return math.exp(slope), math.exp(intercept)


def _linear_regression(points: Sequence[tuple[float, float]]) -> tuple[float, float]:
    count = len(points)
    mean_x = sum(x for x, _ in points) / count
    mean_y = sum(y for _, y in points) / count
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    if denominator == 0:
        raise ValueError("all x values identical; cannot fit a slope")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / denominator
    intercept = mean_y - slope * mean_x
    return slope, intercept


def doubling_ratios(costs: Sequence[float]) -> list[float]:
    """Return successive ratios cost[i+1] / cost[i] (0 entries are skipped)."""
    ratios = []
    for previous, current in zip(costs, costs[1:]):
        if previous > 0:
            ratios.append(current / previous)
    return ratios


@dataclass
class ScalingSeries:
    """A labelled series of (size, cost) measurements with analysis helpers."""

    label: str
    size_label: str = "size"
    cost_label: str = "cost"
    sizes: list[float] = field(default_factory=list)
    costs: list[float] = field(default_factory=list)

    def add(self, size: float, cost: float) -> None:
        """Record one measurement."""
        self.sizes.append(float(size))
        self.costs.append(float(cost))

    def power_law_exponent(self) -> float:
        """Fitted exponent k of cost ≈ c·size^k."""
        return fit_power_law(self.sizes, self.costs)[0]

    def exponential_base(self) -> float:
        """Fitted base b of cost ≈ c·b^size."""
        return fit_exponential(self.sizes, self.costs)[0]

    def ratios(self) -> list[float]:
        """Successive cost ratios."""
        return doubling_ratios(self.costs)

    def format_table(self) -> str:
        """Render the series as an aligned text table."""
        lines = [f"{self.label}", f"  {self.size_label:>12}  {self.cost_label:>16}"]
        for size, cost in zip(self.sizes, self.costs):
            size_text = f"{int(size)}" if float(size).is_integer() else f"{size:.3g}"
            lines.append(f"  {size_text:>12}  {cost:>16.6g}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line growth summary (power-law exponent and, if sensible, ratios)."""
        try:
            exponent = self.power_law_exponent()
            return f"{self.label}: cost ~ size^{exponent:.2f}"
        except ValueError:
            return f"{self.label}: insufficient data"


def operations_per_input(series: ScalingSeries) -> list[float]:
    """Return cost/size for each observation (flat ⇒ linear scaling)."""
    return [cost / size if size else math.nan for size, cost in zip(series.sizes, series.costs)]
