"""Batch evaluation wrappers over the process-default engine.

:func:`evaluate_many` is the classic high-throughput entry point: it
compiles (or recalls) a plan per query, forces the shared
:class:`~repro.xmlmodel.index.DocumentIndex` to exist before the first
query runs, and reuses evaluator instances across the whole batch so
context-value tables accumulate instead of being rebuilt.

Since the :class:`~repro.engine.XPathEngine` façade landed, the plan
cache and counters live on the process-default engine
(:func:`repro.engine.default_engine`) rather than in module globals: the
functions here are thin wrappers that keep the historic
list-of-bare-values signature.  They evaluate *detached* — the engine
never retains the document, so transient documents stay collectable
exactly as before the façade existed; register documents with an engine
(`engine.add`) to opt into cross-call evaluator pooling.  Passing an
explicit ``cache`` opts out of the default engine entirely and runs the
batch against that cache alone (no stats) — mainly for tests that need
isolated counters.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.evaluation.context import Context
from repro.evaluation.values import XPathValue
from repro.planner.cache import PlanCache
from repro.planner.plan import QueryPlan
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import XPathExpr


def default_plan_cache() -> PlanCache:
    """Return the process-default plan cache (the default engine's).

    The returned object is shared with concurrently running evaluations;
    read its :meth:`~repro.planner.cache.PlanCache.stats` freely, but
    mutate it through :func:`clear_plan_cache` (which takes the engine's
    plan lock) rather than calling ``.clear()`` on it directly.
    """
    from repro.engine import default_engine

    return default_engine().plan_cache


def clear_plan_cache() -> None:
    """Clear the process-default plan cache (mainly for tests)."""
    from repro.engine import default_engine

    default_engine().clear_plan_cache()


def get_plan(
    query: XPathExpr | str, cache: Optional[PlanCache] = None
) -> QueryPlan:
    """Return the (cached) plan for ``query``.

    Uses the process-default engine's cache unless ``cache`` is given.
    """
    if cache is not None:
        return cache.plan(query)
    from repro.engine import default_engine

    return default_engine().get_plan(query)


def evaluate_many(
    document: Document,
    queries: Iterable[XPathExpr | str],
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    cache: Optional[PlanCache] = None,
) -> list[XPathValue | list[XMLNode] | bool]:
    """Evaluate ``queries`` against ``document``, sharing all per-document work.

    One :class:`~repro.xmlmodel.index.DocumentIndex` is built up front and
    one evaluator per engine is reused for the whole batch, so the
    marginal cost of the i-th query is evaluation only — no re-parsing,
    re-classification, re-indexing or evaluator construction.

    Returns the per-query results in input order, with the same result
    conventions as :meth:`QueryPlan.run`.

    Examples
    --------
    >>> from repro.xmlmodel import parse_xml
    >>> document = parse_xml("<a><b/><b><c/></b></a>")
    >>> [r if not isinstance(r, list) else len(r) for r in
    ...  evaluate_many(document, ["//b", "//b[child::c]", "count(//b)"])]
    [2, 1, 2.0]
    """
    if cache is not None:
        return _evaluate_many_with_cache(
            document, queries, cache, context, variables, ids=False
        )
    from repro.engine import default_engine

    engine = default_engine()
    document.index  # build the shared index before the first query
    evaluators: dict[str, object] = {}  # shared for the batch, then dropped
    return [
        engine.evaluate_detached(
            query, document, context=context, variables=variables,
            evaluators=evaluators,
        ).value
        for query in queries
    ]


def evaluate_many_ids(
    document: Document,
    queries: Iterable[XPathExpr | str],
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    cache: Optional[PlanCache] = None,
) -> list[list[int]]:
    """Like :func:`evaluate_many`, but return document-order ids per query.

    Core XPath queries stay id-native end-to-end — no node objects are
    materialised at all — which makes this the preferred form for callers
    that post-process results positionally (serving layers, join
    pipelines).  Queries must all produce node-sets; a scalar-producing
    query raises :class:`~repro.errors.XPathEvaluationError`.
    """
    if cache is not None:
        return _evaluate_many_with_cache(
            document, queries, cache, context, variables, ids=True
        )
    from repro.engine import default_engine

    engine = default_engine()
    document.index  # build the shared index before the first query
    evaluators: dict[str, object] = {}  # shared for the batch, then dropped
    return [
        engine.evaluate_detached(
            query, document, context=context, variables=variables,
            evaluators=evaluators, ids=True,
        ).ids
        for query in queries
    ]


def evaluate_many_stored(
    store,
    key: str,
    queries: Iterable[XPathExpr | str],
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    ids: bool = False,
    mmap: bool = False,
) -> list:
    """Hydrate ``key`` from a corpus store and evaluate the batch on it.

    The zero-rebuild batch path: the document (and its evaluation-ready
    index) comes out of ``store`` as a snapshot load — no XML parse, no
    index construction — and is registered with the process-default
    engine keyed by its snapshot hash, so consecutive batches against the
    same key share the hydration, its evaluator pools and the compiled
    plans.  With ``ids=True`` results are document-order id lists (the
    id-native wire format); otherwise the :meth:`QueryPlan.run` value
    convention applies.

    Examples
    --------
    >>> import tempfile
    >>> from repro.store import CorpusStore
    >>> with tempfile.TemporaryDirectory() as root:
    ...     entry = CorpusStore(root).put("<a><b/><b><c/></b></a>", key="doc")
    ...     evaluate_many_stored(CorpusStore(root), "doc", ["//b", "//b[child::c]"], ids=True)
    [[2, 3], [3]]
    """
    from repro.engine import default_engine

    engine = default_engine()
    handle = engine.add_from_store(key, store=store, mmap=mmap)
    results = [
        engine.evaluate(
            query, handle, context=context, variables=variables, ids=ids
        )
        for query in queries
    ]
    return [result.ids if ids else result.value for result in results]


def evaluate_many_sharded(
    store,
    requests: Iterable[tuple],
    workers: int = 4,
    ids: bool = False,
    mmap: bool = True,
    start_method: Optional[str] = None,
) -> list:
    """Evaluate ``(query, store key)`` pairs across worker processes.

    The one-shot form of the cross-process serving tier
    (:class:`repro.serving.ShardedPool`): documents are sharded over
    ``workers`` processes by snapshot content hash, each worker hydrates
    its shard from ``store`` (mmap'd — no parse, no index build) and
    keeps its own plan cache, and queries/results travel as the
    id-native wire format — the cross-process analogue of
    :func:`evaluate_many_ids`'s batch contract.  Results come back in
    input order under the usual conventions (``ids=True``: document-order
    id lists; otherwise :meth:`QueryPlan.run` values, with node-sets
    materialised from a parent-side hydration of the same snapshot).

    Keeping a pool warm across many batches is the engine's job —
    :meth:`repro.engine.XPathEngine.serve` — this function pays worker
    startup per call.

    Examples
    --------
    >>> import tempfile
    >>> from repro.store import CorpusStore
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = CorpusStore(root)
    ...     _ = store.put("<a><b/><b><c/></b></a>", key="doc")
    ...     _ = store.put("<r><x/><x/></r>", key="other")
    ...     (evaluate_many_sharded(
    ...          store, [("//b", "doc"), ("//b[child::c]", "doc")],
    ...          workers=2, ids=True,
    ...      ), evaluate_many_sharded(store, [("count(//x)", "other")]))
    ([[2, 3], [3]], [2.0])
    """
    from repro.serving import ShardedPool

    with ShardedPool(
        store, workers=workers, mmap=mmap, start_method=start_method
    ) as pool:
        results = pool.evaluate_batch(requests, ids=ids)
        return [result.ids if ids else result.value for result in results]


def _evaluate_many_with_cache(
    document: Document,
    queries: Iterable[XPathExpr | str],
    cache: PlanCache,
    context: Optional[Context],
    variables: Optional[Mapping[str, XPathValue]],
    ids: bool,
) -> list:
    """The engine-free batch path used when an explicit cache is supplied."""
    document.index  # build the shared index before the first query
    evaluators: dict[str, object] = {}
    runner = "run_ids" if ids else "run"
    return [
        getattr(cache.plan(query), runner)(
            document, context=context, variables=variables, evaluators=evaluators
        )
        for query in queries
    ]
