"""Batch evaluation and the module-wide default plan cache.

:func:`evaluate_many` is the high-throughput entry point: it compiles (or
recalls) a plan per query, forces the shared
:class:`~repro.xmlmodel.index.DocumentIndex` to exist before the first
query runs, and reuses one evaluator instance per engine across the whole
batch so context-value tables accumulate instead of being rebuilt.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.evaluation.context import Context
from repro.evaluation.values import XPathValue
from repro.planner.cache import PlanCache
from repro.planner.plan import QueryPlan
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import XPathExpr

_DEFAULT_CACHE = PlanCache(maxsize=512)


def default_plan_cache() -> PlanCache:
    """Return the process-wide plan cache used when none is passed."""
    return _DEFAULT_CACHE


def clear_plan_cache() -> None:
    """Clear the process-wide plan cache (mainly for tests)."""
    _DEFAULT_CACHE.clear()


def get_plan(
    query: XPathExpr | str, cache: Optional[PlanCache] = None
) -> QueryPlan:
    """Return the (cached) plan for ``query``.

    Uses the process-wide default cache unless ``cache`` is given.
    """
    return (_DEFAULT_CACHE if cache is None else cache).plan(query)


def evaluate_many(
    document: Document,
    queries: Iterable[XPathExpr | str],
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    cache: Optional[PlanCache] = None,
) -> list[XPathValue | list[XMLNode] | bool]:
    """Evaluate ``queries`` against ``document``, sharing all per-document work.

    One :class:`~repro.xmlmodel.index.DocumentIndex` is built up front and
    one evaluator per engine is reused for the whole batch, so the
    marginal cost of the i-th query is evaluation only — no re-parsing,
    re-classification, re-indexing or evaluator construction.

    Returns the per-query results in input order, with the same result
    conventions as :meth:`QueryPlan.run`.

    Examples
    --------
    >>> from repro.xmlmodel import parse_xml
    >>> document = parse_xml("<a><b/><b><c/></b></a>")
    >>> [r if not isinstance(r, list) else len(r) for r in
    ...  evaluate_many(document, ["//b", "//b[child::c]", "count(//b)"])]
    [2, 1, 2.0]
    """
    plan_cache = _DEFAULT_CACHE if cache is None else cache
    document.index  # build the shared index before the first query
    evaluators: dict[str, object] = {}
    return [
        plan_cache.plan(query).run(
            document, context=context, variables=variables, evaluators=evaluators
        )
        for query in queries
    ]


def evaluate_many_ids(
    document: Document,
    queries: Iterable[XPathExpr | str],
    context: Optional[Context] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    cache: Optional[PlanCache] = None,
) -> list[list[int]]:
    """Like :func:`evaluate_many`, but return document-order ids per query.

    Core XPath queries stay id-native end-to-end — no node objects are
    materialised at all — which makes this the preferred form for callers
    that post-process results positionally (serving layers, join
    pipelines).  Queries must all produce node-sets; a scalar-producing
    query raises :class:`~repro.errors.XPathEvaluationError`.
    """
    plan_cache = _DEFAULT_CACHE if cache is None else cache
    document.index  # build the shared index before the first query
    evaluators: dict[str, object] = {}
    return [
        plan_cache.plan(query).run_ids(
            document, context=context, variables=variables, evaluators=evaluators
        )
        for query in queries
    ]
