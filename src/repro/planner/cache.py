"""An LRU cache of compiled query plans keyed by query text.

Serving the same queries over and over is the expected production shape
(the ROADMAP's "heavy traffic" north star), and parsing plus fragment
classification is pure per-query work — so it is done once and memoised
here.  The cache is a plain ordered-dict LRU with explicit hit / miss /
eviction counters, sized in number of plans.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.fragments.classify import DEFAULT_NESTING_BOUND
from repro.planner.plan import QueryPlan, plan_query
from repro.telemetry.trace import Trace
from repro.xpath.ast import XPathExpr


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a :class:`PlanCache`'s counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """LRU cache mapping query text to :class:`QueryPlan`.

    Parameters
    ----------
    maxsize:
        Maximum number of plans kept; the least recently used plan is
        evicted when a new plan would exceed it.  Must be positive.
    nesting_bound:
        The arithmetic-nesting bound forwarded to the fragment
        classifiers (Definitions 5.1(3)/6.1(4)).

    Examples
    --------
    The ``hits`` / ``misses`` / ``evictions`` counters accumulate over
    the cache's lifetime; :meth:`stats` snapshots them (also printed by
    ``python -m repro plan "<query>" --stats`` for the process-wide
    cache):

    >>> cache = PlanCache(maxsize=2)
    >>> cache.plan("//a").engine, cache.plan("//a").engine
    ('core', 'core')
    >>> stats = cache.stats()
    >>> (stats.hits, stats.misses, stats.size, stats.maxsize)
    (1, 1, 1, 2)
    >>> stats.hit_rate
    0.5
    >>> _ = (cache.plan("//b"), cache.plan("//c"))   # overflows maxsize=2
    >>> cache.stats().evictions
    1
    """

    def __init__(
        self, maxsize: int = 256, nesting_bound: int = DEFAULT_NESTING_BOUND
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.nesting_bound = nesting_bound
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._plans: OrderedDict[str, QueryPlan] = OrderedDict()

    def plan(
        self, query: XPathExpr | str, trace: Optional[Trace] = None
    ) -> QueryPlan:
        """Return the plan for ``query``, compiling and caching on a miss.

        String queries are keyed verbatim; AST inputs are keyed by their
        canonical unparsed text.  The two share an entry only when the
        string already is the canonical form — an abbreviated string like
        ``//a`` and its parsed AST occupy separate entries.

        ``trace`` (optional) records the planning stages: a cache hit is
        one zero-cost ``plan`` marker span, a miss gets the real
        ``parse``/``plan`` spans from :func:`plan_query`.
        """
        key = query if isinstance(query, str) else query.unparse()
        plans = self._plans
        cached = plans.get(key)
        if cached is not None:
            plans.move_to_end(key)
            self.hits += 1
            if trace is not None:
                trace.add_span("plan", duration=0.0, cache="hit")
            return cached
        self.misses += 1
        compiled = plan_query(query, self.nesting_bound, trace=trace)
        plans[key] = compiled
        if len(plans) > self.maxsize:
            plans.popitem(last=False)
            self.evictions += 1
        return compiled

    def stats(self) -> CacheStats:
        """Return a snapshot of the cache counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._plans),
            maxsize=self.maxsize,
        )

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, query: str) -> bool:
        return query in self._plans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlanCache size={len(self._plans)}/{self.maxsize} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
