"""Compiled query plans: classify once, evaluate many times.

The paper's complexity map (Figure 1) is exactly a query-planning rule: a
query's syntactic fragment determines the cheapest sound evaluator for
it.  This package turns that observation into infrastructure:

* :mod:`repro.planner.plan` — :class:`QueryPlan`: a query parsed and
  fragment-classified once, with the evaluator auto-selected along the
  ``core → cvt → naive`` chain;
* :mod:`repro.planner.cache` — :class:`PlanCache`: an LRU cache of plans
  keyed by query text, with hit/miss/eviction accounting;
* :mod:`repro.planner.batch` — :func:`evaluate_many` /
  :func:`evaluate_many_ids`: many queries against one document share a
  single :class:`~repro.xmlmodel.index.DocumentIndex` and per-engine
  evaluator instances (:func:`evaluate_many_stored` is the same for a
  document hydrated from a :class:`~repro.store.CorpusStore` snapshot —
  no parse, no index build).  These (and the default cache accessors)
  are thin wrappers over the process-default
  :class:`repro.engine.XPathEngine`, which owns the plan cache and the
  evaluator pools.
"""

from repro.planner.batch import (
    clear_plan_cache,
    default_plan_cache,
    evaluate_many,
    evaluate_many_ids,
    evaluate_many_sharded,
    evaluate_many_stored,
    get_plan,
)
from repro.planner.cache import CacheStats, PlanCache
from repro.planner.plan import AUTO_ENGINE_CHAIN, QueryPlan, plan_query

__all__ = [
    "AUTO_ENGINE_CHAIN",
    "CacheStats",
    "PlanCache",
    "QueryPlan",
    "clear_plan_cache",
    "default_plan_cache",
    "evaluate_many",
    "evaluate_many_ids",
    "evaluate_many_sharded",
    "evaluate_many_stored",
    "get_plan",
    "plan_query",
]
