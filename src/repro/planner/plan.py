"""Query plans: one parse + fragment classification, many evaluations.

A :class:`QueryPlan` is the compiled form of an XPath query.  Building a
plan parses the query and classifies it against the paper's fragment
lattice (:func:`repro.fragments.classify`); the most specific fragment
picks the primary evaluator:

=====================  ==========  =====================================
query fragment         engine      why
=====================  ==========  =====================================
Core XPath (incl. PF)  ``core``    O(|D|·|Q|) set-at-a-time evaluation
                                   (Proposition 2.7, second part)
anything richer        ``cvt``     polynomial context-value tables for
                                   full XPath 1.0 (Proposition 2.7)
=====================  ==========  =====================================

The remaining engines of the chain (``cvt`` after ``core``, ``naive``
last) act as fallbacks: if an evaluator rejects the query with
:class:`~repro.errors.FragmentViolationError` — which can only happen if
a classifier and an evaluator ever disagree on a fragment boundary — the
plan silently retries with the next, strictly more general engine, so a
plan's answer is always the full-XPath semantics.  Evaluation errors
other than fragment violations (unknown functions, type errors) propagate
unchanged.

Plans hold no document state: the same plan object can be run against any
number of documents, and per-document acceleration lives in the
:class:`~repro.xmlmodel.index.DocumentIndex` each document carries.

``core``-engine plans stay id-native end-to-end: :meth:`QueryPlan.run`
evaluates on :class:`~repro.xmlmodel.idset.IdSet` frontiers and
materialises node objects exactly once, at the plan boundary, while
:meth:`QueryPlan.run_ids` skips materialisation entirely and hands back
document-order ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, MutableMapping, Optional

from repro.errors import FragmentViolationError
from repro.evaluation.context import Context
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.cvt import ContextValueTableEvaluator
from repro.evaluation.naive import NaiveEvaluator
from repro.evaluation.values import NodeSet, XPathValue
from repro.fragments.classify import (
    DEFAULT_NESTING_BOUND,
    Classification,
    classify,
)
from repro.telemetry.render import render_kv_block
from repro.telemetry.trace import Trace, maybe_span
from repro.xmlmodel.document import Document
from repro.xmlmodel.nodes import XMLNode
from repro.xpath.ast import XPathExpr
from repro.xpath.parser import parse

#: The auto-dispatch preference order, cheapest sound evaluator first.
AUTO_ENGINE_CHAIN = ("core", "cvt", "naive")


@dataclass(frozen=True)
class QueryPlan:
    """A query compiled to an evaluator choice plus fallback chain.

    Attributes
    ----------
    query:
        The query text the plan was built from (the cache key).
    expr:
        The parsed AST, shared by every run of this plan.
    classification:
        The full Figure 1 classification (fragments, combined complexity,
        per-fragment violation reasons).
    engine:
        The auto-selected primary engine.
    fallbacks:
        Strictly more general engines tried in order if an evaluator
        rejects the query as outside its fragment.

    Examples
    --------
    >>> from repro.xmlmodel import parse_xml
    >>> plan = plan_query("//b[child::c]")
    >>> plan.engine, plan.fallbacks
    ('core', ('cvt', 'naive'))
    >>> [n.tag for n in plan.run(parse_xml("<a><b><c/></b><b/></a>"))]
    ['b']
    >>> plan.run(parse_xml("<x><b><c/></b></x>"))  # same plan, any document
    [<ElementNode 'b' order=2>]
    """

    query: str
    expr: XPathExpr
    classification: Classification
    engine: str
    fallbacks: tuple[str, ...]

    @property
    def engine_chain(self) -> tuple[str, ...]:
        """The primary engine followed by its fallbacks."""
        return (self.engine, *self.fallbacks)

    def run(
        self,
        document: Document,
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        evaluators: Optional[MutableMapping[str, object]] = None,
    ) -> XPathValue | list[XMLNode] | bool:
        """Evaluate the plan against ``document``.

        Node-set results come back as a list of nodes in document order,
        scalars as plain ``float`` / ``str`` / ``bool`` — the same
        convention as :func:`repro.evaluation.api.evaluate`.

        ``evaluators`` is an optional per-document engine→evaluator cache:
        batch callers pass one mapping for a whole workload so the
        context-value tables (and the core evaluator's condition sets)
        accumulate across queries instead of being rebuilt per query.
        """
        last_error: Optional[FragmentViolationError] = None
        for engine in self.engine_chain:
            try:
                return self._execute(engine, document, context, variables, evaluators)
            except FragmentViolationError as error:
                last_error = error
        raise last_error  # unreachable while "naive" accepts full XPath

    def run_engine(
        self,
        engine: str,
        document: Document,
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        evaluators: Optional[MutableMapping[str, object]] = None,
    ) -> XPathValue | list[XMLNode] | bool:
        """Run exactly ``engine`` on this plan's query — no fallback chain.

        This is the single home of the per-engine execution conventions
        (evaluator reuse from the ``evaluators`` mapping, the stale
        variable-bindings guard, node-set materialisation): both the
        auto-dispatch chain of :meth:`run` and the explicit-engine path
        of :class:`repro.engine.XPathEngine` go through it.
        """
        return self._execute(engine, document, context, variables, evaluators)

    def _execute(
        self,
        engine: str,
        document: Document,
        context: Optional[Context],
        variables: Optional[Mapping[str, XPathValue]],
        evaluators: Optional[MutableMapping[str, object]],
    ) -> XPathValue | list[XMLNode] | bool:
        evaluator = evaluators.get(engine) if evaluators is not None else None
        if engine == "core":
            if evaluator is None:
                evaluator = CoreXPathEvaluator(document)
            if context is None:
                # Stay on ids end-to-end; materialise nodes exactly once,
                # here at the plan boundary.
                ids = evaluator.evaluate_ids(self.expr)
                result = document.index.ids_to_node_list(ids)
            else:
                result = evaluator.evaluate_nodes(self.expr, [context.node])
        else:
            if evaluator is not None and evaluator.env.variables != dict(
                variables or {}
            ):
                # Variable bindings are frozen into an evaluator at
                # construction; reusing one under different bindings would
                # silently answer with the old values.
                evaluator = None
            if evaluator is None:
                evaluator_class = (
                    ContextValueTableEvaluator if engine == "cvt" else NaiveEvaluator
                )
                evaluator = evaluator_class(document, variables)
            value = evaluator.evaluate(self.expr, context)
            result = list(value.nodes) if isinstance(value, NodeSet) else value
        if evaluators is not None:
            evaluators[engine] = evaluator
        return result

    def run_ids(
        self,
        document: Document,
        context: Optional[Context] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        evaluators: Optional[MutableMapping[str, object]] = None,
    ) -> list[int]:
        """Evaluate the plan and return document-order ids instead of nodes.

        For ``core``-engine plans this is fully id-native (no node objects
        are touched); for richer engines the node-set result is converted
        to ids at this boundary.  Raises
        :class:`~repro.errors.XPathEvaluationError` if the query produces
        a scalar rather than a node-set.

        >>> from repro.xmlmodel import parse_xml
        >>> plan = plan_query("//b")
        >>> plan.run_ids(parse_xml("<a><b/><c><b/></c></a>"))
        [2, 4]
        """
        if self.engine == "core" and context is None:
            evaluator = evaluators.get("core") if evaluators is not None else None
            if evaluator is None:
                evaluator = CoreXPathEvaluator(document)
            try:
                ids = evaluator.evaluate_ids(self.expr)
            except FragmentViolationError:
                pass  # classifier/evaluator disagreement: fall through to run()
            else:
                if evaluators is not None:
                    evaluators["core"] = evaluator
                return ids
        result = self.run(document, context, variables, evaluators)
        from repro.errors import XPathEvaluationError

        if not isinstance(result, list):
            raise XPathEvaluationError(
                f"query produced a {type(result).__name__}, not a node-set"
            )
        index = document.index
        try:
            return [index.id_of(node) for node in result]
        except KeyError:
            raise XPathEvaluationError(
                "result contains nodes without a document-order id "
                "(attribute nodes); use run() for this query"
            ) from None

    def explain(self) -> str:
        """Return a human-readable description of the plan."""
        return render_kv_block([
            ("query", self.query),
            ("most specific", self.classification.most_specific),
            ("combined complexity", self.classification.combined_complexity),
            ("selected engine", self.engine),
            ("fallback chain", " -> ".join(self.fallbacks) or "(none)"),
        ])


def plan_query(
    query: XPathExpr | str,
    nesting_bound: int = DEFAULT_NESTING_BOUND,
    trace: Optional[Trace] = None,
) -> QueryPlan:
    """Compile ``query`` into a :class:`QueryPlan` (uncached).

    Core XPath queries (including the smaller PF and positive fragments)
    get the linear-time ``core`` engine; everything else gets the
    polynomial ``cvt`` engine.  ``naive`` is never selected as primary —
    it is the last-resort fallback only.

    ``trace`` (optional) records the compile stages as ``parse`` and
    ``plan`` spans.
    """
    if isinstance(query, str):
        with maybe_span(trace, "parse"):
            expr = parse(query)
        text = query
    else:
        expr = query
        text = expr.unparse()
    with maybe_span(trace, "plan"):
        classification = classify(expr, nesting_bound)
    if "Core XPath" in classification.fragments:
        engine, fallbacks = "core", ("cvt", "naive")
    else:
        engine, fallbacks = "cvt", ("naive",)
    return QueryPlan(
        query=text,
        expr=expr,
        classification=classification,
        engine=engine,
        fallbacks=fallbacks,
    )
