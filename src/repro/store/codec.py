"""The snapshot codec: ``Document`` + ``DocumentIndex`` as flat bytes.

A snapshot is the id-native design taken to disk.  The arrays the
evaluators consume at run time — ``parent`` / ``subtree_end`` / ``post``
/ ``first_child`` / ``next_sibling`` / ``prev_sibling``, the per-tag and
per-kind partitions, ``element_ids`` — are packed verbatim as
little-endian int32 buffers behind a framed header, together with one
interned string table for tags, attribute names/values and character
data.  :func:`load_snapshot` therefore reconstructs the node tree and
the :class:`~repro.xmlmodel.index.DocumentIndex` in one linear pass over
those buffers, without ever invoking the XML parser or re-running index
construction.

Framing (all integers little-endian)::

    magic    8 bytes   b"REPROSNP"
    version  u32       format version (1)
    sections u32       number of sections
    table    sections × (tag 4 bytes ASCII, offset u64, length u64)
    payload  the section bodies, 8-byte aligned, in table order

Sections of version 1 (``n`` = tree-node count, ``m`` = attribute count,
``t`` = tag-partition count, ``k`` = kind-partition count):

=========  =====================================================================
``KIND``   ``n`` bytes — node kind per id (0 root, 1 element, 2 text, 3
           comment, 4 processing instruction)
``PAR``    int32[n] — ``DocumentIndex.parent``
``SUB``    int32[n] — ``DocumentIndex.subtree_end``
``POST``   int32[n] — ``DocumentIndex.post``
``FCH``    int32[n] — ``DocumentIndex.first_child``
``NSIB``   int32[n] — ``DocumentIndex.next_sibling``
``PSIB``   int32[n] — ``DocumentIndex.prev_sibling``
``NAME``   int32[n] — string id of the element tag / PI target, else -1
``TEXT``   int32[n] — string id of text/comment data / PI data, else -1
``ATTO``   int32[n+1] — per-node cumulative attribute offsets into ATTN/ATTV
``ATTN``   int32[m] — attribute-name string ids, document order
``ATTV``   int32[m] — attribute-value string ids, document order
``ELEM``   int32[*] — ``DocumentIndex.element_ids``
``TPRT``   u32 count ``t``, then int32[2t] (tag string id, length) pairs,
           then the ``t`` concatenated sorted id partitions
``KPRT``   same shape keyed by kind byte — the non-element partitions
``STAB``   u32 count, int32[count+1] byte offsets, UTF-8 blob — the
           interned string table (ids assigned in first-use order)
=========  =====================================================================

Determinism: the walk order, interning order, section order and padding
are all fixed, so the same document always produces the same snapshot
bytes — ``sha256(dump_snapshot(doc))`` is a usable content key, exposed
as :func:`snapshot_hash`.

Loading supports two residencies.  The default (*eager*) copies the
buffers into :class:`array.array` objects so the snapshot bytes can be
released immediately.  With ``lazy=True`` the index arrays and
partitions stay zero-copy ``memoryview`` slices of the caller's buffer —
hand :func:`load_snapshot` an :mod:`mmap`-ed file and the index pages in
on demand (node *objects* are always materialised; they are what the
evaluators walk).
"""

from __future__ import annotations

import hashlib
import struct
import sys
from array import array
from typing import Any, Sequence, cast

from repro.errors import ReproError
from repro.xmlmodel.document import Document
from repro.xmlmodel.index import DocumentIndex
from repro.xmlmodel.nodes import (
    AttributeNode,
    CommentNode,
    ElementNode,
    NodeType,
    ProcessingInstructionNode,
    RootNode,
    TextNode,
    XMLNode,
    _node_counter,
)

MAGIC = b"REPROSNP"
VERSION = 1

_KIND_ROOT = 0
_KIND_ELEMENT = 1
_KIND_TEXT = 2
_KIND_COMMENT = 3
_KIND_PI = 4

_KIND_BY_TYPE = {
    NodeType.ROOT: _KIND_ROOT,
    NodeType.ELEMENT: _KIND_ELEMENT,
    NodeType.TEXT: _KIND_TEXT,
    NodeType.COMMENT: _KIND_COMMENT,
    NodeType.PROCESSING_INSTRUCTION: _KIND_PI,
}

#: ``KPRT`` keys: the byte value identifying each non-element kind
#: partition, mapped to the key of ``DocumentIndex._ids_by_kind``.
_KIND_PARTITION_NAMES = {
    _KIND_ROOT: NodeType.ROOT.value,
    _KIND_TEXT: NodeType.TEXT.value,
    _KIND_COMMENT: NodeType.COMMENT.value,
    _KIND_PI: NodeType.PROCESSING_INSTRUCTION.value,
}

_HEADER = struct.Struct("<8sII")
_SECTION_ENTRY = struct.Struct("<4sQQ")
_U32 = struct.Struct("<I")

#: Fixed section order of version 1 (also the payload order).
_SECTION_ORDER = (
    b"KIND", b"PAR ", b"SUB ", b"POST", b"FCH ", b"NSIB", b"PSIB",
    b"NAME", b"TEXT", b"ATTO", b"ATTN", b"ATTV", b"ELEM", b"TPRT",
    b"KPRT", b"STAB",
)


class SnapshotError(ReproError):
    """A snapshot could not be encoded or decoded."""


def _int32_bytes(values: Sequence[int]) -> bytes:
    buffer = array("i", values)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        buffer.byteswap()
    return buffer.tobytes()


class _StringTable:
    """First-use-order string interner (the determinism anchor)."""

    __slots__ = ("_ids", "_strings")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []

    def intern(self, value: str) -> int:
        string_id = self._ids.get(value)
        if string_id is None:
            string_id = self._ids[value] = len(self._strings)
            self._strings.append(value)
        return string_id

    def encode(self) -> bytes:
        blobs = [value.encode("utf-8") for value in self._strings]
        offsets = [0]
        for blob in blobs:
            offsets.append(offsets[-1] + len(blob))
        return b"".join(
            [_U32.pack(len(blobs)), _int32_bytes(offsets), *blobs]
        )


def dump_snapshot(document: Document) -> bytes:
    """Serialise ``document`` (and its index) to deterministic snapshot bytes.

    The document's :class:`~repro.xmlmodel.index.DocumentIndex` is forced
    if it has not been built yet — the snapshot *is* those arrays.
    """
    index = document.index
    nodes = index.nodes
    n = index.size
    strings = _StringTable()

    kinds = bytearray(n)
    names = [-1] * n
    texts = [-1] * n
    attr_offsets = [0] * (n + 1)
    attr_names: list[int] = []
    attr_values: list[int] = []

    for i, node in enumerate(nodes):
        kinds[i] = _KIND_BY_TYPE[node.node_type]
        if isinstance(node, ElementNode):
            names[i] = strings.intern(node.tag)
            for attribute in node.attributes:
                attr_names.append(strings.intern(attribute.attr_name))
                attr_values.append(strings.intern(attribute.value))
        elif isinstance(node, (TextNode, CommentNode)):
            texts[i] = strings.intern(node.text)
        elif isinstance(node, ProcessingInstructionNode):
            names[i] = strings.intern(node.target)
            texts[i] = strings.intern(node.data)
        attr_offsets[i + 1] = len(attr_names)

    tag_parts: list[bytes] = [_U32.pack(len(index.ids_by_tag))]
    tag_ids: list[bytes] = []
    # Tag partitions in interning order (== first document occurrence), so
    # the section bytes never depend on dict iteration history.
    for tag in sorted(index.ids_by_tag, key=strings.intern):
        partition = index.ids_by_tag[tag]
        tag_parts.append(_int32_bytes([strings.intern(tag), len(partition)]))
        tag_ids.append(_int32_bytes(partition))

    kind_parts: list[bytes] = [_U32.pack(len(_KIND_PARTITION_NAMES))]
    kind_ids: list[bytes] = []
    for kind_byte in sorted(_KIND_PARTITION_NAMES):
        partition = index._ids_by_kind.get(_KIND_PARTITION_NAMES[kind_byte], [])
        kind_parts.append(_int32_bytes([kind_byte, len(partition)]))
        kind_ids.append(_int32_bytes(partition))

    sections = {
        b"KIND": bytes(kinds),
        b"PAR ": _int32_bytes(index.parent),
        b"SUB ": _int32_bytes(index.subtree_end),
        b"POST": _int32_bytes(index.post),
        b"FCH ": _int32_bytes(index.first_child),
        b"NSIB": _int32_bytes(index.next_sibling),
        b"PSIB": _int32_bytes(index.prev_sibling),
        b"NAME": _int32_bytes(names),
        b"TEXT": _int32_bytes(texts),
        b"ATTO": _int32_bytes(attr_offsets),
        b"ATTN": _int32_bytes(attr_names),
        b"ATTV": _int32_bytes(attr_values),
        b"ELEM": _int32_bytes(index.element_ids),
        b"TPRT": b"".join(tag_parts + tag_ids),
        b"KPRT": b"".join(kind_parts + kind_ids),
        b"STAB": strings.encode(),
    }

    table_size = _HEADER.size + _SECTION_ENTRY.size * len(_SECTION_ORDER)
    offset = table_size
    table: list[bytes] = []
    payload: list[bytes] = []
    for tag in _SECTION_ORDER:
        body = sections[tag]
        padding = (-offset) % 8
        if padding:
            payload.append(b"\x00" * padding)
            offset += padding
        table.append(_SECTION_ENTRY.pack(tag, offset, len(body)))
        payload.append(body)
        offset += len(body)
    return b"".join(
        [_HEADER.pack(MAGIC, VERSION, len(_SECTION_ORDER)), *table, *payload]
    )


def snapshot_hash(data: Any) -> str:
    """The content key of snapshot bytes: their SHA-256 hex digest.

    Accepts any bytes-like object (bytes, memoryview, mmap).
    """
    return hashlib.sha256(data).hexdigest()


class _Reader:
    """Section access over snapshot bytes (zero-copy via memoryview)."""

    def __init__(self, data: Any) -> None:
        view = memoryview(data)
        if len(view) < _HEADER.size:
            raise SnapshotError("snapshot truncated: no header")
        magic, version, count = _HEADER.unpack_from(view, 0)
        if magic != MAGIC:
            raise SnapshotError("not a repro snapshot (bad magic)")
        if version != VERSION:
            raise SnapshotError(
                f"snapshot format version {version} is not supported "
                f"(this build reads version {VERSION})"
            )
        self.view = view
        self.sections: dict[bytes, tuple[int, int]] = {}
        position = _HEADER.size
        for _ in range(count):
            tag, offset, length = _SECTION_ENTRY.unpack_from(view, position)
            position += _SECTION_ENTRY.size
            if offset + length > len(view):
                raise SnapshotError(f"section {tag!r} overruns the snapshot")
            self.sections[tag] = (offset, length)

    def raw(self, tag: bytes) -> memoryview:
        try:
            offset, length = self.sections[tag]
        except KeyError:
            raise SnapshotError(f"snapshot is missing section {tag!r}") from None
        return self.view[offset : offset + length]

    def int32(self, tag: bytes, lazy: bool) -> Any:
        return _as_int32(self.raw(tag), lazy)


# ``Any`` by design: the concrete type is residency-dependent (``array``
# eagerly, an ``"i"``-cast ``memoryview`` lazily) and callers only rely on
# len/index/slice/bisect, which both provide.
def _as_int32(view: memoryview, lazy: bool) -> Any:
    """A view/copy of packed int32s that supports len/index/slice/bisect."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        out = array("i", bytes(view))
        out.byteswap()
        return out
    if lazy:
        return view.cast("i")
    out = array("i")
    out.frombytes(view)
    return out


def _decode_strings(view: memoryview) -> list[str]:
    (count,) = _U32.unpack_from(view, 0)
    offsets = _as_int32(view[_U32.size : _U32.size + 4 * (count + 1)], lazy=False)
    blob = bytes(view[_U32.size + 4 * (count + 1) :])
    return [
        blob[offsets[i] : offsets[i + 1]].decode("utf-8") for i in range(count)
    ]


def _decode_partitions(view: memoryview, lazy: bool) -> list[tuple[int, Any]]:
    """Decode a TPRT/KPRT section into (key, sorted-id-sequence) pairs."""
    (count,) = _U32.unpack_from(view, 0)
    header = _as_int32(view[_U32.size : _U32.size + 8 * count], lazy=False)
    body = view[_U32.size + 8 * count :]
    out: list[tuple[int, Any]] = []
    position = 0
    for part in range(count):
        key, length = header[2 * part], header[2 * part + 1]
        out.append((key, _as_int32(body[position : position + 4 * length], lazy)))
        position += 4 * length
    return out


def load_snapshot(data: Any, lazy: bool = False) -> Document:
    """Reconstruct a :class:`Document` (index included) from snapshot bytes.

    Parameters
    ----------
    data:
        Snapshot bytes — anything :class:`memoryview` accepts, including
        an :mod:`mmap` object.
    lazy:
        When True, the index arrays and partitions stay zero-copy views
        of ``data`` (which must then outlive the document); when False
        (the default) they are copied into process-private arrays.

    The returned document is indistinguishable from a freshly parsed one:
    node identity structure, document order, axes and query results all
    match, and ``document.has_index`` is already True.
    """
    reader = _Reader(data)
    strings = _decode_strings(reader.raw(b"STAB"))
    kinds = reader.raw(b"KIND")
    n = len(kinds)
    parent = reader.int32(b"PAR ", lazy)
    names = reader.int32(b"NAME", False)
    texts = reader.int32(b"TEXT", False)
    attr_offsets = reader.int32(b"ATTO", False)
    attr_names = reader.int32(b"ATTN", False)
    attr_values = reader.int32(b"ATTV", False)

    if n == 0:
        raise SnapshotError("snapshot holds no nodes")

    # -- node reconstruction: one linear pass, no parser, no validation.
    # Nodes are stored in pre-order, so every parent id precedes its
    # children and links can be patched as objects come into existence.
    # __new__ + direct slot writes skip the constructors' bookkeeping
    # (uniqueness checks, attribute dict conversion) — the snapshot
    # already encodes a frozen, validated tree.
    document = Document.__new__(Document)
    nodes: list[XMLNode] = [None] * n  # type: ignore[list-item]
    attributes: list[AttributeNode] = []
    id_by_uid: dict[int, int] = {}
    order = 0
    node: XMLNode
    for i in range(n):
        kind = kinds[i]
        if kind == _KIND_ELEMENT:
            node = ElementNode.__new__(ElementNode)
            node.node_type = NodeType.ELEMENT
            node.tag = strings[names[i]]
            lo, hi = attr_offsets[i], attr_offsets[i + 1]
            node_attributes: list[AttributeNode] = []
            node.attributes = node_attributes
        elif kind == _KIND_TEXT:
            node = TextNode.__new__(TextNode)
            node.node_type = NodeType.TEXT
            node.text = strings[texts[i]]
        elif kind == _KIND_ROOT:
            node = RootNode.__new__(RootNode)
            node.node_type = NodeType.ROOT
        elif kind == _KIND_COMMENT:
            node = CommentNode.__new__(CommentNode)
            node.node_type = NodeType.COMMENT
            node.text = strings[texts[i]]
        elif kind == _KIND_PI:
            node = ProcessingInstructionNode.__new__(ProcessingInstructionNode)
            node.node_type = NodeType.PROCESSING_INSTRUCTION
            node.target = strings[names[i]]
            node.data = strings[texts[i]]
        else:
            raise SnapshotError(f"unknown node kind {kind} at id {i}")
        node.children = []
        node.order = order
        order += 1
        node.uid = uid = next(_node_counter)
        node.document = document
        id_by_uid[uid] = i
        parent_id = parent[i]
        if parent_id == -1:
            node.parent = None
        else:
            parent_node = nodes[parent_id]
            node.parent = parent_node
            parent_node.children.append(node)
        nodes[i] = node
        if kind == _KIND_ELEMENT:
            for j in range(lo, hi):
                attribute = AttributeNode.__new__(AttributeNode)
                attribute.node_type = NodeType.ATTRIBUTE
                attribute.attr_name = strings[attr_names[j]]
                attribute.value = strings[attr_values[j]]
                attribute.parent = node
                attribute.children = []
                attribute.order = order
                order += 1
                attribute.uid = next(_node_counter)
                attribute.document = document
                node_attributes.append(attribute)
                attributes.append(attribute)

    root = nodes[0]
    if not isinstance(root, RootNode):
        raise SnapshotError("snapshot node 0 is not the root")

    # -- index reconstruction: adopt the stored arrays wholesale.
    index = DocumentIndex.__new__(DocumentIndex)
    index.nodes = nodes
    index.size = n
    index.parent = parent
    index.subtree_end = reader.int32(b"SUB ", lazy)
    index.post = reader.int32(b"POST", lazy)
    index.first_child = reader.int32(b"FCH ", lazy)
    index.next_sibling = reader.int32(b"NSIB", lazy)
    index.prev_sibling = reader.int32(b"PSIB", lazy)
    index.element_ids = reader.int32(b"ELEM", lazy)
    index.ids_by_tag = {
        strings[string_id]: partition
        for string_id, partition in _decode_partitions(reader.raw(b"TPRT"), lazy)
    }
    index._ids_by_kind = {
        _KIND_PARTITION_NAMES[kind_byte]: partition
        for kind_byte, partition in _decode_partitions(reader.raw(b"KPRT"), lazy)
    }
    index._test_idsets = {}
    index._kernel_states = {}
    index._id_by_uid = id_by_uid

    document.root = root
    document._nodes = nodes
    document._attributes = attributes
    document._elements_by_tag = {
        # Tag partitions hold element ids only, so the cast is sound.
        tag: cast("list[ElementNode]", [nodes[i] for i in partition])
        for tag, partition in index.ids_by_tag.items()
    }
    document._index = index
    return document


def load_snapshot_with_hash(data: Any, lazy: bool = False) -> tuple[Document, str]:
    """:func:`load_snapshot` plus the content hash of ``data``."""
    return load_snapshot(data, lazy=lazy), snapshot_hash(data)
