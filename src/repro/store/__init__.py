"""Persistent index snapshots and the corpus store.

The subsystem has two layers plus an engine hook:

* :mod:`repro.store.codec` — :func:`dump_snapshot` / :func:`load_snapshot`
  turn a :class:`~repro.xmlmodel.document.Document` *including its
  evaluation-ready* :class:`~repro.xmlmodel.index.DocumentIndex` into
  deterministic framed bytes and back, with no XML parsing and no index
  reconstruction on load (eager copies or zero-copy/mmap views);
* :mod:`repro.store.corpus` — :class:`CorpusStore`, a content-hash-keyed
  snapshot directory (manifest + atomic writes) with
  ``put``/``get``/``list``/``stat``;
* :class:`StoreKey` — a tiny marker wrapper so store keys can flow
  through :meth:`repro.engine.XPathEngine.evaluate` and the batch entry
  points wherever a document is expected.

See ``docs/store.md`` for the on-disk format and versioning policy.
"""

from repro.store.codec import (
    SnapshotError,
    dump_snapshot,
    load_snapshot,
    load_snapshot_with_hash,
    snapshot_hash,
)
from repro.store.corpus import (
    CorpusStore,
    StoreEntry,
    StoreError,
    StoreKeyError,
    shard_of,
)


class StoreKey(str):
    """A store key usable wherever the engine API accepts a document.

    ``engine.evaluate("//a", StoreKey("catalogue"))`` hydrates the
    document from the engine's attached store (warm registry entries are
    reused without touching disk).  It subclasses :class:`str` so CLI
    arguments and manifest keys pass through unchanged.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreKey({str.__repr__(self)})"


__all__ = [
    "CorpusStore",
    "SnapshotError",
    "StoreEntry",
    "StoreError",
    "StoreKey",
    "StoreKeyError",
    "dump_snapshot",
    "load_snapshot",
    "load_snapshot_with_hash",
    "shard_of",
    "snapshot_hash",
]
