"""`CorpusStore`: a directory of document snapshots behind one manifest.

The store is the persistence layer a serving process points an
:class:`~repro.engine.XPathEngine` at (``engine.attach_store(store)``):
documents go in once via :meth:`CorpusStore.put`, and every later
process — or the same process after an LRU eviction — hydrates them back
with :meth:`CorpusStore.get` at snapshot-load speed instead of paying
parse + index construction again.

Layout::

    <root>/
        manifest.json            # {"version": 1, "entries": {key: entry}}
        snapshots/<hash>.snap    # one snapshot file per distinct content

Snapshots are **content-hash keyed**: the file name is the SHA-256 of
the snapshot bytes (which are deterministic per document), so logically
equal documents stored under different keys share one file, and a
snapshot file can never be half-updated — it either exists with its
advertised content or not at all.  Both the snapshot files and the
manifest are written atomically (temp file + ``os.replace`` in the same
directory), so a crashed or concurrent writer never leaves a torn store.

Keys default to the content hash; pass ``key="..."`` for human names.
Re-putting a key overwrites its manifest entry (pointing it at the new
content) but never mutates snapshot bytes in place.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import ReproError
from repro.store.codec import (
    SnapshotError,
    dump_snapshot,
    load_snapshot,
    snapshot_hash,
)
from repro.xmlmodel.document import Document
from repro.xmlmodel.parser import parse_xml

MANIFEST_VERSION = 1
SNAPSHOT_SUFFIX = ".snap"

#: Snapshot files are named by SHA-256 hex digests and nothing else; the
#: raw-hash addressing fallback refuses anything that does not look like
#: one, so keys can never traverse outside ``snapshots/``.
_CONTENT_HASH = re.compile(r"^[0-9a-f]{64}$")


class StoreError(ReproError):
    """The corpus store is missing, malformed, or rejected an operation."""


class StoreKeyError(StoreError, KeyError):
    """A key is not present in the store (also catchable as KeyError)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message plain
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class StoreEntry:
    """One manifest entry: a key bound to snapshot content."""

    key: str
    hash: str
    nodes: int
    bytes: int
    root_tag: Optional[str]

    def to_json(self) -> dict:
        return {
            "hash": self.hash,
            "nodes": self.nodes,
            "bytes": self.bytes,
            "root_tag": self.root_tag,
        }

    @classmethod
    def from_json(cls, key: str, payload: dict) -> "StoreEntry":
        return cls(
            key=key,
            hash=payload["hash"],
            nodes=payload["nodes"],
            bytes=payload["bytes"],
            root_tag=payload.get("root_tag"),
        )


class CorpusStore:
    """A persistent, content-addressed corpus of document snapshots.

    Parameters
    ----------
    root:
        Directory to hold the manifest and snapshots; created (with
        parents) if missing.

    All methods are safe under concurrent use from one process (one lock
    serialises manifest writes); cross-process writers are safe against
    torn files via atomic replace, with last-writer-wins manifest
    semantics.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self._snapshots = os.path.join(self.root, "snapshots")
        self._manifest_path = os.path.join(self.root, "manifest.json")
        self._lock = threading.Lock()
        # stat-keyed manifest cache: a serving loop stats the file once
        # per lookup instead of re-parsing JSON per query.  The stamp is
        # (mtime_ns, inode, size) — os.replace always installs a new
        # inode, so two writes inside one clock tick on a coarse-mtime
        # filesystem still change the stamp.  Stamp and entries live in
        # ONE tuple assigned atomically — separate attributes could
        # interleave under concurrent readers and pair old entries with
        # the new file's stamp, serving them stale until the next write.
        # The cached dict is never mutated in place (writers build a
        # copy), so readers may use it without the lock.
        self._manifest_state: Optional[tuple[tuple, dict[str, StoreEntry]]] = None
        os.makedirs(self._snapshots, exist_ok=True)
        if not os.path.exists(self._manifest_path):
            self._write_manifest({})

    # -- manifest ----------------------------------------------------------

    def _read_manifest(self) -> dict[str, StoreEntry]:
        """The manifest entries (cached until the file's mtime changes).

        Treat the returned mapping as read-only; copy before mutating.
        """
        try:
            status = os.stat(self._manifest_path)
        except FileNotFoundError:
            return {}
        stamp = (status.st_mtime_ns, status.st_ino, status.st_size)
        state = self._manifest_state
        if state is not None and state[0] == stamp:
            return state[1]
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable store manifest: {error}") from error
        if payload.get("version") != MANIFEST_VERSION:
            raise StoreError(
                f"store manifest version {payload.get('version')!r} is not "
                f"supported (this build reads version {MANIFEST_VERSION})"
            )
        entries = {
            key: StoreEntry.from_json(key, entry)
            for key, entry in payload.get("entries", {}).items()
        }
        self._manifest_state = (stamp, entries)
        return entries

    def _write_manifest(self, entries: dict[str, StoreEntry]) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "entries": {
                key: entries[key].to_json() for key in sorted(entries)
            },
        }
        _atomic_write(
            self._manifest_path,
            json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
        )
        # Invalidate rather than prime: stat-ing the replaced file here
        # could stamp our entries with a concurrent writer's mtime and
        # serve them stale forever.  The next read re-parses once.
        self._manifest_state = None

    def _snapshot_path(self, content_hash: str) -> str:
        if not _CONTENT_HASH.match(content_hash):
            raise StoreError(
                f"{content_hash!r} is not a snapshot content hash"
            )
        return os.path.join(self._snapshots, content_hash + SNAPSHOT_SUFFIX)

    # -- writing -----------------------------------------------------------

    def put(
        self, source: Union[Document, str], key: Optional[str] = None
    ) -> StoreEntry:
        """Snapshot ``source`` into the store and return its entry.

        ``source`` may be a :class:`Document` or XML text (parsed here,
        once — the point of the store is that nobody parses it again).
        ``key`` defaults to the snapshot's content hash.  Writing is
        idempotent: identical content lands in one shared snapshot file.
        """
        document = parse_xml(source) if isinstance(source, str) else source
        if not isinstance(document, Document):
            raise TypeError(
                f"expected a Document or XML text, got {type(document).__name__}"
            )
        blob = dump_snapshot(document)
        content_hash = snapshot_hash(blob)
        entry = StoreEntry(
            key=key if key is not None else content_hash,
            hash=content_hash,
            nodes=len(document.nodes),
            bytes=len(blob),
            root_tag=getattr(document.root.document_element(), "tag", None),
        )
        path = self._snapshot_path(content_hash)
        with self._lock:
            if not os.path.exists(path):
                _atomic_write(path, blob)
            entries = dict(self._read_manifest())
            entries[entry.key] = entry
            self._write_manifest(entries)
        document.snapshot_hash = content_hash
        return entry

    def delete(self, key: str) -> None:
        """Drop ``key`` from the manifest (snapshot bytes stay shared)."""
        with self._lock:
            entries = dict(self._read_manifest())
            if key not in entries:
                raise StoreKeyError(f"store has no document {key!r}")
            del entries[key]
            self._write_manifest(entries)

    # -- reading -----------------------------------------------------------

    def stat(self, key: str) -> StoreEntry:
        """Return the manifest entry for ``key`` without loading anything."""
        entries = self._read_manifest()
        entry = entries.get(key)
        if entry is None:
            # A raw content hash is always addressable, named or not
            # (anything not shaped like a sha256 digest never reaches
            # the filesystem — see _snapshot_path).
            if _CONTENT_HASH.match(key):
                path = self._snapshot_path(key)
                if os.path.exists(path):
                    return StoreEntry(
                        key=key,
                        hash=key,
                        nodes=-1,
                        bytes=os.path.getsize(path),
                        root_tag=None,
                    )
            raise StoreKeyError(f"store has no document {key!r}")
        return entry

    def get(self, key: str, mmap: bool = False) -> Document:
        """Load the document stored under ``key`` (or a raw content hash).

        With ``mmap=True`` the snapshot file is memory-mapped and the
        index arrays stay zero-copy views over it — the mapping lives as
        long as the document references it, and its pages are shared
        between every process that maps the same snapshot.  The eager
        path digest-checks the bytes against the content hash before
        decoding (the mmap path skips the digest to keep cold pages
        untouched); corruption of any kind surfaces as
        :class:`StoreError`, never a raw decode exception.
        """
        entry = self.stat(key)
        path = self._snapshot_path(entry.hash)
        try:
            if mmap:
                import mmap as mmap_module

                with open(path, "rb") as handle:
                    mapping = mmap_module.mmap(
                        handle.fileno(), 0, access=mmap_module.ACCESS_READ
                    )
                # The document's index holds views into `mapping`, which
                # keeps the mapping (and its pages) alive via refcount.
                document = load_snapshot(mapping, lazy=True)
            else:
                with open(path, "rb") as handle:
                    blob = handle.read()
                if snapshot_hash(blob) != entry.hash:
                    raise StoreError(
                        f"snapshot {entry.hash} for key {key!r} failed its "
                        "content-hash check (corrupt or tampered bytes)"
                    )
                document = load_snapshot(blob)
        except FileNotFoundError:
            raise StoreError(
                f"manifest names snapshot {entry.hash} for key {key!r}, "
                "but the snapshot file is missing"
            ) from None
        except (StoreError, SnapshotError):
            raise  # already well-typed (both are ReproErrors)
        except Exception as error:
            # Anything else escaping the decoder is corruption the framing
            # checks could not classify (e.g. a bit flip inside a string
            # table surfacing as UnicodeDecodeError).
            raise StoreError(
                f"snapshot {entry.hash} for key {key!r} is unreadable: {error}"
            ) from error
        # Stamp the content identity so callers (the engine's store-keyed
        # registry, cross-process shipping) can recognise re-hydrations of
        # the same snapshot without re-hashing.
        document.snapshot_hash = entry.hash
        return document

    def read_bytes(self, key: str) -> bytes:
        """Return the raw snapshot bytes for ``key`` (for shipping/inspection)."""
        entry = self.stat(key)
        with open(self._snapshot_path(entry.hash), "rb") as handle:
            return handle.read()

    # -- enumeration -------------------------------------------------------

    def list(self) -> list[StoreEntry]:
        """Every manifest entry, sorted by key."""
        return [entry for _, entry in sorted(self._read_manifest().items())]

    # -- sharding ----------------------------------------------------------

    def shard_layout(self, shards: int) -> list[list[StoreEntry]]:
        """Partition the manifest into ``shards`` deterministic shards.

        This is the worker warm-up protocol's document assignment: shard
        ``i`` holds exactly the entries with ``shard_of(entry.hash,
        shards) == i``, so any process that can read the manifest — the
        serving pool routing requests, a worker hydrating its warm set, a
        CLI previewing the layout — computes the same partition without
        coordination.  Keys aliasing identical content land in the same
        shard (assignment is by content hash), sorted by key within it.
        """
        layout: list[list[StoreEntry]] = [[] for _ in range(shards)]
        for entry in self.list():
            layout[shard_of(entry.hash, shards)].append(entry)
        return layout

    def total_bytes(self) -> int:
        """Sum of snapshot byte sizes over the manifest (aliases recounted)."""
        return sum(entry.bytes for entry in self.list())

    def keys(self) -> list[str]:
        """Every manifest key, sorted."""
        return sorted(self._read_manifest())

    def __contains__(self, key: str) -> bool:
        if key in self._read_manifest():
            return True
        return bool(_CONTENT_HASH.match(key)) and os.path.exists(
            self._snapshot_path(key)
        )

    def __len__(self) -> int:
        return len(self._read_manifest())

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self.list())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CorpusStore {self.root!r} entries={len(self)}>"


def shard_of(content_hash: str, shards: int) -> int:
    """Deterministic shard assignment of a snapshot content hash.

    The first eight hex digits of the (uniformly distributed) SHA-256
    content hash modulo the shard count: stable across processes, Python
    versions and hash-randomisation seeds, so a serving pool's routing
    and a worker's warm-up set always agree.

    >>> shard_of("00000003" + "0" * 56, 4)
    3
    >>> shard_of("a1b2c3d4" + "0" * 56, 1)
    0
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if not _CONTENT_HASH.match(content_hash):
        raise StoreError(f"{content_hash!r} is not a snapshot content hash")
    return int(content_hash[:8], 16) % shards


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (same-directory temp + replace)."""
    directory = os.path.dirname(path)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
