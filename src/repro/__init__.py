"""repro — a reproduction of "The Complexity of XPath Query Evaluation" (PODS 2003).

The package provides a complete XPath 1.0 engine built from scratch (XML
data model, parser, four evaluators with different complexity profiles),
the fragment classifiers of the paper (Core XPath, positive Core XPath,
PF, WF, pWF, pXPath), the complexity reductions behind its hardness
results, and a benchmark harness regenerating every figure/claim.

Quickstart::

    from repro import parse_xml, evaluate_nodes

    document = parse_xml("<a><b/><b><c/></b></a>")
    nodes = evaluate_nodes("/descendant::b[child::c]", document)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced figure and claim.
"""

from repro.evaluation import (
    Context,
    ContextValueTableEvaluator,
    CoreXPathEvaluator,
    NaiveEvaluator,
    SingletonSuccessChecker,
    evaluate,
    evaluate_nodes,
    make_evaluator,
    query_selects,
)
from repro.fragments import Classification, classify
from repro.planner import (
    PlanCache,
    QueryPlan,
    evaluate_many,
    get_plan,
    plan_query,
)
from repro.xmlmodel import (
    Document,
    DocumentBuilder,
    DocumentIndex,
    build_tree,
    parse_xml,
    serialize,
)
from repro.xpath import parse, unparse

__version__ = "1.1.0"

__all__ = [
    "Classification",
    "Context",
    "ContextValueTableEvaluator",
    "CoreXPathEvaluator",
    "Document",
    "DocumentBuilder",
    "DocumentIndex",
    "NaiveEvaluator",
    "PlanCache",
    "QueryPlan",
    "SingletonSuccessChecker",
    "build_tree",
    "classify",
    "evaluate",
    "evaluate_many",
    "evaluate_nodes",
    "get_plan",
    "make_evaluator",
    "parse",
    "parse_xml",
    "plan_query",
    "query_selects",
    "serialize",
    "unparse",
    "__version__",
]
