"""repro — a reproduction of "The Complexity of XPath Query Evaluation" (PODS 2003).

The package provides a complete XPath 1.0 engine built from scratch (XML
data model, parser, four evaluators with different complexity profiles),
the fragment classifiers of the paper (Core XPath, positive Core XPath,
PF, WF, pWF, pXPath), the complexity reductions behind its hardness
results, and a benchmark harness regenerating every figure/claim.

Quickstart::

    from repro import XPathEngine

    engine = XPathEngine()
    doc = engine.add("<a><b/><b><c/></b></a>")
    result = engine.evaluate("/descendant::b[child::c]", doc)
    nodes, ids = result.nodes, result.ids

See README.md for the overview, docs/engine.md for the session façade
(lifecycle, thread-safety, migration from the free functions),
docs/architecture.md for the data flow (parser → index → planner →
evaluators) and the id-set representation, docs/complexity.md for the
theorem-to-module map, docs/telemetry.md for metrics and per-query
tracing, and docs/benchmarks.md for running the experiment harness.
"""

from repro.engine import (
    DocHandle,
    EngineStats,
    QueryRequest,
    QueryResult,
    XPathEngine,
    default_engine,
)
from repro.evaluation import (
    Context,
    ContextValueTableEvaluator,
    CoreXPathEvaluator,
    NaiveEvaluator,
    NodeSetCoreXPathEvaluator,
    SingletonSuccessChecker,
    evaluate,
    evaluate_nodes,
    make_evaluator,
    query_selects,
)
from repro.fragments import Classification, classify
from repro.planner import (
    PlanCache,
    QueryPlan,
    evaluate_many,
    evaluate_many_ids,
    evaluate_many_sharded,
    evaluate_many_stored,
    get_plan,
    plan_query,
)
from repro.serving import (
    ServingError,
    ServingStats,
    ServingTimeout,
    ShardedPool,
    WorkerCrashed,
)
from repro.store import (
    CorpusStore,
    StoreKey,
    dump_snapshot,
    load_snapshot,
    snapshot_hash,
)
from repro.telemetry import (
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    render_json,
    render_prometheus,
)
from repro.xmlmodel import (
    Document,
    DocumentBuilder,
    DocumentIndex,
    IdSet,
    build_tree,
    parse_xml,
    serialize,
)
from repro.xpath import parse, unparse

__version__ = "1.5.0"

__all__ = [
    "Classification",
    "Context",
    "ContextValueTableEvaluator",
    "CoreXPathEvaluator",
    "CorpusStore",
    "DocHandle",
    "Document",
    "DocumentBuilder",
    "DocumentIndex",
    "EngineStats",
    "IdSet",
    "MetricsRegistry",
    "NaiveEvaluator",
    "NodeSetCoreXPathEvaluator",
    "PlanCache",
    "QueryPlan",
    "QueryRequest",
    "QueryResult",
    "ServingError",
    "ServingStats",
    "ServingTimeout",
    "ShardedPool",
    "SingletonSuccessChecker",
    "SlowQueryLog",
    "StoreKey",
    "Trace",
    "WorkerCrashed",
    "XPathEngine",
    "build_tree",
    "classify",
    "default_engine",
    "dump_snapshot",
    "evaluate",
    "evaluate_many",
    "evaluate_many_ids",
    "evaluate_many_sharded",
    "evaluate_many_stored",
    "evaluate_nodes",
    "get_plan",
    "load_snapshot",
    "make_evaluator",
    "parse",
    "parse_xml",
    "plan_query",
    "query_selects",
    "render_json",
    "render_prometheus",
    "serialize",
    "snapshot_hash",
    "unparse",
    "__version__",
]
