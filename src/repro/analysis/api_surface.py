"""Checker 6 — ``api-surface``: ``__all__``, re-exports and docs agree.

Four consistency contracts over the public surface:

* every name a public package lists in ``__all__`` is actually bound in
  that package's ``__init__`` (import, def, class or assignment) — a
  stale ``__all__`` entry breaks ``from repro import *`` and the docs;
* every public (non-underscore) name the top-level ``repro`` package
  imports is listed in its ``__all__`` — importing without exporting is
  how re-export drift starts;
* every name the top level re-exports *from* a public subpackage is in
  that subpackage's own ``__all__`` — the two surfaces must advertise
  the same contract;
* every API name the docs' migration tables reference (a backticked
  ``name(...)`` call or dotted ``repro.name``) still exists in the
  exported surface — tables that teach a rename must not outlive it.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.framework import Finding, Project, Rule, SourceFile, register

_TABLE_CALL = re.compile(r"(?<=`)([A-Za-z_][A-Za-z0-9_]*)\(")
_TABLE_DOTTED = re.compile(r"`repro\.([A-Za-z_][A-Za-z0-9_]*)")


def _module_all(tree: ast.Module) -> Optional[dict[str, int]]:
    """``__all__`` entries → line numbers, or None if not declared."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    out = {}
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            out[element.value] = element.lineno
                    return out
    return None


def _bound_names(tree: ast.Module) -> set[str]:
    """Every name bound at module level (imports, defs, assignments)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        bound.add((alias.asname or alias.name).split(".")[0])
    bound.add("__version__")
    return bound


def _imports_by_module(tree: ast.Module) -> dict[str, list[tuple[str, int]]]:
    """source module → [(imported public name, line)]."""
    out: dict[str, list[tuple[str, int]]] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            entries = out.setdefault(node.module, [])
            for alias in node.names:
                name = alias.asname or alias.name
                if not name.startswith("_") and name != "*":
                    entries.append((name, node.lineno))
    return out


@register
class ApiSurface(Rule):
    name = "api-surface"
    description = (
        "__all__ of public modules, top-level re-exports, and the docs' "
        "migration tables must advertise the same surface"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        modules: dict[str, SourceFile] = {}
        for suffix in config.public_modules:
            found = project.find(suffix)
            if found is not None and found.tree is not None:
                modules[suffix] = found

        exported: set[str] = set()
        all_by_suffix: dict[str, dict[str, int]] = {}
        for suffix, file in modules.items():
            declared = _module_all(file.tree)
            if declared is None:
                yield self.finding(
                    file.path, 1, "public module declares no __all__"
                )
                continue
            all_by_suffix[suffix] = declared
            exported.update(declared)
            bound = _bound_names(file.tree)
            for name, line in sorted(declared.items()):
                if name not in bound:
                    yield self.finding(
                        file.path, line,
                        f"__all__ names {name!r}, which the module neither "
                        "defines nor imports",
                    )

        top = modules.get("repro/__init__.py")
        if top is None:
            return
        top_all = all_by_suffix.get("repro/__init__.py", {})
        for source, names in sorted(_imports_by_module(top.tree).items()):
            sub_suffix = source.replace(".", "/") + "/__init__.py"
            sub_all = all_by_suffix.get(sub_suffix)
            for name, line in names:
                if name not in top_all:
                    yield self.finding(
                        top.path, line,
                        f"top-level repro imports {name!r} from {source} "
                        "but does not list it in __all__",
                    )
                if sub_all is not None and name not in sub_all:
                    yield self.finding(
                        top.path, line,
                        f"top-level repro re-exports {name!r}, which "
                        f"{source} does not list in its own __all__",
                    )

        yield from self._check_docs(top, exported, config)

    def _check_docs(
        self, top: SourceFile, exported: set[str], config
    ) -> Iterator[Finding]:
        try:
            root = Path(top.path).resolve().parents[2]
        except IndexError:  # pragma: no cover - unusual layout
            return
        for relative in config.docs_api_tables:
            doc = root / relative
            if not doc.is_file():
                continue
            for number, line in enumerate(
                doc.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if not line.lstrip().startswith("|"):
                    continue
                names = set(_TABLE_CALL.findall(line))
                for name in _TABLE_DOTTED.findall(line):
                    if name not in config.docs_api_ignore:
                        names.add(name)
                for name in sorted(names):
                    if name not in exported:
                        yield self.finding(
                            relative, number,
                            f"docs table references {name!r}, which no "
                            "public __all__ exports",
                        )
