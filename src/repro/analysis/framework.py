"""The shared machinery of the project-native static analysis suite.

Every checker in :mod:`repro.analysis` is a small class over the stdlib
:mod:`ast` module that yields :class:`Finding` records; this module owns
everything around them:

* **source loading** — each analyzed file is parsed once into a
  :class:`SourceFile` (text, AST, and its suppression comments) and the
  whole run is wrapped in a :class:`Project` so cross-file rules (wire
  exhaustiveness, API-surface drift) can see every file at once;
* **suppressions** — ``# repro: allow[<rule>] -- <reason>`` on (or one
  line above) a finding silences it; ``allow-file[<rule>]`` anywhere in a
  file silences the rule for the whole file.  A written reason is
  mandatory, unknown rule names and malformed comments are findings in
  their own right, and the total number of suppressions in force is
  budgeted (:attr:`~repro.analysis.config.AnalysisConfig.max_suppressions`);
* **baselines** — a JSON file of known findings; only findings *not* in
  the baseline fail the run, so the suite can be adopted on a codebase
  with historical debt without suppressing anything in source;
* **deterministic output** — findings sort by ``(path, line, rule,
  message)`` and render as ``path:line rule message``, so two runs over
  the same tree emit byte-identical reports.

The checkers themselves live in sibling modules and register on
:data:`ALL_RULES`; their shared configuration (the lock registry, the
wire dispatch spec, the frozen-attribute facts) lives in
:mod:`repro.analysis.config`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.config import AnalysisConfig

#: Severity levels, in increasing order of consequence.  ``error``
#: findings fail the run; ``warning`` findings are reported but do not
#: affect the exit code.
SEVERITIES = ("warning", "error")

#: The reserved rule name under which the framework reports problems with
#: the suppression comments themselves (and budget overruns).  It is not
#: itself suppressible — a broken escape hatch must not hide behind one.
SUPPRESSION_RULE = "suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule fired at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The canonical one-line report form, ``path:line rule message``."""
        return f"{self.path}:{self.line} {self.rule} {self.message}"

    def identity(self) -> tuple[str, str, str]:
        """The line-number-free identity baselines match on."""
        return (self.path, self.rule, self.message)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    path: str
    line: int
    rule: str
    reason: str
    file_scope: bool


_REPRO_COMMENT = re.compile(r"#\s*repro:\s*(?P<body>.*\S)?\s*$")
_ALLOW = re.compile(
    r"^allow(?P<scope>-file)?\[(?P<rule>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


class SourceFile:
    """One parsed source file plus its suppression state."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            self.parse_error = error
        self.suppressions: list[Suppression] = []
        self.suppression_problems: list[Finding] = []
        self._line_allows: dict[int, set[str]] = {}
        self._file_allows: set[str] = set()

    def _comments(self) -> Iterator[tuple[int, str]]:
        """Real ``#`` comment tokens (never docstring or string contents)."""
        reader = io.StringIO(self.text).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # the parse-error finding already covers this file

    def bind_suppressions(self, known_rules: Iterable[str]) -> None:
        """Parse every ``# repro:`` comment against the known rule names."""
        known = set(known_rules)
        for number, comment in self._comments():
            match = _REPRO_COMMENT.search(comment)
            if match is None:
                continue
            body = match.group("body") or ""
            problem = self._parse_one(number, body, known)
            if problem is not None:
                self.suppression_problems.append(
                    Finding(self.path, number, SUPPRESSION_RULE, problem)
                )

    def _parse_one(self, number: int, body: str, known: set[str]) -> Optional[str]:
        allow = _ALLOW.match(body)
        if allow is None:
            return (
                f"malformed suppression {body!r} (expected "
                "`# repro: allow[<rule>] -- <reason>`)"
            )
        rule = allow.group("rule").strip()
        reason = allow.group("reason")
        if rule not in known:
            return f"suppression names unknown rule {rule!r}"
        if rule == SUPPRESSION_RULE:
            return "the suppression meta-rule cannot itself be suppressed"
        if not reason:
            return (
                f"suppression for rule {rule!r} is missing its written "
                "reason (`-- <reason>`)"
            )
        file_scope = allow.group("scope") is not None
        self.suppressions.append(
            Suppression(self.path, number, rule, reason, file_scope)
        )
        if file_scope:
            self._file_allows.add(rule)
        else:
            self._line_allows.setdefault(number, set()).add(rule)
        return None

    def allows(self, rule: str, line: int) -> bool:
        """True if ``rule`` is suppressed at ``line`` (same or previous line)."""
        if rule in self._file_allows:
            return True
        for candidate in (line, line - 1):
            if rule in self._line_allows.get(candidate, ()):
                return True
        return False


class Project:
    """Every file of one analysis run, plus the shared configuration."""

    def __init__(self, files: list[SourceFile], config: "AnalysisConfig") -> None:
        self.files = files
        self.config = config
        self._by_path = {file.path: file for file in files}

    def find(self, suffix: str) -> Optional[SourceFile]:
        """The file whose (posix) path ends with ``suffix``, if analyzed."""
        for file in self.files:
            if file.path.endswith(suffix):
                return file
        return None

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)


class Rule:
    """Base class of every checker.

    Subclasses set :attr:`name` (the kebab-case id used in reports and
    suppressions), :attr:`description`, and implement :meth:`check` over
    the whole :class:`Project` (per-file rules simply loop).
    """

    name = "abstract"
    description = ""
    severity = "error"

    def check(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(path, line, self.name, message, self.severity)


#: The registry every shipped checker appends itself to (import order in
#: ``repro.analysis.__init__`` populates it deterministically).
ALL_RULES: list[Rule] = []


def register(rule_class: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator: instantiate and register a checker."""
    ALL_RULES.append(rule_class())
    return rule_class


def rule_names() -> list[str]:
    """Every registered rule name plus the framework's own rule names."""
    return [rule.name for rule in ALL_RULES] + [SUPPRESSION_RULE, "syntax"]


# -- file collection ---------------------------------------------------------


def _normalize(path: Path) -> str:
    return str(PurePosixPath(*path.parts))


def collect_files(paths: Iterable[str]) -> list[tuple[str, str]]:
    """Expand file/directory arguments into ``(display path, text)`` pairs.

    Directories are walked recursively for ``*.py`` files; hidden
    directories and ``__pycache__`` are skipped.  The returned order is
    sorted, so analysis output is independent of filesystem order.
    """
    out: dict[str, str] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {raw!r}")
        for candidate in candidates:
            parts = candidate.parts
            if any(part == "__pycache__" or part.startswith(".") for part in parts):
                continue
            display = _normalize(candidate)
            if display not in out:
                out[display] = candidate.read_text(encoding="utf-8")
    return sorted(out.items())


# -- baselines ---------------------------------------------------------------


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """Load the identities of known findings from a baseline JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    records = data["findings"] if isinstance(data, dict) else data
    out = set()
    for record in records:
        out.add((record["path"], record["rule"], record["message"]))
    return out


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as the accepted baseline."""
    records = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]
    payload = json.dumps({"findings": records}, indent=2, sort_keys=True)
    Path(path).write_text(payload + "\n", encoding="utf-8")


# -- the driver --------------------------------------------------------------


@dataclass
class RunResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def build_project(
    sources: Iterable[tuple[str, str]], config: "AnalysisConfig"
) -> Project:
    files = [SourceFile(path, text) for path, text in sources]
    known = rule_names()
    for file in files:
        file.bind_suppressions(known)
    return Project(files, config)


def run_rules(
    project: Project,
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[set[tuple[str, str, str]]] = None,
) -> RunResult:
    """Run ``rules`` (default: all registered) over ``project``.

    Findings suppressed in source move to :attr:`RunResult.suppressed`;
    findings whose identity appears in ``baseline`` are dropped; what is
    left, plus any problems with the suppression comments themselves and
    any budget overrun, is the run's verdict, deterministically sorted.
    """
    active = list(ALL_RULES if rules is None else rules)
    config = project.config
    raw: list[Finding] = []
    for file in project:
        if file.parse_error is not None:
            line = file.parse_error.lineno or 1
            raw.append(
                Finding(
                    file.path, line, "syntax",
                    f"file does not parse: {file.parse_error.msg}",
                )
            )
    for rule in active:
        raw.extend(rule.check(project))

    result = RunResult()
    for file in project:
        result.findings.extend(file.suppression_problems)
        result.suppressions.extend(file.suppressions)

    budget = config.max_suppressions
    in_force = sorted(result.suppressions, key=lambda s: (s.path, s.line))
    if len(in_force) > budget:
        over = in_force[budget]
        result.findings.append(
            Finding(
                over.path, over.line, SUPPRESSION_RULE,
                f"suppression budget exceeded: {len(in_force)} in force, "
                f"budget is {budget}",
            )
        )

    for finding in raw:
        file = project._by_path.get(finding.path)
        if file is not None and file.allows(finding.rule, finding.line):
            result.suppressed.append(finding)
        elif baseline and finding.identity() in baseline:
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result


def analyze_sources(
    sources: dict[str, str],
    rules: Optional[Iterable[str]] = None,
    config: Optional["AnalysisConfig"] = None,
) -> list[Finding]:
    """Analyze in-memory ``{path: text}`` sources; returns sorted findings.

    This is the embedding API the fixture tests and the executable
    examples in ``docs/analysis.md`` use: no filesystem, no process exit,
    just findings.  ``rules`` selects checkers by name (default: all).
    """
    from repro.analysis.config import default_config

    selected: Optional[list[Rule]] = None
    if rules is not None:
        wanted = set(rules)
        unknown = wanted - set(rule_names())
        if unknown:
            raise ValueError(f"unknown rule(s): {sorted(unknown)}")
        selected = [rule for rule in ALL_RULES if rule.name in wanted]
    project = build_project(
        sorted(sources.items()), config or default_config()
    )
    return run_rules(project, selected).findings


def analyze_source(
    text: str,
    path: str = "src/repro/example.py",
    rules: Optional[Iterable[str]] = None,
    config: Optional["AnalysisConfig"] = None,
) -> list[Finding]:
    """Analyze one in-memory source string (see :func:`analyze_sources`)."""
    return analyze_sources({path: text}, rules=rules, config=config)
