"""The facts the checkers enforce — this module *is* the project spec.

Everything here is data, deliberately: the lock registry, the lock
hierarchy, the wire dispatch roles, the frozen-attribute facts and the
async escape hatches are the hand-maintained invariants PRs 3–7
accumulated, written down once in machine-checkable form.  The prose
rendition lives in ``docs/analysis.md`` (and an executable fence there
asserts the two stay in sync).

Tests build small :class:`AnalysisConfig` instances of their own; the
default one (:func:`default_config`) describes the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

#: Lock hierarchy, outermost first.  A ``with`` on a later lock may nest
#: lexically inside a ``with`` on an earlier one, never the reverse.
#: Re-acquiring the same name is allowed (``_serving_lock``/``_stripe``
#: are RLocks).  This tuple is the single source of truth the table in
#: ``docs/analysis.md`` is generated from.
LOCK_ORDER: tuple[str, ...] = (
    "_lock",            # DocumentRegistry: LRU order + counters
    "_stripe",          # DocHandle: per-document index/evaluator state
    "_plan_lock",       # XPathEngine: plan-cache access
    "_inflight_lock",   # XPathEngine: single-flight table
    "_stats_lock",      # XPathEngine: query/store counters
    "_store_lock",      # XPathEngine: attached store + hydration cache
    "_serving_lock",    # XPathEngine: serving pool / network server (RLock)
    "_shutdown_lock",   # XPathServer: background-thread lifecycle
    "_dispatch_lock",   # XPathServer: pool dispatch serialisation
    "_lifecycle_lock",  # ShardedPool: open/closed transition
    "_env_lock",        # serving.pool module: worker-env mutation
    "_telemetry_lock",  # telemetry: shard/child/family creation (leaf lock)
)

#: ``(class name, attribute)`` → guarding lock attribute.  Writes to these
#: attributes outside ``__init__``/``__new__`` must sit lexically inside
#: ``with self.<lock>``.  This is the registry of shared mutable state.
SHARED_CLASS_ATTRS: Mapping[tuple[str, str], str] = {
    # engine/engine.py — counters and caches behind the stats lock
    ("XPathEngine", "_queries"): "_stats_lock",
    ("XPathEngine", "_coalesced"): "_stats_lock",
    ("XPathEngine", "_store_hits"): "_stats_lock",
    ("XPathEngine", "_store_misses"): "_stats_lock",
    ("XPathEngine", "_store_loads"): "_stats_lock",
    # engine/engine.py — store attachment state
    ("XPathEngine", "_store"): "_store_lock",
    ("XPathEngine", "_store_mmap"): "_store_lock",
    # engine/engine.py — serving backends
    ("XPathEngine", "_serving"): "_serving_lock",
    ("XPathEngine", "_serving_finalizer"): "_serving_lock",
    ("XPathEngine", "_network_server"): "_serving_lock",
    # engine/registry.py — LRU counters behind the registry lock
    ("DocumentRegistry", "adds"): "_lock",
    ("DocumentRegistry", "reuses"): "_lock",
    ("DocumentRegistry", "evictions"): "_lock",
    # serving/pool.py — the open/closed transition
    ("ShardedPool", "_closed"): "_lifecycle_lock",
    # serving/server.py — background-thread handle
    ("XPathServer", "_thread"): "_shutdown_lock",
    # telemetry/metrics.py — the one unsharded metric value
    ("Gauge", "_value"): "_telemetry_lock",
    # telemetry/slowlog.py — mutable threshold (entries ride a deque)
    ("SlowQueryLog", "_threshold"): "_telemetry_lock",
}

#: Attribute → guarding lock *on the same receiver*: ``obj.<attr> = …``
#: must sit inside ``with obj.<lock>`` for the same ``obj``.  Used where
#: the writer is not a method of the owning class (the registry retires
#: handles it no longer tracks).
SHARED_RECEIVER_ATTRS: Mapping[str, str] = {
    "_retired": "_stripe",  # DocHandle: retirement flag
}

#: Path fragments the lock-discipline rule applies to.
LOCK_SCOPE: tuple[str, ...] = (
    "repro/engine/",
    "repro/serving/",
    "repro/store/",
    "repro/telemetry/",
)

#: Where the wire-format constants live.
WIRE_MODULE = "repro/serving/wire.py"

#: The dispatch surfaces, each with the frame constants it is *specified
#: not to handle* (with the reason — this mapping is the protocol role
#: spec, not a suppression).  Every other ``MSG_*`` constant in
#: ``wire.py`` must be referenced (compared in a dispatch arm, or
#: produced via its ``encode_*`` constructor) in each module below.
WIRE_DISPATCH_EXEMPT: Mapping[str, frozenset[str]] = {
    # The worker speaks only the pool<->worker dialect; HELLO/OVERLOADED
    # belong to the network tier in front of it, and METRICS exposition
    # is served by the network server from its own registry (workers
    # contribute through the STATS payload the pool merges).
    "repro/serving/worker.py": frozenset(
        {"MSG_HELLO", "MSG_OVERLOADED", "MSG_METRICS", "MSG_METRICS_REPLY"}
    ),
    # The network server forwards queries to the pool, which owns the
    # pool-internal lifecycle frames.
    "repro/serving/server.py": frozenset(
        {"MSG_WARM", "MSG_READY", "MSG_SHUTDOWN"}
    ),
    # Network clients never see the pool-internal lifecycle frames.
    "repro/serving/client.py": frozenset(
        {"MSG_WARM", "MSG_READY", "MSG_SHUTDOWN"}
    ),
}

#: Prefix the wire rule treats as a frame-type constant.
WIRE_PREFIX = "MSG_"

#: Modules whose ``async def`` bodies must not block the event loop.
ASYNC_SCOPE: tuple[str, ...] = (
    "repro/serving/server.py",
    "repro/serving/client.py",
)

#: Dotted call paths that block (matched on ``a.b.c`` name chains).
BLOCKING_CALLS: frozenset[str] = frozenset(
    {"time.sleep", "socket.create_connection", "open", "input"}
)

#: Method names that block whatever they are called on: sync socket and
#: pipe I/O, thread/future synchronisation, and the pool's synchronous
#: entry points (``pool.evaluate_batch`` and friends run a blocking pipe
#: conversation and may only be reached from the dispatcher thread).
BLOCKING_METHODS: frozenset[str] = frozenset(
    {
        "sleep", "recv", "recv_bytes", "send_bytes", "sendall", "accept",
        "connect", "join", "result", "acquire",
        "evaluate_batch", "evaluate_sharded", "warm_up", "ping",
    }
)

#: Call names that hand work to a thread (their arguments may name or
#: invoke blocking callables) or legitimise an awaited ``sleep``/``wait``.
ASYNC_ESCAPES: frozenset[str] = frozenset(
    {"run_in_executor", "to_thread", "wait_for"}
)

#: Frozen attribute → modules allowed to write it (the owning type's
#: hydration paths).  ``IdSet`` slots and the snapshot-backed
#: ``DocumentIndex`` arrays are immutable everywhere else: the zero-copy
#: mmap path shares them between processes on that promise.  (``parent``
#: is deliberately absent: the name collides with the mutable
#: ``XMLNode.parent`` link, so the codec's write to it is covered by the
#: index-build modules being the only ones that touch ``DocumentIndex``.)
FROZEN_ATTRS: Mapping[str, tuple[str, ...]] = {
    "universe": ("repro/xmlmodel/idset.py",),
    "_bits": ("repro/xmlmodel/idset.py",),
    "_ids": ("repro/xmlmodel/idset.py", "repro/engine/result.py"),
    "subtree_end": ("repro/xmlmodel/index.py", "repro/store/codec.py"),
    "post": ("repro/xmlmodel/index.py", "repro/store/codec.py"),
    "first_child": ("repro/xmlmodel/index.py", "repro/store/codec.py"),
    "next_sibling": ("repro/xmlmodel/index.py", "repro/store/codec.py"),
    "prev_sibling": ("repro/xmlmodel/index.py", "repro/store/codec.py"),
    "element_ids": ("repro/xmlmodel/index.py", "repro/store/codec.py"),
}

#: Functions that are serving *loops*: one uncaught exception kills a
#: worker process or wedges every in-flight request, so broad catches
#: here must either re-raise or log — silently converting is not enough;
#: anything expected must arrive as the typed ``ReproError`` taxonomy.
LOOP_FUNCTIONS: Mapping[str, frozenset[str]] = {
    "repro/serving/worker.py": frozenset({"worker_main"}),
    "repro/serving/server.py": frozenset({"_dispatcher_main"}),
}

#: Exception names considered "broad" by the hygiene rule.
BROAD_EXCEPTIONS: frozenset[str] = frozenset({"Exception", "BaseException"})

#: Receiver names whose method calls count as logging.
LOGGER_NAMES: frozenset[str] = frozenset({"logger", "logging", "log"})

#: Public packages whose ``__all__`` must stay consistent with the names
#: the top-level ``repro`` package re-exports from them.
PUBLIC_MODULES: tuple[str, ...] = (
    "repro/__init__.py",
    "repro/engine/__init__.py",
    "repro/serving/__init__.py",
    "repro/store/__init__.py",
    "repro/xmlmodel/__init__.py",
    "repro/xmlmodel/kernels/__init__.py",
    "repro/planner/__init__.py",
    "repro/analysis/__init__.py",
    "repro/telemetry/__init__.py",
)

#: Documentation files whose migration tables name ``repro.<name>``
#: attributes; each such name must exist in the top-level ``__all__``.
DOCS_API_TABLES: tuple[str, ...] = (
    "docs/engine.md",
    "docs/telemetry.md",
    "docs/kernels.md",
    "README.md",
)

#: ``repro.<name>`` mentions in docs tables that are modules or
#: CLI-level names, not ``__all__`` entries.
DOCS_API_IGNORE: frozenset[str] = frozenset(
    {
        "analysis", "cli", "engine", "errors", "evaluation", "planner",
        "serving", "store", "telemetry", "xmlmodel", "xpath",
    }
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything a run of the checkers needs to know about the project."""

    lock_order: tuple[str, ...] = LOCK_ORDER
    shared_class_attrs: Mapping[tuple[str, str], str] = field(
        default_factory=lambda: dict(SHARED_CLASS_ATTRS)
    )
    shared_receiver_attrs: Mapping[str, str] = field(
        default_factory=lambda: dict(SHARED_RECEIVER_ATTRS)
    )
    lock_scope: tuple[str, ...] = LOCK_SCOPE
    init_methods: frozenset[str] = frozenset({"__init__", "__new__"})

    wire_module: str = WIRE_MODULE
    wire_prefix: str = WIRE_PREFIX
    wire_dispatch_exempt: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(WIRE_DISPATCH_EXEMPT)
    )

    async_scope: tuple[str, ...] = ASYNC_SCOPE
    blocking_calls: frozenset[str] = BLOCKING_CALLS
    blocking_methods: frozenset[str] = BLOCKING_METHODS
    async_escapes: frozenset[str] = ASYNC_ESCAPES

    frozen_attrs: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(FROZEN_ATTRS)
    )

    loop_functions: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(LOOP_FUNCTIONS)
    )
    broad_exceptions: frozenset[str] = BROAD_EXCEPTIONS
    logger_names: frozenset[str] = LOGGER_NAMES

    public_modules: tuple[str, ...] = PUBLIC_MODULES
    docs_api_tables: tuple[str, ...] = DOCS_API_TABLES
    docs_api_ignore: frozenset[str] = DOCS_API_IGNORE

    max_suppressions: int = 5

    def with_overrides(self, **changes: object) -> "AnalysisConfig":
        """A copy with ``changes`` applied (tests build variants this way)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def default_config() -> AnalysisConfig:
    """The configuration describing the real repository layout."""
    return AnalysisConfig()
