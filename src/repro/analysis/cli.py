"""The ``python -m repro.analysis`` / ``repro lint`` command line.

Reports every finding as ``path:line rule message`` (sorted, so output
is deterministic) and exits 1 when any error-severity finding survives
suppressions and the baseline, 0 on a clean tree, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import framework
from repro.analysis.config import default_config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "project-native static analysis: lock discipline, wire "
            "exhaustiveness, async-blocking, immutability, exception "
            "hygiene, API-surface drift"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="NAME",
        help="run only this rule (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="JSON baseline of accepted findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="accept every current finding into FILE and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--max-suppressions", type=int, default=None, metavar="N",
        help="override the suppression budget",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list findings silenced by suppressions or the baseline",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in framework.ALL_RULES:
            print(f"{rule.name}: {rule.description}")
        print(
            f"{framework.SUPPRESSION_RULE}: malformed/unknown/reason-less "
            "suppression comments, and budget overruns"
        )
        return 0

    rules = None
    if args.rules:
        wanted = set(args.rules)
        known = set(framework.rule_names())
        unknown = sorted(wanted - known)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}")
        rules = [rule for rule in framework.ALL_RULES if rule.name in wanted]

    config = default_config()
    if args.max_suppressions is not None:
        config = config.with_overrides(max_suppressions=args.max_suppressions)

    try:
        sources = framework.collect_files(args.paths)
    except FileNotFoundError as error:
        parser.error(str(error))

    baseline = None
    if args.baseline:
        try:
            baseline = framework.load_baseline(args.baseline)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {args.baseline!r}")
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            parser.error(f"unreadable baseline {args.baseline!r}: {error}")

    project = framework.build_project(sources, config)
    result = framework.run_rules(project, rules, baseline=baseline)

    if args.write_baseline:
        framework.write_baseline(args.write_baseline, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [
                        {
                            "path": f.path, "line": f.line, "rule": f.rule,
                            "message": f.message, "severity": f.severity,
                        }
                        for f in result.findings
                    ],
                    "suppressed": len(result.suppressed),
                    "suppressions": len(result.suppressions),
                },
                indent=2,
            )
        )
        return result.exit_code

    for finding in result.findings:
        print(finding.render())
    if args.show_suppressed:
        for finding in result.suppressed:
            print(f"{finding.render()} [suppressed]")
    tally = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.suppressions)} suppression(s) in force, "
        f"{len(project.files)} file(s)"
    )
    print(tally, file=sys.stderr)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
