"""Checker 2 — ``wire-exhaustive``: every frame type has a handler.

The wire module (``serving/wire.py``) is the frame taxonomy: every
module-level ``MSG_*`` constant is one frame type, and every
``encode_*`` function is mapped to the constant it frames (by finding
the ``MSG_*`` name its body references).  Each dispatch surface —
``worker.py``, ``server.py``, ``client.py`` — must then *touch* every
frame type: either compare against its constant in a dispatch arm, or
produce it through its ``encode_*`` constructor.  Frame types a surface
is specified not to speak (``WIRE_DISPATCH_EXEMPT`` — e.g. the worker
never sees the network tier's ``HELLO``) are part of the protocol role
spec, not suppressions.

Net effect: adding ``MSG_NEW = 16`` to ``wire.py`` fails CI in all
three dispatch modules until each one either handles the frame or the
spec says it never will; deleting a handler arm fails the same way.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Project, Rule, SourceFile, register


def _constants(tree: ast.Module, prefix: str) -> dict[str, int]:
    """Module-level ``MSG_*`` assignments → their line numbers."""
    out: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith(prefix):
                    out[target.id] = node.lineno
    return out


def _encoder_map(tree: ast.Module, prefix: str) -> dict[str, str]:
    """``encode_*`` function name → the ``MSG_*`` constant it frames."""
    out: dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.startswith("encode_"):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and inner.id.startswith(prefix):
                out[node.name] = inner.id
                break
    return out


def _referenced(
    file: SourceFile, prefix: str, encoders: dict[str, str]
) -> set[str]:
    """Every frame constant a dispatch module touches."""
    touched: set[str] = set()
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Attribute) and node.attr.startswith(prefix):
            touched.add(node.attr)
        elif isinstance(node, ast.Name) and node.id.startswith(prefix):
            touched.add(node.id)
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in encoders:
                touched.add(encoders[name])
    return touched


@register
class WireExhaustive(Rule):
    name = "wire-exhaustive"
    description = (
        "every MSG_* frame constant must be handled (or spec-exempted) in "
        "each dispatch module"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        wire = project.find(config.wire_module)
        if wire is None or wire.tree is None:
            return
        constants = _constants(wire.tree, config.wire_prefix)
        encoders = _encoder_map(wire.tree, config.wire_prefix)
        for suffix, exempt in config.wire_dispatch_exempt.items():
            module = project.find(suffix)
            if module is None or module.tree is None:
                continue
            unknown = exempt - set(constants)
            for name in sorted(unknown):
                yield self.finding(
                    wire.path, 1,
                    f"dispatch spec for {suffix} exempts {name!r}, which "
                    f"{config.wire_module} does not define",
                )
            touched = _referenced(module, config.wire_prefix, encoders)
            for name, line in sorted(constants.items()):
                if name in touched or name in exempt:
                    continue
                yield self.finding(
                    module.path, 1,
                    f"frame constant {name!r} (wire.py:{line}) is neither "
                    "handled nor produced here, and the dispatch spec does "
                    "not exempt it",
                )
