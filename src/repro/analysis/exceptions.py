"""Checker 5 — ``exception-hygiene``: no silent swallowing, typed loops.

Two tiers:

* **everywhere** — a bare ``except:`` is always a finding; an ``except
  Exception``/``except BaseException`` handler must *do something* with
  what it caught: re-raise (plain or ``raise … from``), log it, or at
  least bind and use the exception object (converting it into a typed
  wire frame or stashing it for another thread both count).  A broad
  handler whose body neither raises, logs, nor reads the bound exception
  is swallowing errors it cannot even name;
* **serving loops** (``LOOP_FUNCTIONS``: the worker's receive loop and
  the server's dispatcher thread) — merely *using* the error is not
  enough, because one of these threads dying or mis-converting takes the
  whole serving tier with it: a broad catch here must re-raise or log,
  and anything expected must already arrive as the typed
  :mod:`repro.errors` / ``ServingError`` taxonomy.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.framework import Finding, Project, Rule, register


def _exception_names(node: Optional[ast.expr]) -> list[str]:
    """The exception class names an ``except`` clause matches."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _contains_raise(body: list[ast.stmt]) -> bool:
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return True
    return False


def _contains_logging(body: list[ast.stmt], logger_names: frozenset[str]) -> bool:
    for statement in body:
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                if func.value.id in logger_names:
                    return True
    return False


def _uses_name(body: list[ast.stmt], name: Optional[str]) -> bool:
    if name is None:
        return False
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name) and node.id == name and isinstance(
                node.ctx, ast.Load
            ):
                return True
    return False


@register
class ExceptionHygiene(Rule):
    name = "exception-hygiene"
    description = (
        "no bare/broad except that swallows silently; serving loops catch "
        "only the typed taxonomy (or log what escapes it)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        for file in project:
            if file.tree is None:
                continue
            loop_names = frozenset()
            for suffix, names in config.loop_functions.items():
                if file.path.endswith(suffix):
                    loop_names = names
                    break
            yield from self._check_file(file, loop_names, config)

    def _check_file(self, file, loop_names, config) -> Iterator[Finding]:
        assert file.tree is not None
        # (handler, name of the enclosing function, if any)
        stack: list[tuple[ast.AST, Optional[str]]] = [(file.tree, None)]
        while stack:
            node, function = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function = node.name
            if isinstance(node, ast.ExceptHandler):
                finding = self._check_handler(
                    file.path, node, function, loop_names, config
                )
                if finding is not None:
                    yield finding
            for child in ast.iter_child_nodes(node):
                stack.append((child, function))

    def _check_handler(
        self, path, handler: ast.ExceptHandler, function, loop_names, config
    ) -> Optional[Finding]:
        names = _exception_names(handler.type)
        if handler.type is None:
            return self.finding(
                path, handler.lineno,
                "bare `except:` — name the exceptions this handler expects",
            )
        if not any(name in config.broad_exceptions for name in names):
            return None
        broad = next(n for n in names if n in config.broad_exceptions)
        reraises = _contains_raise(handler.body)
        logs = _contains_logging(handler.body, config.logger_names)
        in_loop = function is not None and function in loop_names
        if in_loop:
            if reraises or logs:
                return None
            return self.finding(
                path, handler.lineno,
                f"serving loop '{function}' catches '{broad}': loops may "
                "only catch the typed ReproError/ServingError taxonomy, or "
                "must log what escapes it",
            )
        if reraises or logs or _uses_name(handler.body, handler.name):
            return None
        return self.finding(
            path, handler.lineno,
            f"broad `except {broad}` swallows without re-raising, logging, "
            "or using the exception",
        )
