"""Project-native static analysis for the repro codebase.

The serving stack's correctness rests on invariants no type system
sees: a lock hierarchy, an exhaustively-dispatched wire taxonomy, an
event loop that must never block, frozen mmap-shared arrays, a typed
error contract, and a public API surface mirrored in three places.
This package encodes each invariant as a stdlib-``ast`` checker —
the tooling analogue of the source paper's own move of classifying a
query *statically*, before running it.

Run it as ``python -m repro.analysis [paths]`` or ``repro lint``; embed
it via :func:`analyze_source` / :func:`analyze_sources`.  The rule
catalogue, suppression syntax (``# repro: allow[<rule>] -- <reason>``)
and the lock-hierarchy table live in ``docs/analysis.md``.
"""

from repro.analysis.framework import (
    ALL_RULES,
    Finding,
    Rule,
    analyze_source,
    analyze_sources,
    rule_names,
)
from repro.analysis.config import LOCK_ORDER, AnalysisConfig, default_config

# Importing the checker modules registers them on ALL_RULES (the import
# order here fixes the registry order, and with it report ordering for
# equal (path, line) keys).
from repro.analysis import locks as _locks  # noqa: F401
from repro.analysis import wire_protocol as _wire  # noqa: F401
from repro.analysis import async_blocking as _async  # noqa: F401
from repro.analysis import immutability as _immutability  # noqa: F401
from repro.analysis import exceptions as _exceptions  # noqa: F401
from repro.analysis import api_surface as _api  # noqa: F401
from repro.analysis.cli import main

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "Finding",
    "LOCK_ORDER",
    "Rule",
    "analyze_source",
    "analyze_sources",
    "default_config",
    "main",
    "rule_names",
]
