"""Checker 4 — ``immutability``: frozen state is written only where born.

``IdSet`` promises value semantics (its slots — ``universe``, ``_ids``,
``_bits`` — are written in ``__init__`` and the lazy dual-representation
getters, then never again), and the snapshot-backed ``DocumentIndex``
arrays are shared zero-copy between processes by the mmap store: a write
anywhere else corrupts every holder at once, across process boundaries.

The rule is attribute-name based: each frozen attribute in
``FROZEN_ATTRS`` carries the list of modules that constitute its
hydration path (the owning module, plus ``store/codec.py`` for the
arrays the snapshot decoder rebuilds through ``__new__``).  Assigning
one of these names anywhere else — whatever the receiver expression —
is a finding.  Deletion (``del x._bits``) counts as a write.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Project, Rule, register


@register
class Immutability(Rule):
    name = "immutability"
    description = (
        "IdSet slots and snapshot-backed index arrays are assigned only "
        "inside their declared hydration modules"
    )

    def _targets(self, node: ast.stmt) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        for file in project:
            if file.tree is None:
                continue
            # (node, name of the enclosing function, if any)
            stack: list[tuple[ast.AST, str]] = [(file.tree, "")]
            while stack:
                node, function = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    function = node.name
                for child in ast.iter_child_nodes(node):
                    stack.append((child, function))
                if not isinstance(
                    node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
                ):
                    continue
                for target in self._targets(node):
                    if not isinstance(target, ast.Attribute):
                        continue
                    allowed = config.frozen_attrs.get(target.attr)
                    if allowed is None:
                        continue
                    if any(file.path.endswith(suffix) for suffix in allowed):
                        continue
                    if (
                        function in ("__init__", "__new__")
                        and isinstance(target.value, ast.Name)
                        and target.value.id in ("self", "cls")
                    ):
                        continue  # construction: the object is not shared yet
                    verb = "deletes" if isinstance(node, ast.Delete) else "assigns"
                    owners = ", ".join(allowed)
                    yield self.finding(
                        file.path, node.lineno,
                        f"{verb} frozen attribute '.{target.attr}' outside "
                        f"its hydration path ({owners})",
                    )
