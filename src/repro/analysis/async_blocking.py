"""Checker 3 — ``async-blocking``: the event loop must never block.

Inside ``async def`` bodies of the network tier (``serving/server.py``,
``serving/client.py``), calls that block a thread — ``time.sleep``,
synchronous socket/pipe I/O, thread joins, ``Future.result``, and the
pool's synchronous entry points (``evaluate_batch`` et al. run a whole
blocking pipe conversation) — are findings, with two escapes:

* a call that is directly ``await``-ed is a coroutine, not a block
  (``await asyncio.sleep(...)``, ``await event.wait()``);
* a call inside the argument list of a declared dispatcher escape
  (``run_in_executor``, ``asyncio.to_thread``, ``asyncio.wait_for``) is
  being handed to a thread or wrapped, which is exactly the sanctioned
  pattern: the dispatcher thread is the pool's one caller.

Nested ``def``/``lambda`` bodies are skipped: they execute on whatever
thread calls them, which for this codebase is the executor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.framework import Finding, Project, Rule, register


def _dotted(node: ast.expr) -> Optional[str]:
    """``time.sleep`` → ``"time.sleep"`` (name chains only)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _AsyncBody(ast.NodeVisitor):
    """Scans one ``async def`` body for blocking calls."""

    def __init__(self, rule: Rule, path: str, config) -> None:
        self.rule = rule
        self.path = path
        self.config = config
        self.findings: list[Finding] = []
        self.shield = 0  # > 0 inside await / escape-call arguments

    def visit_FunctionDef(self, node) -> None:  # nested sync defs: skip
        return

    def visit_Lambda(self, node) -> None:
        return

    def visit_AsyncFunctionDef(self, node) -> None:  # nested async: its own scan
        return

    def visit_Await(self, node: ast.Await) -> None:
        self.shield += 1
        self.generic_visit(node)
        self.shield -= 1

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in self.config.async_escapes:
            # The callee itself is fine; its arguments are sanctioned.
            self.visit(func)
            self.shield += 1
            for arg in node.args:
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            self.shield -= 1
            return
        if self.shield == 0:
            dotted = _dotted(func)
            blocked = (
                dotted in self.config.blocking_calls
                or (
                    isinstance(func, ast.Attribute)
                    and func.attr in self.config.blocking_methods
                )
                or (
                    isinstance(func, ast.Name)
                    and func.id in self.config.blocking_calls
                )
            )
            if blocked:
                label = dotted or name or "<call>"
                self.findings.append(
                    self.rule.finding(
                        self.path, node.lineno,
                        f"blocking call '{label}(...)' inside an async "
                        "body; await it, or route it through the "
                        "dispatcher thread (run_in_executor)",
                    )
                )
        self.generic_visit(node)


@register
class AsyncBlocking(Rule):
    name = "async-blocking"
    description = (
        "no blocking calls inside async def bodies of the network tier "
        "except via the declared dispatcher-thread escapes"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        for file in project:
            if file.tree is None:
                continue
            if not any(file.path.endswith(s) for s in config.async_scope):
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    scanner = _AsyncBody(self, file.path, config)
                    for statement in node.body:
                        scanner.visit(statement)
                    yield from scanner.findings
