"""Checker 1 — ``lock-discipline``: shared writes and lock ordering.

Two static race/deadlock lints over the declared lock registry in
:mod:`repro.analysis.config`:

* a write to an attribute declared shared (``SHARED_CLASS_ATTRS`` /
  ``SHARED_RECEIVER_ATTRS``) must sit *lexically* inside a ``with`` on
  the declared guarding lock of the same receiver — construction
  (``__init__``/``__new__``) is exempt, because the object is not yet
  published;
* a ``with`` that acquires a lock from the declared hierarchy while
  another hierarchy lock is already held lexically must acquire *inward*
  (same or later position in ``LOCK_ORDER``) — acquiring outward is the
  classic lock-inversion deadlock shape.

The analysis is lexical on purpose: it cannot see a lock held across a
call boundary, but it also never false-positives on one, and every
invariant the registry records is in practice maintained lexically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.framework import Finding, Project, Rule, register


def _receiver_of(node: ast.expr) -> Optional[str]:
    """``self._lock`` → ``"self"``; ``handle._stripe`` → ``"handle"``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id
    return None


class _ScopeVisitor(ast.NodeVisitor):
    """Walks one file tracking (class, function, held-locks) context."""

    def __init__(self, rule: "LockDiscipline", path: str, config) -> None:
        self.rule = rule
        self.path = path
        self.config = config
        self.findings: list[Finding] = []
        self.class_stack: list[str] = []
        self.function_stack: list[str] = []
        # each entry: (receiver, lock attr, order index or None)
        self.with_stack: list[tuple[str, str, Optional[int]]] = []

    # -- scope bookkeeping -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        self.function_stack.append(node.name)
        saved = self.with_stack
        self.with_stack = []  # locks do not stay held across a def boundary
        self.generic_visit(node)
        self.with_stack = saved
        self.function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- with: lock acquisition --------------------------------------------

    def _lock_of(self, item: ast.withitem) -> Optional[tuple[str, str]]:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr in self.config.lock_order:
            receiver = _receiver_of(expr)
            if receiver is not None:
                return receiver, expr.attr
        return None

    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            lock = self._lock_of(item)
            if lock is None:
                continue
            receiver, attr = lock
            index = self.config.lock_order.index(attr)
            for _, held_attr, held_index in self.with_stack:
                if held_index is not None and index < held_index:
                    self.findings.append(
                        self.rule.finding(
                            self.path, node.lineno,
                            f"acquires '{attr}' while holding '{held_attr}': "
                            "the declared hierarchy orders "
                            f"'{attr}' outside '{held_attr}'",
                        )
                    )
                    break
            self.with_stack.append((receiver, attr, index))
            acquired += 1
        self.generic_visit(node)
        if acquired:
            del self.with_stack[-acquired:]

    visit_AsyncWith = visit_With

    # -- attribute writes ---------------------------------------------------

    def _holds(self, receiver: str, lock_attr: str) -> bool:
        return any(
            held_receiver == receiver and held_attr == lock_attr
            for held_receiver, held_attr, _ in self.with_stack
        )

    def _check_write(self, target: ast.expr, line: int) -> None:
        if not isinstance(target, ast.Attribute):
            return
        receiver = _receiver_of(target)
        if receiver is None:
            return
        attr = target.attr
        in_init = bool(
            self.function_stack
        ) and self.function_stack[-1] in self.config.init_methods

        lock_attr = None
        if self.class_stack and receiver == "self":
            lock_attr = self.config.shared_class_attrs.get(
                (self.class_stack[-1], attr)
            )
        if lock_attr is None:
            lock_attr = self.config.shared_receiver_attrs.get(attr)
        if lock_attr is None:
            return
        if in_init and receiver == "self":
            return
        if self._holds(receiver, lock_attr):
            return
        self.findings.append(
            self.rule.finding(
                self.path, line,
                f"write to shared attribute '{receiver}.{attr}' outside "
                f"`with {receiver}.{lock_attr}`",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write(node.target, node.lineno)
        self.generic_visit(node)


@register
class LockDiscipline(Rule):
    name = "lock-discipline"
    description = (
        "writes to declared shared attributes must hold the declared lock; "
        "nested lock acquisitions must follow the hierarchy"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        for file in project:
            if file.tree is None:
                continue
            if not any(scope in file.path for scope in config.lock_scope):
                continue
            visitor = _ScopeVisitor(self, file.path, config)
            visitor.visit(file.tree)
            yield from visitor.findings
