"""Cross-checking against :mod:`xml.etree.ElementTree` (the stand-in external engine).

The paper's introduction appeals to measurements of fielded XPath engines;
in this offline reproduction the independently implemented engine available
is the ElementPath mini-language of Python's standard library.  It supports
only a subset of abbreviated XPath (``a/b``, ``.//a``, ``*``, ``[tag]``,
``[@attr='v']``, ``[position]``), so the helpers here both translate a
document for it and say whether a given query falls into the supported
subset.  The E8 bench and the integration tests use it as an agreement
oracle wherever possible.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree

from repro.xmlmodel.document import Document
from repro.xmlmodel.serialize import serialize


def to_elementtree(document: Document) -> ElementTree.Element:
    """Convert one of our documents into an ElementTree element tree."""
    return ElementTree.fromstring(serialize(document))


def elementtree_find_all(document: Document, element_path: str) -> list[ElementTree.Element]:
    """Run an ElementPath query (ElementTree ``findall`` syntax) on ``document``."""
    return to_elementtree(document).findall(element_path)


def elementtree_count(document: Document, element_path: str) -> int:
    """Number of elements selected by an ElementPath query."""
    return len(elementtree_find_all(document, element_path))


def child_chain_elementpath(tags: list[str]) -> str:
    """The ElementPath form of a child-axis chain starting below the document element.

    ``child_chain_elementpath(["b", "c"])`` is ``"./b/c"``, the ElementPath
    counterpart of our ``/child::root/child::b/child::c`` once the leading
    document-element step is dropped (``findall`` is rooted at the document
    element already).
    """
    return "./" + "/".join(tags)


def supports_child_chain(tags: list[str]) -> bool:
    """True if the chain contains only plain tags (no wildcards ElementPath mishandles)."""
    return all(tag.isidentifier() or tag == "*" for tag in tags)
