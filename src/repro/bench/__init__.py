"""Workload generators and external-engine helpers for the benchmark harness."""

from repro.bench.etree import (
    child_chain_elementpath,
    elementtree_count,
    elementtree_find_all,
    supports_child_chain,
    to_elementtree,
)
from repro.bench.workloads import (
    caterpillar_query,
    caterpillar_workload,
    core_scaling_workload,
    descendant_chain_query,
    negation_query,
    positive_condition_query,
    pwf_positional_query,
    representative_queries,
)

__all__ = [
    "caterpillar_query",
    "caterpillar_workload",
    "child_chain_elementpath",
    "core_scaling_workload",
    "descendant_chain_query",
    "elementtree_count",
    "elementtree_find_all",
    "negation_query",
    "positive_condition_query",
    "pwf_positional_query",
    "representative_queries",
    "supports_child_chain",
    "to_elementtree",
]
