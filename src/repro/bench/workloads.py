"""Query and document workloads shared by the benchmarks, examples and tests.

Each generator documents which experiment (see DESIGN.md's per-experiment
index) it feeds.
"""

from __future__ import annotations

from repro.xmlmodel.document import Document
from repro.xmlmodel.generators import caterpillar_document, complete_tree_document

# ---------------------------------------------------------------------------
# E8 — exponential naive evaluation vs. polynomial DP
# ---------------------------------------------------------------------------


def caterpillar_query(steps: int, tags: tuple[str, str] = ("a", "b")) -> str:
    """A query with ``steps`` sibling-hopping steps over a caterpillar document.

    On :func:`~repro.xmlmodel.generators.caterpillar_document` every step
    has many continuations, so an evaluator that re-evaluates the tail per
    context node explores exponentially many navigation paths.
    """
    if steps < 1:
        raise ValueError("steps must be at least 1")
    parts = [f"/child::doc/child::{tags[0]}"]
    for index in range(1, steps):
        parts.append(f"following-sibling::{tags[index % 2]}")
    return "/".join(parts)


def caterpillar_workload(steps: int, length: int | None = None) -> tuple[Document, str]:
    """Document + query pair for the E8 experiment."""
    if length is None:
        length = 2 * steps + 2
    return caterpillar_document(length), caterpillar_query(steps)


# ---------------------------------------------------------------------------
# E9 — linear-time Core XPath scaling
# ---------------------------------------------------------------------------


def descendant_chain_query(steps: int) -> str:
    """A Core XPath query with ``steps`` axis alternations and non-trivial conditions.

    The query bounces up and down the tree (descendant-or-self /
    ancestor-or-self) with an "is an internal node" condition on every step,
    so the intermediate node sets stay large and the measured cost reflects
    the O(|D|·|Q|) behaviour rather than early empty-set short-circuits.
    """
    parts = ["/descendant-or-self::a[descendant::b or child::c]"]
    for index in range(steps):
        axis = "descendant-or-self" if index % 2 == 0 else "ancestor-or-self"
        tag = "abc"[index % 3]
        parts.append(f"{axis}::{tag}[child::a or child::b or child::c]")
    return "/".join(parts)


def core_scaling_workload(tree_depth: int, query_steps: int) -> tuple[Document, str]:
    """Document + Core XPath query for the E9 scaling experiment."""
    return complete_tree_document(2, tree_depth), descendant_chain_query(query_steps)


# ---------------------------------------------------------------------------
# E6 / E10 / E12 — pWF and positive queries
# ---------------------------------------------------------------------------


def pwf_positional_query(depth: int) -> str:
    """A pWF query nesting ``depth`` positional comparisons (Table 1 workload)."""
    query = "child::a[position() + 1 <= last()]"
    for _ in range(depth):
        query = f"child::a[child::b or {query}]"
    return "/" + query


def positive_condition_query(depth: int) -> str:
    """A positive Core XPath query with ``depth`` nested conditions (E10 workload)."""
    condition = "child::c"
    for index in range(depth):
        tag = "abc"[index % 3]
        condition = f"descendant::{tag}[{condition} or child::b]"
    return f"/descendant-or-self::node()/child::a[{condition}]"


def negation_query(depth: int) -> str:
    """A Core XPath query with ``depth`` nested negations (bounded-negation tests)."""
    condition = "child::c"
    for _ in range(depth):
        condition = f"not(descendant::b[{condition}])"
    return f"//a[{condition}]"


# ---------------------------------------------------------------------------
# E1 — representative queries per fragment (Figure 1)
# ---------------------------------------------------------------------------


def representative_queries() -> dict[str, list[str]]:
    """Example queries whose most-specific fragment is the dictionary key."""
    return {
        "PF": [
            "/descendant::open_auction/child::bidder",
            "/child::site/descendant::item/parent::*",
        ],
        "positive Core XPath": [
            "/descendant::open_auction[child::bidder and descendant::increase]",
            "//person[descendant::name or following-sibling::person]",
        ],
        "Core XPath": [
            "/descendant::open_auction[child::bidder and not(child::seller)]",
            "//item[not(descendant::description)]",
        ],
        "pWF": [
            "/descendant::bidder[position() + 1 = last()]",
            "//open_auction[child::bidder and position() <= 3]",
        ],
        "WF": [
            "/descendant::open_auction[child::bidder][position() = last()]",
            "//item[not(position() = 1)]",
        ],
        "pXPath": [
            "/descendant::item[attribute::region = 'europe']",
            "//open_auction[child::initial > 100]",
        ],
        "XPath": [
            "/descendant::open_auction[count(child::bidder) > 2]",
            "//person[not(starts-with(child::name, 'Seller'))]",
        ],
    }
