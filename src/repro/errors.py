"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without also catching unrelated Python
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class XMLParseError(ReproError):
    """Raised when the XML parser encounters malformed input.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected, or
        ``None`` if the offset is unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XPathSyntaxError(ReproError):
    """Raised when an XPath expression cannot be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XPathTypeError(ReproError):
    """Raised when an XPath expression is applied to a value of the wrong type.

    XPath 1.0 has very permissive implicit conversions, so this error only
    occurs for genuinely meaningless operations (for instance using a
    node-set where a location path is syntactically required).
    """


class XPathEvaluationError(ReproError):
    """Raised when evaluation fails for a reason other than a type error."""


class FragmentViolationError(ReproError):
    """Raised when a query is passed to an evaluator for a fragment it is not in.

    The message lists the specific syntactic features that place the query
    outside the fragment, mirroring the definitions in the paper
    (Definitions 2.5, 2.6, 5.1 and 6.1).
    """

    def __init__(self, fragment: str, violations: list[str]) -> None:
        self.fragment = fragment
        self.violations = list(violations)
        details = "; ".join(self.violations) if self.violations else "unknown reason"
        super().__init__(f"query is not in fragment {fragment}: {details}")


class KernelBackendError(ReproError):
    """Raised when a kernel backend cannot be resolved.

    Selection happens at import of :mod:`repro.xmlmodel.kernels`: an
    unknown ``REPRO_KERNEL_BACKEND`` value, or an explicit request for
    the vectorized backend when numpy is not importable, raises this
    error rather than silently degrading.
    """


class CircuitError(ReproError):
    """Raised for malformed Boolean circuits (cycles, missing gates, bad arity)."""


class ReductionError(ReproError):
    """Raised when a complexity reduction is applied to an unsupported instance."""
