"""The paper's complexity reductions (Theorems 3.2, 4.2, 4.3, 5.7)."""

from repro.reductions.base import ReductionInstance
from repro.reductions.circuit_document import (
    GATE_TAG,
    PORT_TAG,
    ROOT_TAG,
    STRUCTURAL_TAGS,
    W_TAG,
    CircuitDocument,
    build_circuit_document,
    input_label,
    output_label,
)
from repro.reductions.circuit_to_core import (
    build_phi,
    build_query,
    reduce_circuit_to_core_xpath,
)
from repro.reductions.circuit_to_pwf import (
    build_pwf_phi,
    build_pwf_query,
    reduce_circuit_to_pwf_iterated,
)
from repro.reductions.labels import (
    FALSE_LABEL,
    TRUE_LABEL,
    LabelledNodeBuilder,
    label_test,
    node_labels,
    truth_label,
)
from repro.reductions.reachability_to_pf import (
    build_reachability_document,
    build_reachability_query,
    edge_side_position,
    reduce_reachability_to_pf,
    vertex_tag,
)
from repro.reductions.sac1_to_positive import (
    build_positive_phi,
    build_positive_query,
    reduce_sac1_to_positive_core_xpath,
)

__all__ = [
    "CircuitDocument",
    "FALSE_LABEL",
    "GATE_TAG",
    "LabelledNodeBuilder",
    "PORT_TAG",
    "ROOT_TAG",
    "ReductionInstance",
    "STRUCTURAL_TAGS",
    "TRUE_LABEL",
    "W_TAG",
    "build_circuit_document",
    "build_phi",
    "build_positive_phi",
    "build_positive_query",
    "build_pwf_phi",
    "build_pwf_query",
    "build_query",
    "build_reachability_document",
    "build_reachability_query",
    "edge_side_position",
    "input_label",
    "label_test",
    "node_labels",
    "output_label",
    "reduce_circuit_to_core_xpath",
    "reduce_circuit_to_pwf_iterated",
    "reduce_reachability_to_pf",
    "reduce_sac1_to_positive_core_xpath",
    "truth_label",
    "vertex_tag",
]
