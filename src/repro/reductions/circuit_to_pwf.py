"""Theorem 5.7: monotone circuit value ≤ pWF + iterated predicates (P-hardness).

pWF bans both negation and iterated predicates; Theorem 5.7 shows that
adding iterated predicates back (even just two per step, Corollary 5.8)
restores P-hardness, because ``not`` can be *encoded* with ``last()`` over
a predicate sequence.

The reduction modifies the Theorem 3.2 construction (proof sketch of
Theorem 5.7):

* the document gains an extra right-most child ``wi`` (labelled ``W``) under
  every node ``v0 … v(M+N)``, and ``v0`` gains the auxiliary label ``A``;
* the query replaces negation by ``last()`` tests over iterated predicates:

      φ'k := descendant-or-self::*[T(Ok) and parent::*[ψ'k]]
      ψ'k := child::*[(T(Ik) and π'k[last()=1]) or T(W)][last()=1]   (∧-gate)
      ψ'k := child::*[T(Ik) and π'k[last() > 1]]                      (∨-gate)
      π'k := ancestor-or-self::*[(T(G) and φ'(k−1)) or T(A)]
      φ'0 := T(1)

  The disjunct ``T(A)`` guarantees that π'k always selects at least the
  root, so ``π'k[last()=1]`` holds exactly when πk of Theorem 3.2 would be
  *empty* — i.e. it encodes ``not(πk)`` — while ``π'k[last()>1]`` encodes
  πk itself (equivalences (1)–(3) in the proof).
"""

from __future__ import annotations

from repro.circuits.circuit import GATE_AND, Circuit
from repro.reductions.base import ReductionInstance
from repro.reductions.circuit_document import (
    build_circuit_document,
    input_label,
    output_label,
)
from repro.reductions.labels import TRUE_LABEL, label_test
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    NodeTest,
    Number,
    Step,
    XPathExpr,
    conjunction,
    disjunction,
)

_STAR = NodeTest("name", "*")

_LAST_EQ_ONE = BinaryOp("=", FunctionCall("last", ()), Number(1.0))
_LAST_GT_ONE = BinaryOp(">", FunctionCall("last", ()), Number(1.0))


def _with_extra_predicate(path: LocationPath, predicate: XPathExpr) -> LocationPath:
    """Append ``predicate`` as an *iterated* predicate on the path's last step."""
    *front, last_step = path.steps
    extended = Step(last_step.axis, last_step.node_test, last_step.predicates + (predicate,))
    return LocationPath(path.absolute, tuple(front) + (extended,))


def build_pwf_phi(circuit: Circuit) -> XPathExpr:
    """Build the condition φ'N of the Theorem 5.7 query."""
    phi: XPathExpr = label_test(TRUE_LABEL)
    numbering = circuit.numbering()
    by_number = {number: name for name, number in numbering.items()}
    num_inputs = circuit.num_inputs()
    for k in range(1, circuit.num_internal() + 1):
        gate = circuit.gates[by_number[num_inputs + k]]
        pi = LocationPath(
            False,
            (
                Step(
                    "ancestor-or-self",
                    _STAR,
                    (
                        disjunction(
                            conjunction(label_test("G"), phi), label_test("A")
                        ),
                    ),
                ),
            ),
        )
        if gate.kind == GATE_AND:
            inner = disjunction(
                conjunction(
                    label_test(input_label(k)), _with_extra_predicate(pi, _LAST_EQ_ONE)
                ),
                label_test("W"),
            )
            psi: XPathExpr = LocationPath(
                False, (Step("child", _STAR, (inner, _LAST_EQ_ONE)),)
            )
        else:
            inner = conjunction(
                label_test(input_label(k)), _with_extra_predicate(pi, _LAST_GT_ONE)
            )
            psi = LocationPath(False, (Step("child", _STAR, (inner,)),))
        parent_check = LocationPath(False, (Step("parent", _STAR, (psi,)),))
        phi = LocationPath(
            False,
            (
                Step(
                    "descendant-or-self",
                    _STAR,
                    (conjunction(label_test(output_label(k)), parent_check),),
                ),
            ),
        )
    return phi


def build_pwf_query(circuit: Circuit) -> LocationPath:
    """The Theorem 5.7 query ``/descendant-or-self::*[T(R) and φ'N]``."""
    phi = build_pwf_phi(circuit)
    return LocationPath(
        True,
        (
            Step(
                "descendant-or-self",
                _STAR,
                (conjunction(label_test("R"), phi),),
            ),
        ),
    )


def reduce_circuit_to_pwf_iterated(
    circuit: Circuit, assignment: dict[str, bool]
) -> ReductionInstance:
    """Apply the Theorem 5.7 reduction to ``(circuit, assignment)``."""
    encoded = build_circuit_document(circuit, assignment, add_w_nodes=True)
    query = build_pwf_query(circuit)
    expected = circuit.value(assignment)
    return ReductionInstance(
        name="Theorem 5.7",
        document=encoded.document,
        query=query,
        expected=expected,
        metadata={
            "inputs": circuit.num_inputs(),
            "gates": circuit.num_internal(),
            "circuit_depth": circuit.depth(),
            "uses_negation": False,
            "max_iterated_predicates": 2,
        },
    )
