"""Theorem 3.2: monotone circuit value ≤ Core XPath evaluation (P-hardness).

Given a monotone Boolean circuit and an input assignment, the reduction
produces a depth-three document (via :mod:`repro.reductions.circuit_document`)
and a Core XPath query

    ``/descendant-or-self::*[T(R) and φN]``

such that the query selects a node if and only if the circuit's output gate
evaluates to true.  The condition expressions follow the proof verbatim:

    φk := descendant-or-self::*[T(Ok) and parent::*[ψk]]
    ψk := not(child::*[T(Ik) and not(πk)])     if gate G(M+k) is an ∧-gate
    ψk := child::*[T(Ik) and πk]               otherwise
    πk := ancestor-or-self::*[T(G) and φ(k−1)]
    φ0 := T(1)   (the truth label; ``T`` in our label alphabet)

Corollary 3.3 (``corollary_3_3=True``) replaces ``ancestor-or-self::*`` in
πk by ``descendant-or-self::*/parent::*``, so that only the axes child,
parent and descendant-or-self occur.
"""

from __future__ import annotations

from repro.circuits.circuit import GATE_AND, Circuit
from repro.reductions.base import ReductionInstance
from repro.reductions.circuit_document import (
    build_circuit_document,
    input_label,
    output_label,
)
from repro.reductions.labels import TRUE_LABEL, label_test
from repro.xpath.ast import (
    LocationPath,
    NodeTest,
    Step,
    XPathExpr,
    conjunction,
    not_,
)

_STAR = NodeTest("name", "*")


def _condition_step(axis: str, condition: XPathExpr) -> Step:
    return Step(axis, _STAR, (condition,))


def build_phi(circuit: Circuit, corollary_3_3: bool = False) -> XPathExpr:
    """Build the condition φN for ``circuit`` (the heart of the reduction)."""
    phi: XPathExpr = label_test(TRUE_LABEL)  # φ0 := T(1)
    numbering = circuit.numbering()
    by_number = {number: name for name, number in numbering.items()}
    num_inputs = circuit.num_inputs()
    for k in range(1, circuit.num_internal() + 1):
        gate = circuit.gates[by_number[num_inputs + k]]
        pi_condition = conjunction(label_test("G"), phi)
        if corollary_3_3:
            # Corollary 3.3: ancestor-or-self::* ≡ descendant-or-self::*/parent::*
            # when read as a condition (the extra match on the root is harmless
            # because the root carries no Ik label).
            pi = LocationPath(
                False,
                (
                    Step("descendant-or-self", _STAR, ()),
                    _condition_step("parent", pi_condition),
                ),
            )
        else:
            pi = LocationPath(False, (_condition_step("ancestor-or-self", pi_condition),))
        if gate.kind == GATE_AND:
            psi: XPathExpr = not_(
                LocationPath(
                    False,
                    (
                        _condition_step(
                            "child", conjunction(label_test(input_label(k)), not_(pi))
                        ),
                    ),
                )
            )
        else:
            psi = LocationPath(
                False,
                (_condition_step("child", conjunction(label_test(input_label(k)), pi)),),
            )
        parent_check = LocationPath(False, (_condition_step("parent", psi),))
        phi = LocationPath(
            False,
            (
                _condition_step(
                    "descendant-or-self",
                    conjunction(label_test(output_label(k)), parent_check),
                ),
            ),
        )
    return phi


def build_query(circuit: Circuit, corollary_3_3: bool = False) -> LocationPath:
    """The full Theorem 3.2 query ``/descendant-or-self::*[T(R) and φN]``."""
    phi = build_phi(circuit, corollary_3_3)
    return LocationPath(
        True,
        (_condition_step("descendant-or-self", conjunction(label_test("R"), phi)),),
    )


def reduce_circuit_to_core_xpath(
    circuit: Circuit,
    assignment: dict[str, bool],
    corollary_3_3: bool = False,
) -> ReductionInstance:
    """Apply the Theorem 3.2 reduction to ``(circuit, assignment)``."""
    encoded = build_circuit_document(circuit, assignment)
    query = build_query(circuit, corollary_3_3)
    expected = circuit.value(assignment)
    return ReductionInstance(
        name="Theorem 3.2" if not corollary_3_3 else "Corollary 3.3",
        document=encoded.document,
        query=query,
        expected=expected,
        metadata={
            "inputs": circuit.num_inputs(),
            "gates": circuit.num_internal(),
            "circuit_depth": circuit.depth(),
            "corollary_3_3": corollary_3_3,
        },
    )
