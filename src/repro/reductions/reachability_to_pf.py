"""Theorem 4.3: directed reachability ≤ PF query evaluation (NL-hardness).

PF is the fragment of Core XPath with no conditions at all, so the
reduction has to encode the graph purely in the *shape* of the document and
walk it with a fixed per-edge navigation gadget.  The query is exactly the
one in the proof of Theorem 4.3 / Figure 5:

    /descendant::v_i / φ_m            with
    φ_k := child::c / descendant::e / parent^(2n)::* / child^(n)::c /
           parent::* / φ_(k−1)
    φ_0 := self::v_j

where ``χ^n::c`` abbreviates ``(χ::*/)^(n−1) χ::c`` (the paper's notation),
``n = |V|`` and the graph has been closed under self-loops so that plain
reachability coincides with "reachable in at most m steps".

Document encoding
-----------------
The paper presents the encoding only through the drawing in Figure 5(c);
we use the following concrete layout, which makes the query above provably
correct (see DESIGN.md for the full argument):

* a single *spine* of ``(m+1)·n`` marker elements, child below child, whose
  tags cycle ``v1, v2, …, vn, v1, …``;
* each marker ``v_a`` carries a *side chain* — a child tagged ``c`` followed
  by ``n−1`` descendants tagged ``d`` — giving side positions ``1 … n``;
* an edge ``a → b`` is recorded by attaching an ``e`` child at side
  position ``j = ((b − a − 1) mod n) + 1`` of every copy of ``v_a``.

One φ-iteration starting on a marker copy of ``v_a`` at depth ``δ``
deterministically lands on the spine marker at depth ``δ + j − n``, whose
tag is ``v_b`` precisely because of the cyclic spine layout; side chains
use the tag ``d`` after the first element so stray descents die instead of
producing false witnesses.  The spine is long enough that every walk of at
most ``m`` edges is witnessed by a sufficiently deep starting copy.
"""

from __future__ import annotations

from repro.errors import ReductionError
from repro.graphs.digraph import DiGraph
from repro.graphs.reachability import is_reachable
from repro.reductions.base import ReductionInstance
from repro.xmlmodel.document import Document, DocumentBuilder
from repro.xpath.ast import LocationPath, NodeTest, Step

_STAR = NodeTest("name", "*")


def vertex_tag(vertex: int) -> str:
    """The marker tag used for graph vertex ``vertex`` (0-based) — ``v1``, ``v2``, …"""
    return f"v{vertex + 1}"


def edge_side_position(source: int, target: int, num_vertices: int) -> int:
    """Side-chain position (1-based) encoding the edge ``source → target``."""
    return ((target - source - 1) % num_vertices) + 1


def build_reachability_document(graph: DiGraph, steps: int) -> Document:
    """Encode ``graph`` for walks of up to ``steps`` edges (the spine has steps+1 blocks)."""
    n = graph.num_vertices
    builder = DocumentBuilder()
    builder.start_element("graph")
    total_markers = (steps + 1) * n
    for index in range(total_markers):
        vertex = index % n
        builder.start_element(vertex_tag(vertex))
        # Side chain: position 1 is tagged 'c', positions 2..n are tagged 'd'.
        positions_with_edges = {
            edge_side_position(vertex, target, n)
            for target in graph.successors(vertex)
        }
        for position in range(1, n + 1):
            builder.start_element("c" if position == 1 else "d")
            if position in positions_with_edges:
                builder.add_element("e")
        for _ in range(n):
            builder.end_element()
    for _ in range(total_markers):
        builder.end_element()
    builder.end_element()  # graph
    return builder.finish()


def build_reachability_query(source: int, target: int, num_vertices: int, steps: int) -> LocationPath:
    """The Theorem 4.3 query /descendant::v_source/φ_steps with φ_0 = self::v_target."""
    query_steps: list[Step] = [Step("descendant", NodeTest("name", vertex_tag(source)), ())]
    gadget: list[Step] = []
    gadget.append(Step("child", NodeTest("name", "c"), ()))
    gadget.append(Step("descendant", NodeTest("name", "e"), ()))
    gadget.extend(Step("parent", _STAR, ()) for _ in range(2 * num_vertices))
    gadget.extend(Step("child", _STAR, ()) for _ in range(num_vertices - 1))
    gadget.append(Step("child", NodeTest("name", "c"), ()))
    gadget.append(Step("parent", _STAR, ()))
    for _ in range(steps):
        query_steps.extend(gadget)
    query_steps.append(Step("self", NodeTest("name", vertex_tag(target)), ()))
    return LocationPath(True, tuple(query_steps))


def reduce_reachability_to_pf(
    graph: DiGraph, source: int, target: int, steps: int | None = None
) -> ReductionInstance:
    """Apply the Theorem 4.3 reduction to the reachability instance ``(graph, source, target)``.

    ``steps`` defaults to ``|V|``, which (after the self-loop closure the
    reduction performs) suffices for plain reachability; the paper uses
    ``|E|``, and any value ≥ the shortest-path length works.
    """
    if not 0 <= source < graph.num_vertices or not 0 <= target < graph.num_vertices:
        raise ReductionError("source/target vertex out of range")
    if steps is None:
        steps = graph.num_vertices
    looped = graph.add_self_loops()
    document = build_reachability_document(looped, steps)
    query = build_reachability_query(source, target, graph.num_vertices, steps)
    expected = is_reachable(graph, source, target)
    return ReductionInstance(
        name="Theorem 4.3",
        document=document,
        query=query,
        expected=expected,
        metadata={
            "vertices": graph.num_vertices,
            "edges": graph.num_edges(),
            "source": source,
            "target": target,
            "steps": steps,
        },
    )
