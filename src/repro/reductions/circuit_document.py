"""The circuit-encoding document shared by Theorems 3.2, 4.2 and 5.7.

All three hardness reductions use the same document skeleton (proof of
Theorem 3.2): a root ``v0`` with children ``v1 … v(M+N)`` — one per gate —
each of which has exactly one child ``v'i``.  Node labels (Remark 3.1,
encoded as label children) record, for every layer ``k`` of the serialised
circuit (Figure 3), which nodes are inputs (``Ik``) and outputs (``Ok``) of
that layer, the gate marker ``G``, the result marker ``R`` and the input
truth values.

The variations needed by the later theorems are switches on the same
builder:

* ``split_and_inputs`` (Theorem 4.2): ∧-layers use two labels ``Ik_1`` /
  ``Ik_2`` — one per input wire of the fan-in-2 ∧-gate — and dummy-gate
  ports carry both;
* ``add_w_nodes`` (Theorem 5.7): every node ``v0 … v(M+N)`` receives an
  extra right-most child ``wi`` labelled ``W``, and ``v0`` is labelled ``A``.

Structural tags ("circuit", "gate", "port", "w") are disjoint from all
label names, so ``T(l)`` tests never match structural children by accident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import GATE_AND, Circuit
from repro.errors import ReductionError
from repro.reductions.labels import truth_label
from repro.xmlmodel.document import Document, DocumentBuilder

#: Tag of the root element standing for the paper's node v0.
ROOT_TAG = "circuit"
#: Tag of the elements standing for v1 … v(M+N).
GATE_TAG = "gate"
#: Tag of the elements standing for v'1 … v'(M+N).
PORT_TAG = "port"
#: Tag of the Theorem 5.7 extra children w0 … w(M+N).
W_TAG = "w"

#: Structural tags, excluded when reading back Remark 3.1 labels.
STRUCTURAL_TAGS = frozenset({ROOT_TAG, GATE_TAG, PORT_TAG, W_TAG})


def input_label(layer: int, position: int | None = None) -> str:
    """The ``Ik`` label of layer ``layer`` (or ``Ik_1``/``Ik_2`` when ``position`` given)."""
    if position is None:
        return f"I{layer}"
    return f"I{layer}_{position}"


def output_label(layer: int) -> str:
    """The ``Ok`` label of layer ``layer``."""
    return f"O{layer}"


@dataclass
class CircuitDocument:
    """The document produced for a circuit instance, plus its label assignment."""

    document: Document
    labels_of_gate_node: dict[int, set[str]]
    labels_of_port_node: dict[int, set[str]]
    numbering: dict[str, int]

    @property
    def num_inputs(self) -> int:
        """M — number of circuit input gates."""
        return sum(
            1 for labels in self.labels_of_gate_node.values() if truth_label(True) in labels or truth_label(False) in labels
        )


def build_circuit_document(
    circuit: Circuit,
    assignment: dict[str, bool],
    split_and_inputs: bool = False,
    add_w_nodes: bool = False,
) -> CircuitDocument:
    """Build the Theorem 3.2 document for ``circuit`` under ``assignment``.

    See the module docstring for the ``split_and_inputs`` and
    ``add_w_nodes`` switches.
    """
    numbering = circuit.numbering()
    by_number = {number: name for name, number in numbering.items()}
    num_inputs = circuit.num_inputs()
    num_internal = circuit.num_internal()
    total = num_inputs + num_internal

    gate_labels: dict[int, set[str]] = {i: set() for i in range(1, total + 1)}
    port_labels: dict[int, set[str]] = {i: set() for i in range(1, total + 1)}

    # G on every gate node, R on the output gate node, truth values on inputs.
    for i in range(1, total + 1):
        gate_labels[i].add("G")
    gate_labels[total].add("R")
    for i in range(1, num_inputs + 1):
        name = by_number[i]
        if name not in assignment:
            raise ReductionError(f"assignment misses input gate {name!r}")
        gate_labels[i].add(truth_label(assignment[name]))

    # Layer labels: layer k computes gate G(M+k).
    and_layers: set[int] = set()
    for k in range(1, num_internal + 1):
        gate_name = by_number[num_inputs + k]
        gate = circuit.gates[gate_name]
        gate_labels[num_inputs + k].add(output_label(k))
        is_and = gate.kind == GATE_AND
        if is_and:
            and_layers.add(k)
        if split_and_inputs and is_and:
            if len(gate.inputs) > 2:
                raise ReductionError(
                    "Theorem 4.2 requires ∧-gates of fan-in at most 2 (SAC¹ circuits)"
                )
            for position, input_name in enumerate(gate.inputs, start=1):
                gate_labels[numbering[input_name]].add(input_label(k, position))
            if len(gate.inputs) == 1:
                # A fan-in-one ∧-gate behaves like a dummy: its single input
                # carries both labels so both conjuncts of ψk see it.
                gate_labels[numbering[gate.inputs[0]]].add(input_label(k, 2))
        else:
            for input_name in gate.inputs:
                gate_labels[numbering[input_name]].add(input_label(k))

    # Port labels: v'i carries the layer labels of every layer that merely
    # propagates gate Gi (plus Ok for bookkeeping), per the proof of Thm 3.2.
    for i in range(1, total + 1):
        first_layer = 1 if i <= num_inputs else i - num_inputs
        for k in range(first_layer, num_internal + 1):
            port_labels[i].add(output_label(k))
            if split_and_inputs and k in and_layers:
                port_labels[i].add(input_label(k, 1))
                port_labels[i].add(input_label(k, 2))
            else:
                port_labels[i].add(input_label(k))

    builder = DocumentBuilder()
    builder.start_element(ROOT_TAG)
    if add_w_nodes:
        builder.add_element("A")
    for i in range(1, total + 1):
        builder.start_element(GATE_TAG)
        for label in sorted(gate_labels[i]):
            builder.add_element(label)
        builder.start_element(PORT_TAG)
        for label in sorted(port_labels[i]):
            builder.add_element(label)
        builder.end_element()  # port
        if add_w_nodes:
            builder.start_element(W_TAG)
            builder.add_element("W")
            builder.end_element()
        builder.end_element()  # gate
    if add_w_nodes:
        builder.start_element(W_TAG)
        builder.add_element("W")
        builder.end_element()
    builder.end_element()  # circuit
    document = builder.finish()
    return CircuitDocument(document, gate_labels, port_labels, numbering)
