"""The multi-label encoding of Remark 3.1.

The hardness constructions assign *sets* of labels to document nodes, but
an XML element has only one tag.  Remark 3.1 resolves this by realising a
label ``l`` as an additional child, so that the condition ``T(l)`` becomes
the Core XPath condition ``child::l``.  This module provides that encoding:

* :func:`label_test` — the AST for ``T(l)``;
* :class:`LabelledNodeBuilder` — a thin wrapper over
  :class:`~repro.xmlmodel.document.DocumentBuilder` that attaches label
  children to the node being built.

Because the original truth-value labels ``0`` and ``1`` are not legal XML
names, true is encoded as label ``T`` and false as label ``F``; the
reductions use :data:`TRUE_LABEL` / :data:`FALSE_LABEL` so the choice is
made in exactly one place.
"""

from __future__ import annotations

from typing import Iterable

from repro.xmlmodel.document import DocumentBuilder
from repro.xmlmodel.nodes import ElementNode
from repro.xpath.ast import LocationPath, NodeTest, Step

#: Label standing for the paper's truth-value label "1".
TRUE_LABEL = "T"
#: Label standing for the paper's truth-value label "0".
FALSE_LABEL = "F"


def label_test(label: str) -> LocationPath:
    """The Core XPath condition ``T(label)``, realised as ``child::label``."""
    return LocationPath(False, (Step("child", NodeTest("name", label)),))


def truth_label(value: bool) -> str:
    """The label encoding the truth value ``value`` (Remark 3.1 / Theorem 3.2)."""
    return TRUE_LABEL if value else FALSE_LABEL


class LabelledNodeBuilder:
    """Build elements that carry Remark 3.1 label children.

    The builder wraps a :class:`DocumentBuilder`; ``start_labelled`` /
    ``end`` mirror ``start_element`` / ``end_element`` but immediately
    attach one child element per label.
    """

    def __init__(self, builder: DocumentBuilder) -> None:
        self.builder = builder

    def start_labelled(self, tag: str, labels: Iterable[str]) -> ElementNode:
        """Open an element with the given tag and attach its label children."""
        element = self.builder.start_element(tag)
        for label in labels:
            self.builder.add_element(label)
        return element

    def add_labelled(self, tag: str, labels: Iterable[str]) -> ElementNode:
        """Add a labelled element with no further (non-label) children."""
        element = self.start_labelled(tag, labels)
        self.end()
        return element

    def end(self) -> None:
        """Close the currently open labelled element."""
        self.builder.end_element()


def node_labels(element: ElementNode) -> set[str]:
    """Return the Remark 3.1 labels carried by ``element`` (its label children's tags).

    Used by tests to validate the label assignment of the reductions
    against the paper's tables.
    """
    return {child.tag for child in element.element_children()}
