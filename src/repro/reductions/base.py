"""Common infrastructure for the paper's complexity reductions.

Every reduction produces a :class:`ReductionInstance`: an XML document, an
XPath query (as an AST), the ground-truth answer of the source problem
(circuit value / reachability), and bookkeeping metadata.  The tests and
benchmarks then assert the reduction's defining property — *the query
selects at least one node if and only if the source instance is a
yes-instance* — using the polynomial evaluators as the right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.evaluation.api import query_selects
from repro.xmlmodel.document import Document
from repro.xpath.ast import XPathExpr


@dataclass
class ReductionInstance:
    """The output of one hardness reduction applied to one source instance."""

    name: str
    document: Document
    query: XPathExpr
    expected: bool
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def document_size(self) -> int:
        """|D| of the produced document."""
        return self.document.size

    @property
    def query_size(self) -> int:
        """|Q| of the produced query (AST node count)."""
        return self.query.size()

    def query_text(self) -> str:
        """The produced query in XPath syntax."""
        return self.query.unparse()

    def holds(self, engine: str = "cvt") -> bool:
        """Evaluate the query and report whether it matches ``expected``."""
        return query_selects(self.query, self.document, engine=engine) == self.expected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReductionInstance {self.name} |D|={self.document_size} "
            f"|Q|={self.query_size} expected={self.expected}>"
        )
