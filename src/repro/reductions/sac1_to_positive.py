"""Theorem 4.2: SAC¹ circuit value ≤ positive Core XPath (LOGCFL-hardness).

The reduction reuses the Theorem 3.2 construction with two changes (proof
sketch of Theorem 4.2):

* in the document, every ∧-layer ``k`` has *two* input labels ``Ik_1`` and
  ``Ik_2`` — one per input wire of the fan-in-2 ∧-gate; a dummy gate's
  single input port carries both;
* in the query, negation is eliminated: for an ∧-layer,

      ψk := child::*[T(Ik_1) and πk] and child::*[T(Ik_2) and πk]

  so the sub-expression πk (and with it φ(k−1)) is inserted twice.

As the paper notes, the query therefore grows exponentially with the
number of ∧-layers it passes through; this is why the source problem must
be a *SAC¹* circuit, whose depth — and hence the size of the sub-expression
being copied — is only logarithmic.  The bench for this reduction reports
the measured query sizes alongside correctness.
"""

from __future__ import annotations

from repro.circuits.circuit import GATE_AND, Circuit
from repro.errors import ReductionError
from repro.reductions.base import ReductionInstance
from repro.reductions.circuit_document import (
    build_circuit_document,
    input_label,
    output_label,
)
from repro.reductions.labels import TRUE_LABEL, label_test
from repro.xpath.ast import (
    LocationPath,
    NodeTest,
    Step,
    XPathExpr,
    conjunction,
)

_STAR = NodeTest("name", "*")


def _condition_step(axis: str, condition: XPathExpr) -> Step:
    return Step(axis, _STAR, (condition,))


def build_positive_phi(circuit: Circuit) -> XPathExpr:
    """Build the negation-free condition φN of the Theorem 4.2 query."""
    phi: XPathExpr = label_test(TRUE_LABEL)
    numbering = circuit.numbering()
    by_number = {number: name for name, number in numbering.items()}
    num_inputs = circuit.num_inputs()
    for k in range(1, circuit.num_internal() + 1):
        gate = circuit.gates[by_number[num_inputs + k]]
        pi = LocationPath(
            False,
            (_condition_step("ancestor-or-self", conjunction(label_test("G"), phi)),),
        )
        if gate.kind == GATE_AND:
            first = LocationPath(
                False,
                (
                    _condition_step(
                        "child", conjunction(label_test(input_label(k, 1)), pi)
                    ),
                ),
            )
            second = LocationPath(
                False,
                (
                    _condition_step(
                        "child", conjunction(label_test(input_label(k, 2)), pi)
                    ),
                ),
            )
            psi: XPathExpr = conjunction(first, second)
        else:
            psi = LocationPath(
                False,
                (_condition_step("child", conjunction(label_test(input_label(k)), pi)),),
            )
        parent_check = LocationPath(False, (_condition_step("parent", psi),))
        phi = LocationPath(
            False,
            (
                _condition_step(
                    "descendant-or-self",
                    conjunction(label_test(output_label(k)), parent_check),
                ),
            ),
        )
    return phi


def build_positive_query(circuit: Circuit) -> LocationPath:
    """The Theorem 4.2 query — a *positive* Core XPath query."""
    phi = build_positive_phi(circuit)
    return LocationPath(
        True,
        (_condition_step("descendant-or-self", conjunction(label_test("R"), phi)),),
    )


def reduce_sac1_to_positive_core_xpath(
    circuit: Circuit, assignment: dict[str, bool]
) -> ReductionInstance:
    """Apply the Theorem 4.2 reduction to a semi-unbounded circuit instance."""
    if not circuit.is_semi_unbounded():
        raise ReductionError(
            "Theorem 4.2 applies to semi-unbounded (SAC¹) circuits: "
            f"found an ∧-gate of fan-in {circuit.max_fanin('and')}"
        )
    encoded = build_circuit_document(circuit, assignment, split_and_inputs=True)
    query = build_positive_query(circuit)
    expected = circuit.value(assignment)
    return ReductionInstance(
        name="Theorem 4.2",
        document=encoded.document,
        query=query,
        expected=expected,
        metadata={
            "inputs": circuit.num_inputs(),
            "gates": circuit.num_internal(),
            "circuit_depth": circuit.depth(),
            "and_gates": sum(
                1 for gate in circuit.gates.values() if gate.kind == GATE_AND
            ),
        },
    )
