"""Concurrency tests: one shared engine hammered from many threads.

The thread-safety contract (docs/engine.md) promises that any number of
threads may share one :class:`~repro.engine.XPathEngine` and observe
exactly the results serial evaluation would produce.  These tests stress
that promise directly with ``threading.Thread`` workers and through
:meth:`~repro.engine.XPathEngine.evaluate_concurrent`.
"""

import threading

import pytest

from repro.engine import XPathEngine
from repro.errors import XPathSyntaxError
from repro.xmlmodel import parse_xml

THREADS = 8
ROUNDS = 25

XMLS = [
    "<r><a><b/></a><a/><c>5</c></r>",
    "<r><a/><a><b/><b><c/></b></a></r>",
    "<library><shelf><book/><book/></shelf><shelf/></library>",
]

QUERIES = [
    "//a[child::b]",
    "//a[not(child::b)]",
    "count(//a)",
    "/descendant::*[not(child::*)]",
    "//b/ancestor::a",
    "string(//c)",
]


def test_shared_engine_stress_matches_serial():
    """≥8 threads × mixed queries/documents ≡ serial evaluation."""
    engine = XPathEngine()
    docs = [engine.add(xml) for xml in XMLS]
    serial = {
        (d, q): engine.evaluate(QUERIES[q], docs[d]).value
        for d in range(len(docs))
        for q in range(len(QUERIES))
    }
    results: dict[int, list] = {}
    errors: list[BaseException] = []

    def worker(seed: int) -> None:
        mine = []
        try:
            for i in range(ROUNDS * len(QUERIES)):
                d = (seed + i) % len(docs)
                q = (seed * 3 + i) % len(QUERIES)
                mine.append((d, q, engine.evaluate(QUERIES[q], docs[d]).value))
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)
        results[seed] = mine

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(results) == THREADS
    for seed, mine in results.items():
        assert len(mine) == ROUNDS * len(QUERIES)
        for d, q, value in mine:
            assert value == serial[(d, q)], (seed, d, q)


def test_evaluate_concurrent_matches_batch():
    engine = XPathEngine()
    docs = [engine.add(xml) for xml in XMLS]
    requests = [
        (query, doc) for doc in docs for query in QUERIES
    ] * 4
    serial = engine.evaluate_batch(requests)
    for workers in (1, 3, 8):
        concurrent = engine.evaluate_concurrent(requests, max_workers=workers)
        assert [r.value for r in concurrent] == [r.value for r in serial]


def test_coalesced_results_are_flagged_and_counted():
    engine = XPathEngine()
    doc = engine.add(XMLS[0])
    # Tiny queries can finish inside one interpreter time slice, leaving no
    # window for requests to overlap; slow evaluation down (the sleep also
    # releases the GIL) so the in-flight overlap is deterministic.
    inner = engine._evaluate_pooled

    def slow_evaluate(request, handle):
        import time

        time.sleep(0.005)
        return inner(request, handle)

    engine._evaluate_pooled = slow_evaluate
    requests = [("//a[child::b]", doc)] * 64
    results = engine.evaluate_concurrent(requests, max_workers=8)
    values = [r.value for r in results]
    assert all(value == values[0] for value in values)
    coalesced = sum(r.coalesced for r in results)
    stats = engine.stats()
    assert coalesced == stats.coalesced
    # With 64 identical requests and 8 workers some must have coalesced …
    assert coalesced > 0
    # … every coalesced result shares the leader's payload verbatim …
    assert all(r.value == values[0] for r in results if r.coalesced)
    # … and dispatch counts only the evaluations that actually ran.
    assert stats.dispatch["core"] == stats.queries - stats.coalesced


def test_errors_propagate_to_every_waiter():
    engine = XPathEngine()
    doc = engine.add(XMLS[0])
    requests = [("//a[", doc)] * 16
    with pytest.raises(XPathSyntaxError):
        engine.evaluate_concurrent(requests, max_workers=8)


def test_switch_interval_is_restored_after_batch():
    import sys

    before = sys.getswitchinterval()
    engine = XPathEngine()
    doc = engine.add(XMLS[0])
    engine.evaluate_concurrent([("//a", doc)] * 8, max_workers=4)
    assert sys.getswitchinterval() == before
    # Also with an interval CPython truncates (microsecond storage): the
    # restore guard must compare against the value actually applied.
    odd = XPathEngine(switch_interval=1 / 3000)
    odd.evaluate_concurrent([("//a", odd.add(XMLS[0]))] * 4, max_workers=2)
    assert sys.getswitchinterval() == before


def test_xml_text_documents_resolve_once_per_batch():
    engine = XPathEngine()
    requests = [("//a", XMLS[0]), ("//a[child::b]", XMLS[0])] * 4
    results = engine.evaluate_concurrent(requests, max_workers=4)
    assert [len(r.nodes) for r in results[:2]] == [2, 1]
    # One parse + one registration for the repeated text, not eight.
    assert engine.stats().documents.size == 1
    assert engine.stats().documents.adds == 1


def test_max_workers_validation():
    engine = XPathEngine()
    with pytest.raises(ValueError):
        engine.evaluate_concurrent([("//a", engine.add(XMLS[0]))], max_workers=0)
