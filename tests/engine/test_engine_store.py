"""Engine ↔ corpus-store integration: hydration, stats, StoreKey routing."""

import gc
import threading

import pytest

from repro.engine import XPathEngine
from repro.store import CorpusStore, StoreKey, StoreKeyError

XML_ONE = "<a><b/><b><c/></b></a>"
XML_TWO = "<x><y/><y/><y/></x>"


@pytest.fixture
def store(tmp_path):
    store = CorpusStore(tmp_path / "corpus")
    store.put(XML_ONE, key="one")
    store.put(XML_TWO, key="two")
    return store


@pytest.fixture
def engine(store):
    return XPathEngine().attach_store(store)


class TestAttachAndHydrate:
    def test_add_from_store_serves_queries(self, engine):
        handle = engine.add_from_store("one")
        result = engine.evaluate("//b[child::c]", handle)
        assert result.ids == [3]
        assert result.engine == "core"
        assert handle.document.has_index  # hydrated ready-to-serve

    def test_no_store_attached_is_an_error(self):
        with pytest.raises(RuntimeError, match="attach_store"):
            XPathEngine().add_from_store("one")

    def test_explicit_store_argument_overrides(self, store):
        engine = XPathEngine()
        handle = engine.add_from_store("two", store=store)
        assert engine.evaluate("count(//y)", handle).value == 3.0

    def test_unknown_key_raises_and_counts_a_miss(self, engine):
        with pytest.raises(StoreKeyError):
            engine.add_from_store("ghost")
        stats = engine.stats().store
        assert stats.misses == 1 and stats.hits == 0

    def test_warm_requests_share_one_hydration(self, engine):
        first = engine.add_from_store("one")
        second = engine.add_from_store("one")
        assert second.document is first.document
        stats = engine.stats().store
        assert stats.hits == 2 and stats.loads == 1

    def test_two_keys_with_identical_content_share_one_document(self, store):
        store.put(XML_ONE, key="alias")
        engine = XPathEngine().attach_store(store)
        assert (
            engine.add_from_store("one").document
            is engine.add_from_store("alias").document
        )
        assert engine.stats().store.loads == 1

    def test_evicted_but_alive_hydration_is_reregistered_not_reloaded(self, store):
        engine = XPathEngine(max_documents=1).attach_store(store)
        kept = engine.add_from_store("one").document  # strong ref survives eviction
        engine.add_from_store("two")  # evicts "one" from the registry
        handle = engine.add_from_store("one")
        assert handle.document is kept  # identity preserved, no reload
        assert engine.stats().store.loads == 2  # "one" once, "two" once

    def test_eviction_then_rehydration_loads_again(self, store):
        engine = XPathEngine(max_documents=1).attach_store(store)
        engine.add_from_store("one")
        engine.add_from_store("two")  # evicts "one"
        gc.collect()  # drop the weakly-tracked evicted document
        handle = engine.add_from_store("one")
        assert engine.evaluate("//b", handle).ids == [2, 3]
        assert engine.stats().store.loads >= 2

    def test_mmap_hydration(self, store):
        engine = XPathEngine().attach_store(store, mmap=True)
        handle = engine.add_from_store("one")
        assert engine.evaluate("//b", handle).ids == [2, 3]

    def test_cold_stampede_registers_one_document(self, store):
        # Racing hydrations may duplicate the load work, but exactly one
        # document object wins and every caller registers that one.
        engine = XPathEngine().attach_store(store)
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(engine.add_from_store("one").document)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(document) for document in seen}) == 1
        assert engine.stats().documents.size == 1
        assert engine.stats().store.loads >= 1

    def test_explicit_mmap_override_is_honoured_on_warm_keys(self, engine):
        eager = engine.add_from_store("one")
        lazy = engine.add_from_store("one", mmap=True)
        # Different residencies are different hydrations, never silently
        # substituted for one another.
        assert lazy.document is not eager.document
        assert isinstance(lazy.document.index.parent, memoryview)
        assert not isinstance(eager.document.index.parent, memoryview)
        assert engine.add_from_store("one").document is eager.document
        assert engine.add_from_store("one", mmap=True).document is lazy.document
        assert engine.stats().store.loads == 2


class TestStoreKeyRouting:
    def test_evaluate_accepts_store_keys(self, engine):
        assert engine.evaluate("//y", StoreKey("two")).ids == [2, 3, 4]

    def test_plain_strings_still_parse_as_xml(self, engine):
        assert engine.evaluate("//b", XML_ONE).ids == [2, 3]

    def test_batch_and_concurrent_accept_store_keys(self, engine):
        batch = engine.evaluate_batch(
            [("//b", StoreKey("one")), ("//y", StoreKey("two"))]
        )
        assert [result.ids for result in batch] == [[2, 3], [2, 3, 4]]
        concurrent = engine.evaluate_concurrent(
            [("//b", StoreKey("one"))] * 8, max_workers=4
        )
        assert all(result.ids == [2, 3] for result in concurrent)

    def test_stats_describe_includes_store_line(self, engine):
        engine.evaluate("//b", StoreKey("one"))
        description = engine.stats().describe()
        assert "store" in description
        assert "snapshot load(s)" in description

    def test_store_stats_absent_without_a_store(self):
        assert XPathEngine().stats().store is None


class TestEvaluateManyStored:
    @pytest.fixture(autouse=True)
    def _fresh_default_engine(self):
        # evaluate_many_stored goes through the process-default engine;
        # leave later tests a pristine one (no attached tmp store, zeroed
        # store counters).
        from repro.engine import reset_default_engine

        reset_default_engine()
        yield
        reset_default_engine()

    def test_ids_and_values(self, store):
        from repro.planner import evaluate_many_stored

        assert evaluate_many_stored(
            store, "one", ["//b", "//b[child::c]"], ids=True
        ) == [[2, 3], [3]]
        values = evaluate_many_stored(store, "one", ["count(//b)"])
        assert values == [2.0]
