"""Regression tests: LRU eviction racing checked-out evaluator pools.

Evicting a document while one of its pooled evaluators is checked out
must not corrupt the pool: the in-flight evaluation finishes normally,
its checkin is dropped (the handle is retired — pooling evaluators on an
unreachable handle would pin the document for nothing), and a
re-registered document starts a clean pool of its own.
"""

import threading

import pytest

from repro.engine import XPathEngine
from repro.engine.registry import DocumentRegistry
from repro.xmlmodel import parse_xml

XML = "<r><a><b/></a><a/></r>"


class TestEvictDuringCheckout:
    def test_checkin_after_eviction_is_dropped(self):
        registry = DocumentRegistry(maxsize=1)
        document = parse_xml(XML)
        handle = registry.add(document)
        evaluators = registry.checkout(handle)
        registry.add(parse_xml("<other/>"))  # evicts `handle`
        assert handle._retired
        evaluators["core"] = object()
        registry.checkin(handle, evaluators)
        assert registry.pooled(handle, "core") == 0  # dropped, not pooled

    def test_pool_of_reregistered_document_stays_clean(self):
        engine = XPathEngine(max_documents=1)
        document = parse_xml(XML)
        handle = engine.add(document)
        # Check out mid-flight state, then evict while it is out.
        evaluators = engine.documents.checkout(handle)
        engine.add("<other/>")
        engine.documents.checkin(handle, {"core": object(), **evaluators})
        # Re-registering builds a fresh handle with an empty, working pool.
        fresh = engine.add(document)
        assert fresh is not handle
        assert not fresh._retired
        assert engine.documents.pooled(fresh, "core") == 0
        engine.evaluate("//a[child::b]", fresh)
        assert engine.documents.pooled(fresh, "core") == 1

    def test_evicted_handle_still_evaluates(self):
        engine = XPathEngine(max_documents=1)
        first = engine.add(XML)
        engine.add("<other/>")
        assert engine.evaluate("//a", first).ids == [2, 4]

    def test_clear_retires_outstanding_handles(self):
        engine = XPathEngine()
        handle = engine.add(XML)
        evaluators = engine.documents.checkout(handle)
        engine.documents.clear()
        evaluators["core"] = object()
        engine.documents.checkin(handle, evaluators)
        assert engine.documents.pooled(handle, "core") == 0

    def test_overlapping_checkouts_round_trip(self):
        registry = DocumentRegistry(maxsize=4)
        handle = registry.add(parse_xml(XML))
        taken = [registry.checkout(handle) for _ in range(3)]
        for evaluators in taken:
            evaluators["core"] = object()
            registry.checkin(handle, evaluators)
        assert registry.pooled(handle, "core") == 3
        registry.checkin(handle, {})  # spurious empty checkin is a no-op
        assert registry.pooled(handle, "core") == 3


class TestConcurrentAddStress:
    def test_concurrent_adds_and_evaluations_with_tiny_lru(self):
        engine = XPathEngine(max_documents=2, stripes=4)
        documents = [parse_xml(f"<r n='{i}'><a><b/></a></r>") for i in range(8)]
        errors = []
        barrier = threading.Barrier(6)

        def worker(worker_id):
            try:
                barrier.wait()
                for round_number in range(25):
                    document = documents[(worker_id + round_number) % len(documents)]
                    result = engine.evaluate("//a[child::b]", document)
                    assert result.ids == [2], result.ids
            except Exception as error:  # pragma: no cover - failure capture
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = engine.stats().documents
        assert stats.size <= 2
        assert stats.evictions > 0
        # Every pool on every *live* handle is bounded and usable.
        for handle in list(engine.documents._handles.values()):
            assert not handle._retired

    def test_concurrent_add_of_same_fresh_document_registers_once(self):
        engine = XPathEngine(max_documents=8)
        document = parse_xml(XML)
        handles = []
        barrier = threading.Barrier(8)

        def adder():
            barrier.wait()
            handles.append(engine.add(document))

        threads = [threading.Thread(target=adder) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(handle) for handle in handles}) == 1
        assert engine.stats().documents.size == 1
