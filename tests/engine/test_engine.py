"""Unit tests for the XPathEngine session façade."""

import pytest

from repro.engine import (
    DocHandle,
    QueryRequest,
    XPathEngine,
    default_engine,
    reset_default_engine,
)
from repro.errors import XPathEvaluationError
from repro.evaluation import DEFAULT_MAX_NEGATION_DEPTH, evaluate
from repro.xmlmodel import parse_xml

XML = "<r><a><b/></a><a/><c>5</c></r>"


@pytest.fixture
def engine():
    return XPathEngine()


@pytest.fixture
def doc(engine):
    return engine.add(XML)


class TestDocumentRegistry:
    def test_add_parses_strings_and_accepts_documents(self, engine):
        handle = engine.add(XML)
        assert isinstance(handle, DocHandle)
        assert handle.document.has_index  # forced at registration
        document = parse_xml(XML)
        other = engine.add(document)
        assert other.document is document

    def test_add_is_idempotent_per_document(self, engine):
        document = parse_xml(XML)
        assert engine.add(document) is engine.add(document)
        assert engine.stats().documents.size == 1

    def test_lru_bound_evicts_oldest(self):
        engine = XPathEngine(max_documents=2)
        handles = [engine.add(f"<a n='{i}'/>") for i in range(3)]
        stats = engine.stats().documents
        assert stats.size == 2
        assert stats.evictions == 1
        # The evicted handle still works: the engine re-registers its document.
        assert engine.evaluate("//a", handles[0]).ids == [1]

    def test_handle_evaluate_shortcut(self, doc):
        assert [n.tag for n in doc.evaluate("//b").nodes] == ["b"]

    def test_evaluator_pool_is_populated_and_bounded(self, engine, doc):
        for _ in range(3):
            engine.evaluate("//a[child::b]", doc)
        assert engine.documents.pooled(doc, "core") == 1
        engine.evaluate("count(//a)", doc)
        assert engine.documents.pooled(doc, "cvt") == 1


class TestQueryResult:
    def test_node_set_result(self, engine, doc):
        result = engine.evaluate("//a[child::b]", doc)
        assert result.is_node_set
        assert [n.tag for n in result.nodes] == ["a"]
        assert result.ids == [doc.document.index.id_of(n) for n in result.nodes]
        assert result.value == result.nodes
        assert result.engine == "core"
        assert result.classification.most_specific == "positive Core XPath"
        assert result.wall_time >= 0.0

    def test_scalar_result(self, engine, doc):
        result = engine.evaluate("count(//a)", doc)
        assert not result.is_node_set
        assert result.value == 2.0
        with pytest.raises(XPathEvaluationError):
            result.nodes
        with pytest.raises(XPathEvaluationError):
            result.ids

    def test_id_native_result_materialises_lazily(self, engine, doc):
        result = engine.evaluate("//a", doc, ids=True)
        assert result.ids == [2, 4]
        assert [n.tag for n in result.nodes] == ["a", "a"]

    def test_explicit_core_ids_stays_id_native(self, engine, doc):
        result = engine.evaluate("//a", doc, engine="core", ids=True)
        assert result.ids == [2, 4]
        assert result.engine == "core"

    def test_attribute_results_reject_ids(self, engine):
        doc = engine.add('<a id="1"><b x="2"/></a>')
        result = engine.evaluate("//@x", doc)
        assert len(result.nodes) == 1
        with pytest.raises(XPathEvaluationError):
            result.ids

    def test_cache_hit_flag(self, engine, doc):
        assert engine.evaluate("//a[child::b]", doc).cache_hit is False
        assert engine.evaluate("//a[child::b]", doc).cache_hit is True


class TestExplicitEngines:
    @pytest.mark.parametrize("kind", ["cvt", "naive", "core", "singleton", "auto"])
    def test_all_engines_agree(self, engine, doc, kind):
        result = engine.evaluate("/child::r/child::a[child::b]", doc, engine=kind)
        assert [n.tag for n in result.nodes] == ["a"]

    def test_singleton_uses_documented_negation_default(self, engine, doc):
        assert engine.max_negation_depth == DEFAULT_MAX_NEGATION_DEPTH
        result = engine.evaluate(
            "descendant::a[not(child::b)]", doc, engine="singleton"
        )
        assert len(result.nodes) == 1

    def test_variables_through_pool(self, engine, doc):
        assert engine.evaluate("$x * 2", doc, variables={"x": 21.0}).value == 42.0
        # A pooled cvt evaluator with stale bindings must not leak old values.
        assert engine.evaluate("$x * 2", doc, variables={"x": 4.0}).value == 8.0

    def test_unknown_engine_points_at_facade(self, engine, doc):
        with pytest.raises(XPathEvaluationError) as excinfo:
            engine.evaluate("//a", doc, engine="quantum")
        assert "XPathEngine" in str(excinfo.value)


class TestBatch:
    def test_batch_matches_single_evaluations(self, engine, doc):
        queries = ["//a", "count(//a)", "//a[child::b]", "string(//c)"]
        batch = engine.evaluate_batch([(q, doc) for q in queries])
        singles = [engine.evaluate(q, doc) for q in queries]
        assert [r.value for r in batch] == [r.value for r in singles]

    def test_batch_accepts_requests_and_tuples(self, engine, doc):
        results = engine.evaluate_batch(
            [("//a", doc), QueryRequest("count(//a)", doc)]
        )
        assert [r.value for r in results][1] == 2.0

    def test_batch_ids_mode(self, engine, doc):
        results = engine.evaluate_batch([("//a", doc), ("//b", doc)], ids=True)
        assert [r.ids for r in results] == [[2, 4], [3]]

    def test_empty_batch(self, engine):
        assert engine.evaluate_batch([]) == []
        assert engine.evaluate_concurrent([], max_workers=4) == []

    def test_bad_request_shape_raises(self, engine, doc):
        with pytest.raises(TypeError):
            engine.evaluate_batch(["//a"])


class TestStats:
    def test_dispatch_counts_by_answering_engine(self, engine, doc):
        engine.evaluate("//a", doc)               # core via auto
        engine.evaluate("count(//a)", doc)        # cvt via auto
        engine.evaluate("//a", doc, engine="naive")
        stats = engine.stats()
        assert stats.dispatch == {"core": 1, "cvt": 1, "naive": 1}
        assert stats.queries == 3
        assert stats.plans.misses == 2  # "//a" is planned once, reused by naive

    def test_describe_mentions_every_section(self, engine, doc):
        engine.evaluate("//a", doc)
        text = engine.stats().describe()
        for fragment in ("plan cache", "documents", "dispatch counts", "queries"):
            assert fragment in text


class TestDetachedEvaluation:
    def test_detached_shares_plans_but_not_registry(self, engine):
        document = parse_xml(XML)
        result = engine.evaluate_detached("//a[child::b]", document)
        assert [n.tag for n in result.nodes] == ["a"]
        assert engine.stats().documents.size == 0
        assert engine.stats().dispatch == {"core": 1}
        assert engine.evaluate_detached("//a[child::b]", document).cache_hit

    def test_detached_documents_are_collectable(self, engine):
        import gc
        import weakref

        document = parse_xml(XML)
        ref = weakref.ref(document)
        assert engine.evaluate_detached("count(//a)", document).value == 2.0
        del document
        gc.collect()
        assert ref() is None, "engine must not retain detached documents"

    def test_shared_evaluators_mapping_is_reused(self, engine):
        document = parse_xml(XML)
        evaluators = {}
        engine.evaluate_detached("//a", document, evaluators=evaluators)
        first = evaluators["core"]
        engine.evaluate_detached("//b", document, evaluators=evaluators)
        assert evaluators["core"] is first


class TestDefaultEngineWiring:
    def test_legacy_evaluate_counts_on_default_engine(self):
        engine = reset_default_engine()
        document = parse_xml(XML)
        evaluate("//a[child::b]", document, engine="auto")
        assert default_engine() is engine
        assert engine.stats().dispatch.get("core") == 1
        # Legacy callers never opted into a session: nothing is pinned.
        assert engine.stats().documents.size == 0

    def test_clear_plan_cache_routes_through_engine_lock(self):
        from repro.planner import clear_plan_cache, default_plan_cache

        engine = reset_default_engine()
        engine.get_plan("//a")
        assert len(default_plan_cache()) == 1
        clear_plan_cache()
        assert len(default_plan_cache()) == 0

    def test_reset_replaces_the_singleton(self):
        first = reset_default_engine()
        assert default_engine() is first
        assert reset_default_engine() is not first
