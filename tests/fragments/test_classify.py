"""Unit tests for the fragment classifiers (Definitions 2.5, 2.6, 5.1, 6.1)."""

import pytest

from repro.fragments import (
    FRAGMENT_COMPLEXITY,
    FRAGMENT_ORDER,
    classify,
    is_core_xpath,
    is_pf,
    is_positive_core_xpath,
    is_pwf,
    is_pxpath,
    is_wf,
    violations_core_xpath,
    violations_pwf,
    violations_pxpath,
    violations_wf,
)


class TestCoreXPath:
    @pytest.mark.parametrize(
        "query",
        [
            "/descendant-or-self::*[child::R and child::G]",
            "//a[child::b and not(following-sibling::d)]",
            "child::a/descendant::b[ancestor::c or self::d]",
            "//a | /child::b[not(child::c)]",
            "preceding::a[preceding-sibling::b]",
        ],
    )
    def test_members(self, query):
        assert is_core_xpath(query)

    @pytest.mark.parametrize(
        "query,reason_fragment",
        [
            ("//a[position() = 1]", "position"),
            ("//a[@id]", "axis 'attribute'"),
            ("count(//a)", "location path"),
            ("//a['literal']", "condition"),
            ("//a[child::b = child::c]", "condition"),
            ("1 + 2", "location path"),
        ],
    )
    def test_non_members_with_reasons(self, query, reason_fragment):
        violations = violations_core_xpath(query)
        assert violations
        assert any(reason_fragment in violation for violation in violations)

    def test_positive_fragment_excludes_not(self):
        assert is_positive_core_xpath("//a[child::b or child::c]")
        assert not is_positive_core_xpath("//a[not(child::b)]")
        assert is_core_xpath("//a[not(child::b)]")


class TestPF:
    def test_members(self):
        assert is_pf("/descendant::a/child::b/parent::*")
        assert is_pf("//a/following-sibling::b")

    def test_conditions_excluded(self):
        assert not is_pf("//a[child::b]")
        assert is_core_xpath("//a[child::b]")


class TestWF:
    @pytest.mark.parametrize(
        "query",
        [
            "//a[position() = last()]",
            "//a[position() + 1 = last() and child::b]",
            "//a[not(position() > 2)]",
            "//a[child::b][position() = 1]",
            "//a[2 >= 1 + 1]",
        ],
    )
    def test_members(self, query):
        assert is_wf(query)

    @pytest.mark.parametrize(
        "query",
        [
            "//a[@id = 'x']",
            "//a[string-length(child::b) > 1]",
            "//a['text']",
            "//a[count(child::b) = 2]",
            "//a[child::b = 3]",
            "$x",
        ],
    )
    def test_non_members(self, query):
        assert not is_wf(query)
        assert violations_wf(query)


class TestPWF:
    def test_members(self):
        assert is_pwf("//a[position() = last() and child::b]")
        assert is_pwf("//a[child::b or position() < 3]")

    def test_iterated_predicates_excluded(self):
        query = "//a[child::b][child::c]"
        assert is_wf(query)
        assert not is_pwf(query)
        assert any("iterated" in violation for violation in violations_pwf(query))

    def test_negation_excluded(self):
        assert not is_pwf("//a[not(child::b)]")

    def test_arithmetic_nesting_bound(self):
        deep = "//a[position() = 1 + (2 * (3 - (4 + 5)))]"
        assert not is_pwf(deep, nesting_bound=3)
        assert is_pwf(deep, nesting_bound=10)


class TestPXPath:
    def test_members_include_strings_and_attributes(self):
        assert is_pxpath("//a[@id = 'x']")
        assert is_pxpath("//a[contains(child::b, 'text')]")
        assert is_pxpath("//a[child::b > 3][position() = 2]") is False  # iterated
        assert is_pxpath("//open_auction[child::initial > 100]")

    @pytest.mark.parametrize(
        "query,keyword",
        [
            ("//a[not(child::b)]", "not"),
            ("//a[count(child::b) = 1]", "count"),
            ("//a[string(child::b) = 'x']", "string"),
            ("//a[child::b][child::c]", "iterated"),
            ("//a[true() = (child::b and child::c)]", "boolean operand"),
        ],
    )
    def test_non_members(self, query, keyword):
        assert not is_pxpath(query)
        assert any(keyword in violation for violation in violations_pxpath(query))

    def test_concat_bounds(self):
        assert is_pxpath("//a[concat('x', 'y') = 'xy']")
        wide = "//a[concat('a','b','c','d','e','f','g') = 'x']"
        assert not is_pxpath(wide)


class TestClassification:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("/descendant::a/child::b", "PF"),
            ("//a[child::b]", "positive Core XPath"),
            ("//a[not(child::b)]", "Core XPath"),
            ("//a[position() = last()]", "pWF"),
            ("//a[not(position() = 1)]", "WF"),
            ("//a[@id = 'x']", "pXPath"),
            ("//a[count(child::b) > 1]", "XPath"),
        ],
    )
    def test_most_specific_fragment(self, query, expected):
        classification = classify(query)
        assert classification.most_specific == expected
        assert classification.combined_complexity == FRAGMENT_COMPLEXITY[expected]

    def test_membership_is_upward_closed_along_figure1(self):
        # Whatever the most specific fragment, the query must also be in XPath
        # and (if in a positive fragment) in its supersets from Figure 1.
        classification = classify("//a[child::b]")
        assert "XPath" in classification.fragments
        assert "Core XPath" in classification.fragments
        assert "pWF" in classification.fragments

    def test_violations_reported_for_non_member_fragments(self):
        classification = classify("//a[count(child::b) > 1]")
        assert "Core XPath" in classification.violations
        assert classification.violations["Core XPath"]

    def test_fragment_order_matches_complexity_table(self):
        assert set(FRAGMENT_ORDER) == set(FRAGMENT_COMPLEXITY)

    def test_contains_dunder(self):
        classification = classify("//a[child::b]")
        assert "positive Core XPath" in classification
        assert "PF" not in classification
