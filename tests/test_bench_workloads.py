"""Unit tests for the benchmark workload generators and ElementTree helpers."""

import pytest

from repro.bench import (
    caterpillar_query,
    caterpillar_workload,
    child_chain_elementpath,
    core_scaling_workload,
    descendant_chain_query,
    elementtree_count,
    elementtree_find_all,
    negation_query,
    positive_condition_query,
    pwf_positional_query,
    representative_queries,
    supports_child_chain,
    to_elementtree,
)
from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator
from repro.fragments import classify, is_core_xpath, is_pf, is_positive_core_xpath, is_pwf
from repro.xmlmodel import build_tree


class TestCaterpillarWorkload:
    def test_query_step_count_matches_parameter(self):
        query = caterpillar_query(5)
        assert query.count("following-sibling") == 4
        with pytest.raises(ValueError):
            caterpillar_query(0)

    def test_workload_is_consistent_across_engines(self):
        document, query = caterpillar_workload(6)
        cvt = ContextValueTableEvaluator(document).evaluate_nodes(query)
        core = CoreXPathEvaluator(document).evaluate_nodes(query)
        assert [n.order for n in cvt] == [n.order for n in core]
        assert cvt, "the workload query must select something"

    def test_workload_query_is_pf(self):
        _, query = caterpillar_workload(4)
        assert is_pf(query)

    def test_custom_length(self):
        document, _ = caterpillar_workload(3, length=10)
        assert len(document.root.document_element().element_children()) == 10


class TestScalingWorkloads:
    def test_core_scaling_workload_nonempty(self):
        document, query = core_scaling_workload(6, 6)
        assert is_core_xpath(query)
        assert CoreXPathEvaluator(document).evaluate_nodes(query)

    def test_descendant_chain_query_step_parameter(self):
        short = descendant_chain_query(2)
        long = descendant_chain_query(8)
        assert long.count("::") > short.count("::")

    def test_pwf_positional_query_classification(self):
        assert classify(pwf_positional_query(2)).most_specific == "pWF"
        assert is_pwf(pwf_positional_query(4))

    def test_positive_condition_query_classification(self):
        assert is_positive_core_xpath(positive_condition_query(3))

    def test_negation_query_classification(self):
        query = negation_query(2)
        assert classify(query).most_specific == "Core XPath"
        assert not is_positive_core_xpath(query)


class TestRepresentativeQueries:
    def test_every_fragment_represented(self):
        queries = representative_queries()
        assert set(queries) == {
            "PF",
            "positive Core XPath",
            "Core XPath",
            "pWF",
            "WF",
            "pXPath",
            "XPath",
        }
        assert all(len(examples) >= 2 for examples in queries.values())

    def test_queries_land_in_their_fragment(self):
        for fragment, examples in representative_queries().items():
            for query in examples:
                assert classify(query).most_specific == fragment, query


class TestElementTreeHelpers:
    DOCUMENT = build_tree(
        ("site", [("a", {"id": "1"}, [("b",), ("b",)]), ("a", {"id": "2"}, [("c",)])])
    )

    def test_to_elementtree_preserves_structure(self):
        tree = to_elementtree(self.DOCUMENT)
        assert tree.tag == "site"
        assert len(tree.findall("./a")) == 2

    def test_counts_match_our_engine(self):
        ours = len(ContextValueTableEvaluator(self.DOCUMENT).evaluate_nodes("/descendant::b"))
        assert elementtree_count(self.DOCUMENT, ".//b") == ours == 2

    def test_find_all_returns_elements(self):
        elements = elementtree_find_all(self.DOCUMENT, ".//a[@id='2']")
        assert len(elements) == 1 and elements[0].get("id") == "2"

    def test_child_chain_helpers(self):
        assert child_chain_elementpath(["a", "b"]) == "./a/b"
        assert supports_child_chain(["a", "b", "*"])
        assert not supports_child_chain(["a[1]"])
