"""Correctness tests for the four hardness reductions (Theorems 3.2, 4.2, 4.3, 5.7).

Every test asserts the defining property of a reduction: the produced XPath
query selects at least one node **iff** the source instance (circuit value /
reachability) is a yes-instance.  The right-hand side is computed by the
circuit evaluator / BFS, the left-hand side by the polynomial XPath
evaluators built in this repository.
"""

import itertools

import pytest

from repro.circuits import (
    and_chain,
    carry_assignment,
    carry_circuit,
    expected_carry,
    majority3,
    or_of_ands,
    random_assignment,
    random_monotone_circuit,
    random_sac1_circuit,
)
from repro.errors import ReductionError
from repro.evaluation import query_selects
from repro.fragments import classify, is_core_xpath, is_pf, is_positive_core_xpath, is_pwf
from repro.graphs import figure5_graph, is_reachable, path_graph, random_digraph
from repro.reductions import (
    reduce_circuit_to_core_xpath,
    reduce_circuit_to_pwf_iterated,
    reduce_reachability_to_pf,
    reduce_sac1_to_positive_core_xpath,
)
from repro.xpath.analysis import max_predicates_per_step


class TestTheorem32:
    def test_carry_circuit_all_inputs(self, carry):
        for bits in itertools.product([False, True], repeat=4):
            instance = reduce_circuit_to_core_xpath(carry, carry_assignment(*bits))
            assert instance.expected is expected_carry(*bits)
            assert instance.holds("core"), bits
            assert instance.holds("cvt"), bits

    def test_query_is_core_xpath_but_not_positive(self, carry):
        instance = reduce_circuit_to_core_xpath(carry, carry_assignment(True, True, False, False))
        assert is_core_xpath(instance.query)
        assert not is_positive_core_xpath(instance.query)
        assert classify(instance.query).most_specific == "Core XPath"

    def test_small_library_circuits(self):
        for circuit in (and_chain(4), or_of_ands(3, 2), majority3()):
            for seed in range(4):
                assignment = random_assignment(circuit, seed=seed)
                instance = reduce_circuit_to_core_xpath(circuit, assignment)
                assert instance.holds("core")

    @pytest.mark.parametrize("seed", range(8))
    def test_random_monotone_circuits(self, seed):
        circuit = random_monotone_circuit(num_inputs=4, num_gates=7, seed=seed, max_fanin=3)
        assignment = random_assignment(circuit, seed=seed + 100)
        instance = reduce_circuit_to_core_xpath(circuit, assignment)
        assert instance.holds("core")

    def test_sizes_are_polynomial(self, carry):
        instance = reduce_circuit_to_core_xpath(carry, carry_assignment(True, True, True, True))
        # |D| is linear in the circuit (gates, ports and label children);
        # |Q| is linear in the number of internal gates.
        assert instance.document_size < 40 * carry.size()
        assert instance.query_size < 40 * carry.num_internal()

    def test_corollary_33_restricted_axes(self, carry):
        from repro.xpath.analysis import axes_used

        for bits in itertools.product([False, True], repeat=4):
            instance = reduce_circuit_to_core_xpath(
                carry, carry_assignment(*bits), corollary_3_3=True
            )
            assert axes_used(instance.query) <= {"child", "parent", "descendant-or-self"}
            assert instance.holds("core"), bits


class TestTheorem42:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_sac1_circuits(self, seed):
        circuit = random_sac1_circuit(num_inputs=6, seed=seed)
        assignment = random_assignment(circuit, seed=seed + 50)
        instance = reduce_sac1_to_positive_core_xpath(circuit, assignment)
        assert instance.holds("core")

    def test_query_is_positive_core_xpath(self):
        circuit = random_sac1_circuit(num_inputs=4, seed=3)
        assignment = random_assignment(circuit, seed=3)
        instance = reduce_sac1_to_positive_core_xpath(circuit, assignment)
        assert is_positive_core_xpath(instance.query)
        assert "not" not in instance.query_text()

    def test_non_semi_unbounded_circuit_rejected(self):
        wide = or_of_ands(2, 3)
        with pytest.raises(ReductionError):
            reduce_sac1_to_positive_core_xpath(
                wide, {name: True for name in wide.input_names}
            )

    def test_query_grows_with_and_gates(self):
        small = and_chain(3)  # 2 ∧-gates
        large = and_chain(5)  # 4 ∧-gates
        small_instance = reduce_sac1_to_positive_core_xpath(
            small, {name: True for name in small.input_names}
        )
        large_instance = reduce_sac1_to_positive_core_xpath(
            large, {name: True for name in large.input_names}
        )
        assert large_instance.query_size > 2 * small_instance.query_size
        assert small_instance.holds("core") and large_instance.holds("core")


class TestTheorem43:
    def test_figure5_graph_all_pairs(self):
        graph = figure5_graph()
        for source in range(graph.num_vertices):
            for target in range(graph.num_vertices):
                instance = reduce_reachability_to_pf(graph, source, target)
                assert instance.expected == is_reachable(graph, source, target)
                assert instance.holds("core"), (source, target)

    def test_query_is_pf(self):
        instance = reduce_reachability_to_pf(figure5_graph(), 0, 2)
        assert is_pf(instance.query)
        assert max_predicates_per_step(instance.query) == 0
        assert classify(instance.query).most_specific == "PF"
        assert classify(instance.query).combined_complexity == "NL-complete"

    def test_path_graph_direction_matters(self):
        graph = path_graph(4)
        forward = reduce_reachability_to_pf(graph, 0, 3)
        backward = reduce_reachability_to_pf(graph, 3, 0)
        assert forward.expected and forward.holds("core")
        assert not backward.expected and backward.holds("core")

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_all_pairs(self, seed):
        graph = random_digraph(5, edge_probability=0.3, seed=seed)
        for source in range(graph.num_vertices):
            for target in range(graph.num_vertices):
                instance = reduce_reachability_to_pf(graph, source, target)
                assert instance.holds("core"), (seed, source, target)

    def test_vertex_out_of_range(self):
        with pytest.raises(ReductionError):
            reduce_reachability_to_pf(path_graph(3), 0, 7)

    def test_explicit_step_budget(self):
        graph = path_graph(5)
        # With only 2 steps the walk 0 → 4 cannot be witnessed.
        short = reduce_reachability_to_pf(graph, 0, 4, steps=2)
        assert not query_selects(short.query, short.document, engine="core")
        long = reduce_reachability_to_pf(graph, 0, 4, steps=4)
        assert query_selects(long.query, long.document, engine="core")


class TestTheorem57:
    def test_carry_circuit_all_inputs(self, carry):
        for bits in itertools.product([False, True], repeat=4):
            instance = reduce_circuit_to_pwf_iterated(carry, carry_assignment(*bits))
            assert instance.expected is expected_carry(*bits)
            assert instance.holds("cvt"), bits

    def test_query_avoids_negation_but_uses_iterated_predicates(self, carry):
        instance = reduce_circuit_to_pwf_iterated(carry, carry_assignment(True, True, True, True))
        text = instance.query_text()
        assert "not(" not in text
        assert "last()" in text
        assert max_predicates_per_step(instance.query) == 2  # Corollary 5.8
        # Without the iterated predicates the query would be in pWF.
        assert not is_pwf(instance.query)
        violations = classify(instance.query).violations.get("pWF", [])
        assert any("iterated" in violation for violation in violations)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_monotone_circuits(self, seed):
        circuit = random_monotone_circuit(num_inputs=3, num_gates=5, seed=seed)
        assignment = random_assignment(circuit, seed=seed + 7)
        instance = reduce_circuit_to_pwf_iterated(circuit, assignment)
        assert instance.holds("cvt")

    def test_agreement_between_naive_and_cvt_on_reduction_queries(self):
        # The naive evaluator has no sharing, so keep the circuit tiny (one
        # internal gate) — the point is semantic agreement, not speed.
        circuit = and_chain(2)
        for assignment in ({"x0": True, "x1": True}, {"x0": True, "x1": False}):
            instance = reduce_circuit_to_pwf_iterated(circuit, assignment)
            assert instance.holds("cvt") and instance.holds("naive")
