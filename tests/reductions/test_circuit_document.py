"""Unit tests for the shared circuit-encoding document (proof of Theorem 3.2)."""

import pytest

from repro.circuits import carry_circuit
from repro.errors import ReductionError
from repro.reductions import (
    GATE_TAG,
    PORT_TAG,
    ROOT_TAG,
    STRUCTURAL_TAGS,
    W_TAG,
    build_circuit_document,
    input_label,
    node_labels,
    output_label,
)
from repro.reductions.labels import FALSE_LABEL, TRUE_LABEL, label_test, truth_label


def carry_document(**kwargs):
    circuit = carry_circuit()
    assignment = {"G1": True, "G2": False, "G3": True, "G4": True}
    return circuit, build_circuit_document(circuit, assignment, **kwargs)


def labels(element):
    return node_labels(element) - STRUCTURAL_TAGS


class TestLabelHelpers:
    def test_label_names(self):
        assert input_label(3) == "I3"
        assert input_label(3, 2) == "I3_2"
        assert output_label(4) == "O4"
        assert truth_label(True) == TRUE_LABEL
        assert truth_label(False) == FALSE_LABEL

    def test_label_test_is_core_xpath_condition(self):
        from repro.fragments import is_core_xpath

        assert label_test("G").unparse() == "child::G"
        assert is_core_xpath(label_test("R"))


class TestDocumentShape:
    def test_gate_and_port_counts(self):
        circuit, encoded = carry_document()
        document = encoded.document
        assert len(document.elements_with_tag(GATE_TAG)) == circuit.size()
        assert len(document.elements_with_tag(PORT_TAG)) == circuit.size()
        assert len(document.elements_with_tag(ROOT_TAG)) == 1

    def test_tree_depth_without_labels_is_two(self):
        # vi nodes at depth 1 below the circuit root, ports at depth 2; the
        # label children add one more level (the Remark 3.1 / Cor 3.3 remark).
        _, encoded = carry_document()
        root_element = encoded.document.root.document_element()
        for gate_node in root_element.element_children():
            assert gate_node.tag == GATE_TAG
            port_children = [c for c in gate_node.element_children() if c.tag == PORT_TAG]
            assert len(port_children) == 1

    def test_gate_node_labels_match_paper_example(self):
        # Figure 3 / the v1..v9 label table in the proof of Theorem 3.2:
        # gate numbering is G1..G9 and layer k computes G(4+k).
        circuit, encoded = carry_document()
        gate_nodes = encoded.document.elements_with_tag(GATE_TAG)
        by_number = {i + 1: labels(node) for i, node in enumerate(gate_nodes)}
        # v1 (= a1, true here): G, truth label, inputs of layers 2 (G6) and 3 (G7).
        assert by_number[1] == {"G", TRUE_LABEL, "I2", "I3"}
        # v2 (= b1, false): inputs of layers 2 and 4.
        assert by_number[2] == {"G", FALSE_LABEL, "I2", "I4"}
        # v3, v4 (= a0, b0): inputs of layer 1 (G5).
        assert by_number[3] == {"G", TRUE_LABEL, "I1"}
        assert by_number[4] == {"G", TRUE_LABEL, "I1"}
        # v5 (= G5 = c0): output of layer 1, input of layers 3 and 4.
        assert by_number[5] == {"G", "O1", "I3", "I4"}
        # v6..v8: outputs of layers 2..4, inputs of layer 5.
        assert by_number[6] == {"G", "O2", "I5"}
        assert by_number[7] == {"G", "O3", "I5"}
        assert by_number[8] == {"G", "O4", "I5"}
        # v9: result gate.
        assert by_number[9] == {"G", "R", "O5"}

    def test_port_labels_match_paper(self):
        circuit, encoded = carry_document()
        port_nodes = encoded.document.elements_with_tag(PORT_TAG)
        all_layer_labels = {
            label
            for k in range(1, 6)
            for label in (input_label(k), output_label(k))
        }
        # Ports of input gates carry every layer label.
        for port in port_nodes[:4]:
            assert labels(port) == all_layer_labels
        # Port of gate G(4+i) carries the labels of layers i..5.
        for i, port in enumerate(port_nodes[4:], start=1):
            expected = {
                label
                for k in range(i, 6)
                for label in (input_label(k), output_label(k))
            }
            assert labels(port) == expected

    def test_missing_assignment_rejected(self):
        circuit = carry_circuit()
        with pytest.raises(ReductionError):
            build_circuit_document(circuit, {"G1": True})


class TestVariants:
    def test_split_and_inputs_labels(self):
        circuit, encoded = carry_document(split_and_inputs=True)
        gate_nodes = encoded.document.elements_with_tag(GATE_TAG)
        # Layer 1 computes G5 = G3 ∧ G4: G3 carries I1_1, G4 carries I1_2.
        assert "I1_1" in labels(gate_nodes[2])
        assert "I1_2" in labels(gate_nodes[3])
        # The ∨-layer 5 keeps its plain I5 labels.
        assert "I5" in labels(gate_nodes[5])

    def test_split_rejects_wide_and_gates(self):
        from repro.circuits import or_of_ands

        circuit = or_of_ands(2, 3)  # ∧-gates of fan-in 3
        assignment = {name: True for name in circuit.input_names}
        with pytest.raises(ReductionError):
            build_circuit_document(circuit, assignment, split_and_inputs=True)

    def test_w_nodes_added_for_theorem_57(self):
        circuit, encoded = carry_document(add_w_nodes=True)
        document = encoded.document
        # One w child under the circuit root and one under every gate node.
        assert len(document.elements_with_tag(W_TAG)) == circuit.size() + 1
        for w_node in document.elements_with_tag(W_TAG):
            assert node_labels(w_node) == {"W"}
        root_element = document.root.document_element()
        assert any(child.tag == "A" for child in root_element.element_children())
        # The w node is the right-most child of each gate node.
        for gate_node in document.elements_with_tag(GATE_TAG):
            assert gate_node.element_children()[-1].tag == W_TAG
