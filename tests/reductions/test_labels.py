"""Unit tests for the Remark 3.1 label-encoding helpers."""

from repro.evaluation import CoreXPathEvaluator
from repro.fragments import is_core_xpath
from repro.reductions.labels import (
    FALSE_LABEL,
    TRUE_LABEL,
    LabelledNodeBuilder,
    label_test,
    node_labels,
    truth_label,
)
from repro.xmlmodel import DocumentBuilder


def build_labelled_document():
    builder = DocumentBuilder()
    labelled = LabelledNodeBuilder(builder)
    builder.start_element("root")
    labelled.start_labelled("item", ["G", "R"])
    labelled.add_labelled("item", ["G", TRUE_LABEL])
    labelled.end()
    labelled.add_labelled("item", [FALSE_LABEL])
    builder.end_element()
    return builder.finish()


class TestLabelEncoding:
    def test_labels_become_children(self):
        document = build_labelled_document()
        items = document.elements_with_tag("item")
        assert node_labels(items[0]) - {"item"} == {"G", "R"}
        assert node_labels(items[1]) == {"G", TRUE_LABEL}
        assert node_labels(items[2]) == {FALSE_LABEL}

    def test_nested_labelled_nodes(self):
        document = build_labelled_document()
        outer = document.elements_with_tag("item")[0]
        inner = [child for child in outer.element_children() if child.tag == "item"]
        assert len(inner) == 1

    def test_truth_labels(self):
        assert truth_label(True) == TRUE_LABEL
        assert truth_label(False) == FALSE_LABEL
        assert TRUE_LABEL != FALSE_LABEL

    def test_label_test_selects_labelled_nodes(self):
        document = build_labelled_document()
        evaluator = CoreXPathEvaluator(document)
        g_nodes = evaluator.condition_nodes(label_test("G"))
        assert [node.tag for node in g_nodes] == ["item", "item"]
        r_nodes = evaluator.condition_nodes(label_test("R"))
        assert len(r_nodes) == 1

    def test_label_test_is_core_xpath(self):
        assert is_core_xpath(label_test("I7"))
        assert label_test("W").unparse() == "child::W"
