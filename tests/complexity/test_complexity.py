"""Unit tests for the complexity-class lattice (Figure 1) and scaling measures."""

import math

import pytest

from repro.complexity import (
    CLASS_CHAIN,
    FIGURE1_ASSIGNMENTS,
    FIGURE1_INCLUSIONS,
    ScalingSeries,
    class_index,
    doubling_ratios,
    figure1_assignment,
    fit_exponential,
    fit_power_law,
    is_contained_in,
    is_parallelizable,
    operations_per_input,
    render_figure1,
)
from repro.fragments import FRAGMENT_COMPLEXITY


class TestClassLattice:
    def test_chain_order(self):
        assert CLASS_CHAIN.index("NL") < CLASS_CHAIN.index("LOGCFL") < CLASS_CHAIN.index("P")

    def test_containment(self):
        assert is_contained_in("NL", "LOGCFL")
        assert is_contained_in("LOGCFL", "NC2")
        assert is_contained_in("L", "P")
        assert not is_contained_in("P", "LOGCFL")

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            class_index("EXPTIME")

    def test_parallelizable_classes(self):
        assert is_parallelizable("LOGCFL")
        assert is_parallelizable("NL")
        assert not is_parallelizable("P")


class TestFigure1Data:
    def test_every_fragment_has_an_assignment(self):
        fragments = {assignment.fragment for assignment in FIGURE1_ASSIGNMENTS}
        assert fragments == set(FRAGMENT_COMPLEXITY)

    def test_labels_match_classifier_table(self):
        for assignment in FIGURE1_ASSIGNMENTS:
            assert FRAGMENT_COMPLEXITY[assignment.fragment] == assignment.label

    def test_inclusions_connect_known_fragments(self):
        fragments = {assignment.fragment for assignment in FIGURE1_ASSIGNMENTS}
        for smaller, larger in FIGURE1_INCLUSIONS:
            assert smaller in fragments and larger in fragments

    def test_inclusions_never_decrease_complexity(self):
        for smaller, larger in FIGURE1_INCLUSIONS:
            assert is_contained_in(
                figure1_assignment(smaller).complexity_class,
                figure1_assignment(larger).complexity_class,
            )

    def test_figure1_parallelizability_split(self):
        assert figure1_assignment("positive Core XPath").parallelizable
        assert figure1_assignment("pXPath").parallelizable
        assert not figure1_assignment("Core XPath").parallelizable
        assert not figure1_assignment("XPath").parallelizable

    def test_render_mentions_every_fragment_and_arrow(self):
        text = render_figure1()
        for assignment in FIGURE1_ASSIGNMENTS:
            assert assignment.fragment in text
            assert assignment.label in text
        assert "PF -> positive Core XPath" in text

    def test_lookup_unknown_fragment(self):
        with pytest.raises(ValueError):
            figure1_assignment("XQuery")


class TestScalingMeasures:
    def test_fit_power_law_recovers_exponent(self):
        sizes = [10, 20, 40, 80, 160]
        costs = [3 * size**2 for size in sizes]
        exponent, constant = fit_power_law(sizes, costs)
        assert exponent == pytest.approx(2.0, rel=1e-6)
        assert constant == pytest.approx(3.0, rel=1e-6)

    def test_fit_exponential_recovers_base(self):
        sizes = [1, 2, 3, 4, 5, 6]
        costs = [5 * 2**size for size in sizes]
        base, constant = fit_exponential(sizes, costs)
        assert base == pytest.approx(2.0, rel=1e-6)
        assert constant == pytest.approx(5.0, rel=1e-6)

    def test_fits_require_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_exponential([2, 2], [1, 1]) and fit_power_law([1, 1], [2, 3])

    def test_doubling_ratios(self):
        assert doubling_ratios([1, 2, 8]) == [2.0, 4.0]
        assert doubling_ratios([0, 5]) == []

    def test_scaling_series_helpers(self):
        series = ScalingSeries("test", "n", "ops")
        for size in (8, 16, 32, 64):
            series.add(size, 2.5 * size)
        assert series.power_law_exponent() == pytest.approx(1.0, rel=1e-6)
        assert series.ratios() == [2.0, 2.0, 2.0]
        assert all(value == pytest.approx(2.5) for value in operations_per_input(series))
        table = series.format_table()
        assert "test" in table and "64" in table
        assert "size^1.00" in series.summary()

    def test_linear_regression_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_exponential([3, 3, 3], [1, 2, 3])
