"""Unit tests for the run-time core function library (via full query evaluation)."""

import math

import pytest

from repro.evaluation import ContextValueTableEvaluator
from repro.xmlmodel.parser import parse_xml

DOC = """
<catalog xml:lang="en">
  <book id="b1" price="10"><title>  Alpha   Book </title></book>
  <book id="b2" price="25"><title>Beta</title></book>
  <book id="b3" price="7"><title>Gamma</title></book>
  <note xml:lang="de-AT"><p>Anmerkung</p></note>
</catalog>
"""


@pytest.fixture
def evaluator():
    return ContextValueTableEvaluator(parse_xml(DOC))


def ev(evaluator, query):
    return evaluator.evaluate(query)


class TestNodeSetFunctions:
    def test_count(self, evaluator):
        assert ev(evaluator, "count(//book)") == 3.0
        assert ev(evaluator, "count(//missing)") == 0.0

    def test_position_and_last(self, evaluator):
        assert [n.get_attribute("id") for n in evaluator.evaluate_nodes("//book[position() = last()]")] == ["b3"]
        assert [n.get_attribute("id") for n in evaluator.evaluate_nodes("//book[position() = 2]")] == ["b2"]

    def test_numeric_predicate_abbreviation(self, evaluator):
        assert [n.get_attribute("id") for n in evaluator.evaluate_nodes("//book[2]")] == ["b2"]

    def test_id_function(self, evaluator):
        assert [n.get_attribute("id") for n in evaluator.evaluate_nodes("id('b2')")] == ["b2"]
        assert [n.get_attribute("id") for n in evaluator.evaluate_nodes("id('b3 b1')")] == ["b1", "b3"]

    def test_name_and_local_name(self, evaluator):
        assert ev(evaluator, "name(//book)") == "book"
        assert ev(evaluator, "local-name(//book)") == "book"
        assert ev(evaluator, "name(//missing)") == ""

    def test_sum(self, evaluator):
        assert ev(evaluator, "sum(//book/attribute::price)") == 42.0
        assert ev(evaluator, "sum(//missing)") == 0.0


class TestStringFunctions:
    def test_string_of_context_and_argument(self, evaluator):
        assert ev(evaluator, "string(//book[1]/title)") == "  Alpha   Book "
        assert ev(evaluator, "string(12.0)") == "12"

    def test_concat(self, evaluator):
        assert ev(evaluator, "concat('a', 'b', 'c', 'd')") == "abcd"

    def test_starts_with_and_contains(self, evaluator):
        assert ev(evaluator, "starts-with('hello', 'he')") is True
        assert ev(evaluator, "starts-with('hello', 'lo')") is False
        assert ev(evaluator, "contains('hello', 'ell')") is True
        assert ev(evaluator, "contains('hello', 'xyz')") is False

    def test_substring_before_after(self, evaluator):
        assert ev(evaluator, "substring-before('1999/04/01', '/')") == "1999"
        assert ev(evaluator, "substring-after('1999/04/01', '/')") == "04/01"
        assert ev(evaluator, "substring-before('abc', 'z')") == ""

    def test_substring_spec_examples(self, evaluator):
        # The W3C recommendation's own corner cases.
        assert ev(evaluator, "substring('12345', 2, 3)") == "234"
        assert ev(evaluator, "substring('12345', 2)") == "2345"
        assert ev(evaluator, "substring('12345', 1.5, 2.6)") == "234"
        assert ev(evaluator, "substring('12345', 0, 3)") == "12"
        assert ev(evaluator, "substring('12345', 0 div 0, 3)") == ""
        assert ev(evaluator, "substring('12345', -42, 1 div 0)") == "12345"

    def test_string_length(self, evaluator):
        assert ev(evaluator, "string-length('abc')") == 3.0
        assert ev(evaluator, "string-length(//book[2]/title)") == 4.0

    def test_normalize_space(self, evaluator):
        assert ev(evaluator, "normalize-space('  a   b  ')") == "a b"
        assert ev(evaluator, "normalize-space(//book[1]/title)") == "Alpha Book"

    def test_translate(self, evaluator):
        assert ev(evaluator, "translate('bar', 'abc', 'ABC')") == "BAr"
        assert ev(evaluator, "translate('--aaa--', 'abc-', 'ABC')") == "AAA"


class TestBooleanFunctions:
    def test_boolean_not_true_false(self, evaluator):
        assert ev(evaluator, "boolean(//book)") is True
        assert ev(evaluator, "boolean(//missing)") is False
        assert ev(evaluator, "not(//missing)") is True
        assert ev(evaluator, "true()") is True
        assert ev(evaluator, "false()") is False

    def test_lang(self, evaluator):
        assert ev(evaluator, "boolean(//title[lang('en')])") is True
        assert ev(evaluator, "boolean(//p[lang('de')])") is True
        assert ev(evaluator, "boolean(//p[lang('fr')])") is False


class TestNumberFunctions:
    def test_number_conversion(self, evaluator):
        assert ev(evaluator, "number('12.5')") == 12.5
        assert math.isnan(ev(evaluator, "number('abc')"))
        assert ev(evaluator, "number(//book[1]/attribute::price)") == 10.0

    def test_floor_ceiling_round(self, evaluator):
        assert ev(evaluator, "floor(2.7)") == 2.0
        assert ev(evaluator, "ceiling(2.1)") == 3.0
        assert ev(evaluator, "round(2.5)") == 3.0
        assert ev(evaluator, "round(-2.5)") == -2.0

    def test_arithmetic_on_attributes(self, evaluator):
        assert ev(evaluator, "//book[attribute::price > 8 and attribute::price < 20]/attribute::id = 'b1'") is True
