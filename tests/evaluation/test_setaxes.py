"""Unit tests for the set-at-a-time axis implementations.

Every set-level axis must agree with the per-node reference implementation
in :mod:`repro.xmlmodel.axes` on arbitrary node sets.
"""

import pytest

from repro.errors import XPathEvaluationError
from repro.evaluation.setaxes import NAVIGATIONAL_AXES, apply_axis_set
from repro.xmlmodel.axes import axis_nodes
from repro.xmlmodel.generators import complete_tree_document, random_document
from repro.xmlmodel.parser import parse_xml

DOC = parse_xml("<a><b><c/><d/></b><b/><e><f><g/></f></e></a>")


def reference(document, axis, nodes):
    expected = set()
    for node in nodes:
        expected.update(axis_nodes(node, axis))
    return expected


class TestAgreementWithPerNodeAxes:
    @pytest.mark.parametrize("axis", sorted(NAVIGATIONAL_AXES))
    def test_singleton_sets(self, axis):
        for node in DOC.nodes:
            assert apply_axis_set(DOC, axis, {node}) == reference(DOC, axis, {node})

    @pytest.mark.parametrize("axis", sorted(NAVIGATIONAL_AXES))
    def test_full_node_set(self, axis):
        all_nodes = set(DOC.nodes)
        assert apply_axis_set(DOC, axis, all_nodes) == reference(DOC, axis, all_nodes)

    @pytest.mark.parametrize("axis", sorted(NAVIGATIONAL_AXES))
    def test_random_subsets_on_random_documents(self, axis):
        document = random_document(40, seed=17)
        subset = set(document.nodes[:: max(1, len(document.nodes) // 7)])
        assert apply_axis_set(document, axis, subset) == reference(document, axis, subset)

    @pytest.mark.parametrize("axis", sorted(NAVIGATIONAL_AXES))
    def test_empty_set_maps_to_empty_set(self, axis):
        assert apply_axis_set(DOC, axis, set()) == set()


class TestSpecificAxes:
    def test_descendant_of_root_is_everything_below(self):
        result = apply_axis_set(DOC, "descendant", {DOC.root})
        assert result == set(DOC.nodes) - {DOC.root}

    def test_ancestor_of_leaf(self):
        leaf = DOC.elements_with_tag("g")[0]
        tags = {getattr(node, "tag", "#root") for node in apply_axis_set(DOC, "ancestor", {leaf})}
        assert tags == {"f", "e", "a", "#root"}

    def test_following_and_preceding_partition(self):
        # For any node: {self} ∪ ancestors ∪ descendants ∪ following ∪ preceding = all nodes.
        for node in DOC.elements:
            groups = [
                {node},
                apply_axis_set(DOC, "ancestor", {node}),
                apply_axis_set(DOC, "descendant", {node}),
                apply_axis_set(DOC, "following", {node}),
                apply_axis_set(DOC, "preceding", {node}),
            ]
            union = set().union(*groups)
            assert union == set(DOC.nodes)
            total = sum(len(group) for group in groups)
            assert total == len(DOC.nodes)  # pairwise disjoint

    def test_sibling_axes_share_parent(self):
        first_b = DOC.elements_with_tag("b")[0]
        following = apply_axis_set(DOC, "following-sibling", {first_b})
        assert {node.tag for node in following} == {"b", "e"}
        preceding = apply_axis_set(DOC, "preceding-sibling", {DOC.elements_with_tag("e")[0]})
        assert {node.tag for node in preceding} == {"b"}

    def test_unknown_axis_raises(self):
        with pytest.raises(XPathEvaluationError):
            apply_axis_set(DOC, "attribute", {DOC.root})

    def test_larger_balanced_tree(self):
        document = complete_tree_document(3, 4)
        leaves = {node for node in document.elements if not node.children}
        ancestors = apply_axis_set(document, "ancestor", leaves)
        assert ancestors == {node for node in document.nodes if node.children}
