"""Unit tests for the top-level evaluate()/make_evaluator() convenience API."""

import pytest

from repro.errors import XPathEvaluationError
from repro.evaluation import (
    ENGINES,
    Context,
    evaluate,
    evaluate_nodes,
    make_evaluator,
    query_selects,
)
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.cvt import ContextValueTableEvaluator
from repro.evaluation.naive import NaiveEvaluator
from repro.evaluation.singleton import SingletonSuccessChecker
from repro.xmlmodel.parser import parse_xml

DOC = parse_xml("<r><a><b/></a><a/><c>5</c></r>")


class TestMakeEvaluator:
    def test_engine_classes(self):
        assert isinstance(make_evaluator(DOC, "cvt"), ContextValueTableEvaluator)
        assert isinstance(make_evaluator(DOC, "naive"), NaiveEvaluator)
        assert isinstance(make_evaluator(DOC, "core"), CoreXPathEvaluator)
        assert isinstance(make_evaluator(DOC, "singleton"), SingletonSuccessChecker)

    def test_unknown_engine(self):
        with pytest.raises(XPathEvaluationError) as excinfo:
            make_evaluator(DOC, "quantum")
        assert "XPathEngine" in str(excinfo.value)

    def test_auto_engine_returns_planner_backed_callable(self):
        evaluator = make_evaluator(DOC, "auto")
        assert [n.tag for n in evaluator("/child::r/child::a[child::b]")] == ["a"]
        assert evaluator.evaluate("count(//a)") == 2.0

    def test_auto_engine_keeps_construction_time_variables(self):
        evaluator = make_evaluator(DOC, "auto", variables={"x": 21.0})
        assert evaluator("$x * 2") == 42.0
        # Call-time bindings override, as with a fresh cvt evaluator.
        assert evaluator("$x * 2", variables={"x": 4.0}) == 8.0

    def test_engines_constant_is_complete(self):
        assert set(ENGINES) == {"cvt", "naive", "core", "singleton", "auto"}

    def test_singleton_negation_default_is_shared(self):
        """One documented default threads through make_evaluator, evaluate
        and XPathEngine (it used to be 0 here and a hardcoded 64 there)."""
        from repro.engine import XPathEngine
        from repro.evaluation import DEFAULT_MAX_NEGATION_DEPTH

        checker = make_evaluator(DOC, "singleton")
        assert checker.max_negation_depth == DEFAULT_MAX_NEGATION_DEPTH
        assert XPathEngine().max_negation_depth == DEFAULT_MAX_NEGATION_DEPTH
        # evaluate(engine="singleton") accepts bounded negation by default.
        nodes = evaluate("descendant::a[not(child::b)]", DOC, engine="singleton")
        assert len(nodes) == 1


class TestEvaluate:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_node_set_queries_across_engines(self, engine):
        nodes = evaluate("/child::r/child::a[child::b]", DOC, engine=engine)
        assert [n.tag for n in nodes] == ["a"]

    def test_scalar_results(self):
        assert evaluate("count(//a)", DOC) == 2.0
        assert evaluate("string(//c)", DOC) == "5"
        assert evaluate("//c = 5", DOC) is True

    def test_scalar_results_via_singleton_engine(self):
        assert evaluate("descendant::c = 5", DOC, engine="singleton") is True
        assert evaluate("1 + 2", DOC, engine="singleton") == 3.0

    def test_explicit_context(self):
        a1 = DOC.elements_with_tag("a")[0]
        assert len(evaluate("child::b", DOC, context=Context(a1))) == 1
        assert evaluate("child::b", DOC, engine="core", context=Context(a1))

    def test_variables(self):
        assert evaluate("$x * 2", DOC, variables={"x": 21.0}) == 42.0

    def test_evaluate_nodes_rejects_scalars(self):
        with pytest.raises(XPathEvaluationError):
            evaluate_nodes("1 + 1", DOC)

    def test_query_selects(self):
        assert query_selects("//b", DOC)
        assert not query_selects("//zzz", DOC)
        assert query_selects("//b", DOC, engine="core")
