"""Unit tests for the naive evaluator and the context-value-table DP evaluator.

The two share their semantics layer, so most behavioural tests are run
against both; the complexity-contrast tests at the end check the defining
difference (sharing) via operation counts.
"""

import pytest

from repro.errors import XPathEvaluationError, XPathTypeError
from repro.evaluation import ContextValueTableEvaluator, NaiveEvaluator
from repro.evaluation.context import Context
from repro.evaluation.cvt import is_position_sensitive
from repro.bench import caterpillar_workload
from repro.xmlmodel.parser import parse_xml
from repro.xpath.parser import parse

DOC = parse_xml(
    """
    <site>
      <a id="1"><b><c/></b><b/></a>
      <a id="2"><d>text</d><b><c/><c/></b></a>
      <a id="3"/>
    </site>
    """
)

EVALUATORS = [NaiveEvaluator, ContextValueTableEvaluator]


def ids(nodes):
    return [node.get_attribute("id") or node.tag for node in nodes]


@pytest.mark.parametrize("engine_class", EVALUATORS)
class TestLocationPaths:
    def test_absolute_child_chain(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("/child::site/child::a")
        assert ids(nodes) == ["1", "2", "3"]

    def test_descendant_with_condition(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("/descendant::a[descendant::c]")
        assert ids(nodes) == ["1", "2"]

    def test_relative_path_uses_context_node(self, engine_class):
        evaluator = engine_class(DOC)
        a2 = DOC.elements_with_tag("a")[1]
        nodes = evaluator.evaluate_nodes("child::b/child::c", Context(a2))
        assert len(nodes) == 2

    def test_union_in_document_order(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("//d | //c | //b")
        assert [node.tag for node in nodes] == ["b", "c", "b", "d", "b", "c", "c"]

    def test_result_deduplication(self, engine_class):
        # Both //b and descendant paths reach the same nodes; the node-set
        # must not contain duplicates.
        nodes = engine_class(DOC).evaluate_nodes("//a/descendant::c | //b/child::c")
        assert len(nodes) == 3

    def test_parent_and_ancestor(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("//c/ancestor::a")
        assert ids(nodes) == ["1", "2"]

    def test_attribute_axis(self, engine_class):
        evaluator = engine_class(DOC)
        values = [node.value for node in evaluator.evaluate_nodes("//a/attribute::id")]
        assert values == ["1", "2", "3"]

    def test_empty_result(self, engine_class):
        assert engine_class(DOC).evaluate_nodes("//nonexistent") == []


@pytest.mark.parametrize("engine_class", EVALUATORS)
class TestPredicates:
    def test_positional_predicates_renumber_iteratively(self, engine_class):
        evaluator = engine_class(DOC)
        # [position() > 1][1] selects the second node: after the first
        # predicate the survivors are renumbered.
        nodes = evaluator.evaluate_nodes("/child::site/child::a[position() > 1][1]")
        assert ids(nodes) == ["2"]

    def test_last_on_reverse_axis_counts_in_axis_order(self, engine_class):
        evaluator = engine_class(DOC)
        c_node = DOC.elements_with_tag("c")[0]
        nodes = evaluator.evaluate_nodes("ancestor::*[last()]", Context(c_node))
        assert nodes[0].tag == "site"

    def test_position_on_reverse_axis(self, engine_class):
        evaluator = engine_class(DOC)
        c_node = DOC.elements_with_tag("c")[0]
        nodes = evaluator.evaluate_nodes("ancestor::*[position() = 1]", Context(c_node))
        assert nodes[0].tag == "b"

    def test_boolean_predicate_with_comparison(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("//a[attribute::id = '2']")
        assert ids(nodes) == ["2"]

    def test_nested_predicates(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("//a[child::b[child::c]]")
        assert ids(nodes) == ["1", "2"]

    def test_filter_expression_predicate(self, engine_class):
        nodes = engine_class(DOC).evaluate_nodes("(//c)[2]")
        assert len(nodes) == 1
        assert nodes[0] is DOC.elements_with_tag("c")[1]


@pytest.mark.parametrize("engine_class", EVALUATORS)
class TestScalarResults:
    def test_arithmetic(self, engine_class):
        assert engine_class(DOC).evaluate("(1 + 2) * 4 - 6 div 2") == 9.0

    def test_boolean_connectives_short_circuit(self, engine_class):
        evaluator = engine_class(DOC)
        assert evaluator.evaluate("true() or 1 div 0 = 0") is True
        assert evaluator.evaluate("false() and 1 div 0 = 0") is False

    def test_string_result(self, engine_class):
        assert engine_class(DOC).evaluate("string(//d)") == "text"

    def test_variables(self, engine_class):
        evaluator = engine_class(DOC, variables={"threshold": 2.0})
        assert evaluator.evaluate("$threshold + 1") == 3.0

    def test_unbound_variable_raises(self, engine_class):
        with pytest.raises(XPathEvaluationError):
            engine_class(DOC).evaluate("$missing")

    def test_evaluate_nodes_rejects_scalar_queries(self, engine_class):
        with pytest.raises(XPathTypeError):
            engine_class(DOC).evaluate_nodes("1 + 1")

    def test_union_of_non_node_sets_raises(self, engine_class):
        with pytest.raises(XPathTypeError):
            engine_class(DOC).evaluate("1 | 2")


class TestSharingContrast:
    def test_cvt_never_does_more_work_than_naive_on_caterpillar(self):
        document, query = caterpillar_workload(8)
        naive = NaiveEvaluator(document)
        cvt = ContextValueTableEvaluator(document)
        assert ids(naive.evaluate_nodes(query)) == ids(cvt.evaluate_nodes(query))
        assert cvt.operations < naive.operations

    def test_naive_operations_grow_exponentially(self):
        counts = []
        for steps in (4, 6, 8, 10):
            document, query = caterpillar_workload(steps, length=24)
            naive = NaiveEvaluator(document)
            naive.evaluate_nodes(query)
            counts.append(naive.operations)
        ratios = [b / a for a, b in zip(counts, counts[1:])]
        assert all(ratio > 2.0 for ratio in ratios)

    def test_cvt_operations_grow_polynomially(self):
        counts = []
        for steps in (4, 6, 8, 10):
            document, query = caterpillar_workload(steps, length=24)
            cvt = ContextValueTableEvaluator(document)
            cvt.evaluate_nodes(query)
            counts.append(cvt.operations)
        ratios = [b / a for a, b in zip(counts, counts[1:])]
        # With the document fixed, added steps add roughly constant work.
        assert all(ratio < 2.0 for ratio in ratios)

    def test_table_introspection(self):
        document, query = caterpillar_workload(5)
        cvt = ContextValueTableEvaluator(document)
        cvt.evaluate_nodes(query)
        assert cvt.table_count() >= 1
        assert cvt.table_entries() >= cvt.table_count()

    def test_memoisation_reuses_results(self):
        evaluator = ContextValueTableEvaluator(DOC)
        query = parse("//a[child::b[child::c] or child::b[child::c]]")
        evaluator.evaluate_nodes(query)
        first = evaluator.operations
        evaluator.evaluate_nodes(query)
        # The second evaluation hits the tables; only the top-level dispatch
        # adds operations.
        assert evaluator.operations - first < first


class TestPositionSensitivityAnalysis:
    def test_sensitive_cases(self):
        assert is_position_sensitive(parse("position()"))
        assert is_position_sensitive(parse("last() - 1"))

    def test_insensitive_cases(self):
        assert not is_position_sensitive(parse("//a[position() = 1]"))
        assert not is_position_sensitive(parse("count(//a)"))
