"""Unit tests for Context, Environment and the evaluator base-class plumbing."""

import pytest

from repro.errors import XPathEvaluationError, XPathTypeError
from repro.evaluation import Context, ContextValueTableEvaluator, initial_context
from repro.evaluation.context import Environment
from repro.xmlmodel import build_tree
from repro.xpath import parse, step

DOC = build_tree(("a", [("b", [("c",)]), ("b",)]))


class TestContext:
    def test_defaults(self):
        context = Context(DOC.root)
        assert context.position == 1 and context.size == 1

    def test_with_node(self):
        b = DOC.elements_with_tag("b")[0]
        context = Context(DOC.root).with_node(b, 2, 5)
        assert context.node is b and context.position == 2 and context.size == 5

    def test_keys(self):
        b = DOC.elements_with_tag("b")[0]
        context = Context(b, 2, 3)
        assert context.key() == (b.uid, 2, 3)
        assert context.node_key() == b.uid

    def test_initial_context_defaults_to_root(self):
        context = initial_context(DOC)
        assert context.node is DOC.root
        other = DOC.elements_with_tag("c")[0]
        assert initial_context(DOC, other).node is other

    def test_contexts_are_hashable_values(self):
        b = DOC.elements_with_tag("b")[0]
        assert Context(b, 1, 2) == Context(b, 1, 2)
        assert Context(b, 1, 2) != Context(b, 2, 2)
        assert len({Context(b, 1, 2), Context(b, 1, 2)}) == 1


class TestEnvironment:
    def test_tick_accumulates(self):
        environment = Environment(DOC)
        environment.tick()
        environment.tick(4)
        assert environment.operations == 5

    def test_variable_lookup(self):
        environment = Environment(DOC, {"x": 1.0})
        assert environment.variable("x") == 1.0
        with pytest.raises(XPathEvaluationError):
            environment.variable("missing")


class TestBaseEvaluatorPlumbing:
    def test_bare_step_evaluates_as_single_step_path(self):
        evaluator = ContextValueTableEvaluator(DOC)
        bare = step("descendant", "c")
        nodes = evaluator.evaluate_nodes(bare, Context(DOC.root))
        assert [node.tag for node in nodes] == ["c"]

    def test_string_queries_are_parsed(self):
        evaluator = ContextValueTableEvaluator(DOC)
        assert evaluator.evaluate("count(//b)") == 2.0

    def test_pre_parsed_queries_are_accepted(self):
        evaluator = ContextValueTableEvaluator(DOC)
        assert len(evaluator.evaluate_nodes(parse("//b"))) == 2

    def test_path_expr_requires_node_set_start(self):
        evaluator = ContextValueTableEvaluator(DOC)
        with pytest.raises(XPathTypeError):
            evaluator.evaluate("string(//b)/child::c")

    def test_filter_expr_requires_node_set(self):
        evaluator = ContextValueTableEvaluator(DOC)
        with pytest.raises(XPathTypeError):
            evaluator.evaluate("(1 + 2)[1]")

    def test_operations_counter_monotone(self):
        evaluator = ContextValueTableEvaluator(DOC)
        evaluator.evaluate("//b")
        first = evaluator.operations
        evaluator.evaluate("//c")
        assert evaluator.operations > first
