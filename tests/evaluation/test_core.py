"""Unit tests for the linear-time Core XPath evaluator."""

import pytest

from repro.errors import FragmentViolationError
from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator
from repro.xmlmodel.generators import complete_tree_document
from repro.xmlmodel.parser import parse_xml

DOC = parse_xml(
    """
    <site>
      <a id="1"><b><c/></b><b/></a>
      <a id="2"><d/><b><c/><c/></b></a>
      <a id="3"><e><b/></e></a>
    </site>
    """
)


def ids(nodes):
    return [node.get_attribute("id") or node.tag for node in nodes]


class TestMainPaths:
    def test_absolute_path(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("/child::site/child::a")
        assert ids(nodes) == ["1", "2", "3"]

    def test_descendant_or_self_abbreviation(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("//b")
        assert len(nodes) == 4

    def test_union(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("//d | //e")
        assert [n.tag for n in nodes] == ["d", "e"]

    def test_relative_with_context_nodes(self):
        a_nodes = DOC.elements_with_tag("a")
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("child::b", context_nodes=a_nodes[:2])
        assert len(nodes) == 3

    def test_all_navigational_axes_accepted(self):
        evaluator = CoreXPathEvaluator(DOC)
        for axis in (
            "self",
            "child",
            "parent",
            "descendant",
            "descendant-or-self",
            "ancestor",
            "ancestor-or-self",
            "following",
            "following-sibling",
            "preceding",
            "preceding-sibling",
        ):
            evaluator.evaluate_nodes(f"//c/{axis}::*")

    def test_empty_frontier_short_circuits(self):
        evaluator = CoreXPathEvaluator(DOC)
        assert evaluator.evaluate_nodes("//zzz/child::a/child::b") == []


class TestConditions:
    def test_condition_path(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("//a[child::b[child::c]]")
        assert ids(nodes) == ["1", "2"]

    def test_negation(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("//a[not(descendant::c)]")
        assert ids(nodes) == ["3"]

    def test_conjunction_and_disjunction(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes(
            "//a[child::d or child::e][not(child::d and child::e)]"
        )
        assert ids(nodes) == ["2", "3"]

    def test_absolute_condition_path(self):
        everything = CoreXPathEvaluator(DOC).evaluate_nodes("//a[/child::site]")
        assert ids(everything) == ["1", "2", "3"]
        nothing = CoreXPathEvaluator(DOC).evaluate_nodes("//a[/child::zzz]")
        assert nothing == []

    def test_condition_with_reverse_axes(self):
        nodes = CoreXPathEvaluator(DOC).evaluate_nodes("//b[ancestor::a[following-sibling::a]]")
        assert len(nodes) == 3  # the b nodes under a1/a2, not the one under a3

    def test_condition_nodes_api(self):
        evaluator = CoreXPathEvaluator(DOC)
        holds_at = evaluator.condition_nodes("child::c")
        assert [n.tag for n in holds_at] == ["b", "b"]

    def test_true_false_and_boolean_wrappers(self):
        evaluator = CoreXPathEvaluator(DOC)
        assert len(evaluator.evaluate_nodes("//a[true()]")) == 3
        assert evaluator.evaluate_nodes("//a[false()]") == []
        assert ids(evaluator.evaluate_nodes("//a[boolean(child::d)]")) == ["2"]


class TestAgreementWithCvt:
    QUERIES = [
        "/descendant::b[child::c]",
        "//a[not(child::b)] | //e",
        "//c/ancestor::*[parent::site]",
        "//b[preceding-sibling::b or following-sibling::b]",
        "//*[child::b and not(child::d)]",
        "/child::site/child::a/descendant-or-self::*[self::c or self::e]",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_answers_as_cvt(self, query):
        core = CoreXPathEvaluator(DOC).evaluate_nodes(query)
        cvt = ContextValueTableEvaluator(DOC).evaluate_nodes(query)
        assert [n.order for n in core] == [n.order for n in cvt]


class TestFragmentEnforcement:
    @pytest.mark.parametrize(
        "query",
        [
            "//a[position() = 1]",
            "count(//a)",
            "//a[@id = '1']",
            "//a[child::b = 'x']",
            "1 + 2",
        ],
    )
    def test_non_core_queries_rejected(self, query):
        with pytest.raises(FragmentViolationError):
            CoreXPathEvaluator(DOC).evaluate_nodes(query)

    def test_attribute_axis_rejected(self):
        with pytest.raises(FragmentViolationError):
            CoreXPathEvaluator(DOC).evaluate_nodes("//a/attribute::id")


class TestLinearScaling:
    def test_axis_applications_linear_in_query(self):
        document = complete_tree_document(2, 6)
        counts = []
        for steps in (2, 4, 8):
            query = "/descendant-or-self::a" + "/descendant-or-self::*[child::b]" * steps
            evaluator = CoreXPathEvaluator(document)
            evaluator.evaluate_nodes(query)
            counts.append(evaluator.axis_applications)
        # Doubling the number of extra steps doubles the extra axis work.
        assert counts[2] - counts[1] == 2 * (counts[1] - counts[0])
        assert counts[2] > counts[1] > counts[0]
