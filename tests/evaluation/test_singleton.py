"""Unit tests for the Singleton-Success checker (Lemma 5.4, Table 1)."""

import pytest

from repro.errors import FragmentViolationError
from repro.evaluation import Context, ContextValueTableEvaluator, SingletonSuccessChecker
from repro.xmlmodel.parser import parse_xml

DOC = parse_xml(
    """
    <site>
      <a id="1"><b><c/></b><b/></a>
      <a id="2"><d>7</d><b><c/><c/></b></a>
      <a id="3"/>
    </site>
    """
)


def ids(nodes):
    return [node.get_attribute("id") or getattr(node, "tag", node.node_type.value) for node in nodes]


class TestSingletonSuccessDecision:
    def test_node_membership_check(self):
        checker = SingletonSuccessChecker(DOC)
        a_nodes = DOC.elements_with_tag("a")
        query = "/child::site/child::a[child::b]"
        assert checker.singleton_success(query, a_nodes[0])
        assert checker.singleton_success(query, a_nodes[1])
        assert not checker.singleton_success(query, a_nodes[2])

    def test_boolean_query(self):
        checker = SingletonSuccessChecker(DOC)
        assert checker.evaluate_boolean("child::site and descendant::c") is True
        assert checker.evaluate_boolean("child::zzz or descendant::zzz") is False

    def test_number_query(self):
        checker = SingletonSuccessChecker(DOC)
        assert checker.evaluate_number("2 + 3 * 4") == 14.0
        assert checker.singleton_success("2 + 3 * 4", 14.0)
        assert not checker.singleton_success("2 + 3 * 4", 15.0)

    def test_positional_rows_of_table1(self):
        checker = SingletonSuccessChecker(DOC)
        # position() and last() relative to the witness set of a step.
        assert checker.evaluate_boolean("boolean(/child::site/child::a[position() = last() - 1])")
        nodes = checker.evaluate_nodes("/child::site/child::a[position() + 1 = last()]")
        assert ids(nodes) == ["2"]

    def test_comparison_with_node_set_operand(self):
        checker = SingletonSuccessChecker(DOC)
        assert checker.evaluate_boolean("descendant::d = 7") is True
        assert checker.evaluate_boolean("descendant::d = 8") is False
        assert checker.evaluate_boolean("descendant::d < 10") is True

    def test_union_of_paths(self):
        checker = SingletonSuccessChecker(DOC)
        nodes = checker.evaluate_nodes("descendant::d | descendant::c")
        assert [n.tag for n in nodes] == ["c", "d", "c", "c"]

    def test_attribute_axis_supported(self):
        checker = SingletonSuccessChecker(DOC)
        nodes = checker.evaluate_nodes("descendant::a/attribute::id")
        assert [n.value for n in nodes] == ["1", "2", "3"]

    def test_explicit_context(self):
        checker = SingletonSuccessChecker(DOC)
        a2 = DOC.elements_with_tag("a")[1]
        nodes = checker.evaluate_nodes("child::b/child::c", Context(a2))
        assert len(nodes) == 2


class TestAgreementWithCvt:
    QUERIES = [
        "/descendant-or-self::node()/child::b[child::c]",
        "/child::site/child::a[child::b and descendant::c]",
        "/child::site/child::a[child::d or child::b]",
        "/descendant::b[position() = last()]",
        "/descendant::a[descendant::d = 7]",
        "/descendant::c/ancestor::a",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_node_sets_as_cvt(self, query):
        checker = SingletonSuccessChecker(DOC)
        cvt = ContextValueTableEvaluator(DOC)
        assert [n.order for n in checker.evaluate_nodes(query)] == [
            n.order for n in cvt.evaluate_nodes(query)
        ]


class TestBoundedNegation:
    def test_negation_rejected_by_default(self):
        checker = SingletonSuccessChecker(DOC)
        with pytest.raises(FragmentViolationError):
            checker.evaluate_nodes("//a[not(child::b)]")

    def test_negation_allowed_with_bound(self):
        checker = SingletonSuccessChecker(DOC, max_negation_depth=2)
        nodes = checker.evaluate_nodes("/descendant::a[not(child::b)]")
        assert ids(nodes) == ["3"]

    def test_nested_negation_within_bound(self):
        checker = SingletonSuccessChecker(DOC, max_negation_depth=2)
        nodes = checker.evaluate_nodes("/descendant::a[not(child::b[not(child::c)])]")
        assert ids(nodes) == ["2", "3"]

    def test_negation_depth_exceeding_bound_rejected(self):
        checker = SingletonSuccessChecker(DOC, max_negation_depth=1)
        with pytest.raises(FragmentViolationError):
            checker.evaluate_nodes("/descendant::a[not(child::b[not(child::c)])]")

    def test_agreement_with_cvt_under_negation(self):
        checker = SingletonSuccessChecker(DOC, max_negation_depth=3)
        cvt = ContextValueTableEvaluator(DOC)
        for query in (
            "/descendant::a[not(descendant::c)]",
            "/descendant::b[not(preceding-sibling::b)]",
        ):
            assert [n.order for n in checker.evaluate_nodes(query)] == [
                n.order for n in cvt.evaluate_nodes(query)
            ]


class TestFragmentEnforcement:
    def test_iterated_predicates_rejected(self):
        checker = SingletonSuccessChecker(DOC)
        with pytest.raises(FragmentViolationError):
            checker.evaluate_nodes("/descendant::a[child::b][child::d]")

    def test_forbidden_functions_rejected(self):
        checker = SingletonSuccessChecker(DOC)
        with pytest.raises(FragmentViolationError):
            checker.evaluate_boolean("count(//a) > 2")

    def test_boolean_comparison_operand_rejected(self):
        checker = SingletonSuccessChecker(DOC)
        with pytest.raises(FragmentViolationError):
            checker.evaluate_boolean("true() = (child::a and child::b)")

    def test_checks_counter_increases(self):
        checker = SingletonSuccessChecker(DOC)
        checker.evaluate_nodes("/descendant::b[child::c]")
        assert checker.checks > 0
