"""Unit tests for XPath value types, conversions, comparisons and arithmetic."""

import math

import pytest

from repro.errors import XPathTypeError
from repro.evaluation.values import (
    NodeSet,
    arithmetic,
    compare,
    format_number,
    negate,
    to_boolean,
    to_number,
    to_string,
    xpath_round,
)
from repro.xmlmodel.document import build_tree


@pytest.fixture
def document():
    return build_tree(("root", [("a", ["1"]), ("a", ["2"]), ("b", ["two"]), ("empty",)]))


def node_set(document, tag):
    return NodeSet(document.elements_with_tag(tag))


class TestNodeSet:
    def test_document_order_and_dedup(self, document):
        elements = document.elements_with_tag("a")
        ns = NodeSet(list(reversed(elements)) + elements)
        assert ns.nodes == elements
        assert len(ns) == 2

    def test_containment_and_truthiness(self, document):
        ns = node_set(document, "a")
        assert document.elements_with_tag("a")[0] in ns
        assert document.elements_with_tag("b")[0] not in ns
        assert bool(ns)
        assert not bool(NodeSet())

    def test_union(self, document):
        union = node_set(document, "a").union(node_set(document, "b"))
        assert [n.tag for n in union] == ["a", "a", "b"]

    def test_first_and_string_values(self, document):
        ns = node_set(document, "a")
        assert ns.first().string_value() == "1"
        assert ns.string_values() == ["1", "2"]
        assert NodeSet().first() is None


class TestConversions:
    def test_to_boolean(self, document):
        assert to_boolean(True) is True
        assert to_boolean(1.5) is True
        assert to_boolean(0.0) is False
        assert to_boolean(float("nan")) is False
        assert to_boolean("x") is True
        assert to_boolean("") is False
        assert to_boolean(node_set(document, "a")) is True
        assert to_boolean(NodeSet()) is False

    def test_to_number(self, document):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0
        assert to_number("  3.5 ") == 3.5
        assert math.isnan(to_number("abc"))
        assert math.isnan(to_number(""))
        assert to_number(node_set(document, "a")) == 1.0  # first node's string-value
        assert math.isnan(to_number(node_set(document, "b")))

    def test_to_string(self, document):
        assert to_string(True) == "true"
        assert to_string(False) == "false"
        assert to_string(3.0) == "3"
        assert to_string(3.25) == "3.25"
        assert to_string(float("nan")) == "NaN"
        assert to_string(float("inf")) == "Infinity"
        assert to_string(float("-inf")) == "-Infinity"
        assert to_string(node_set(document, "a")) == "1"
        assert to_string(NodeSet()) == ""

    def test_format_number_integers(self):
        assert format_number(-0.0) == "0"
        assert format_number(100.0) == "100"

    def test_invalid_conversion_raises(self):
        with pytest.raises(XPathTypeError):
            to_boolean(object())  # type: ignore[arg-type]


class TestComparisons:
    def test_scalar_equality_type_promotion(self):
        assert compare("=", 1.0, True)
        assert compare("=", "1", 1.0)
        assert compare("!=", "a", "b")
        assert not compare("=", "a", "b")
        assert compare("=", True, "nonempty")

    def test_scalar_relational_converts_to_number(self):
        assert compare("<", "2", "10")  # numeric, not lexicographic
        assert compare(">=", 3.0, "3")
        assert not compare("<", "abc", 1.0)  # NaN comparisons are false

    def test_node_set_vs_number_existential(self, document):
        ns = node_set(document, "a")  # string-values "1", "2"
        assert compare("=", ns, 2.0)
        assert compare("!=", ns, 2.0)  # some node differs too
        assert compare(">", ns, 1.0)
        assert not compare(">", ns, 5.0)
        assert compare("<", 1.0, ns)

    def test_node_set_vs_string(self, document):
        assert compare("=", node_set(document, "b"), "two")
        assert not compare("=", node_set(document, "b"), "three")

    def test_node_set_vs_boolean(self, document):
        assert compare("=", node_set(document, "a"), True)
        assert compare("=", NodeSet(), False)
        assert not compare("=", NodeSet(), True)

    def test_two_node_sets(self, document):
        a_nodes = node_set(document, "a")
        b_nodes = node_set(document, "b")
        empty = node_set(document, "empty")
        assert compare("=", a_nodes, a_nodes)
        assert not compare("=", a_nodes, b_nodes)  # no common string-value
        assert compare("!=", a_nodes, a_nodes)  # "1" != "2" existentially
        assert not compare("=", a_nodes, empty)  # no shared string-value
        assert not compare("<", a_nodes, b_nodes)  # "two" is NaN numerically

    def test_empty_node_set_never_compares_true_numerically(self, document):
        assert not compare("=", NodeSet(), 0.0)
        assert not compare("<", NodeSet(), 100.0)

    def test_unknown_operator(self):
        with pytest.raises(XPathTypeError):
            compare("~", 1.0, 2.0)


class TestArithmetic:
    def test_basic_operations(self):
        assert arithmetic("+", 1.0, 2.0) == 3.0
        assert arithmetic("-", "5", 2.0) == 3.0
        assert arithmetic("*", 3.0, True) == 3.0
        assert arithmetic("div", 7.0, 2.0) == 3.5

    def test_mod_follows_sign_of_dividend(self):
        assert arithmetic("mod", 5.0, 2.0) == 1.0
        assert arithmetic("mod", -5.0, 2.0) == -1.0
        assert arithmetic("mod", 5.0, -2.0) == 1.0
        assert arithmetic("mod", 1.5, 0.5) == 0.0

    def test_division_by_zero(self):
        assert arithmetic("div", 1.0, 0.0) == math.inf
        assert arithmetic("div", -1.0, 0.0) == -math.inf
        assert math.isnan(arithmetic("div", 0.0, 0.0))
        assert math.isnan(arithmetic("mod", 1.0, 0.0))

    def test_nan_propagation(self):
        assert math.isnan(arithmetic("+", float("nan"), 1.0))
        assert math.isnan(arithmetic("*", "abc", 2.0))

    def test_negate(self):
        assert negate(3.0) == -3.0
        assert negate("4") == -4.0

    def test_unknown_operator(self):
        with pytest.raises(XPathTypeError):
            arithmetic("**", 1.0, 2.0)


class TestRounding:
    def test_round_half_towards_positive_infinity(self):
        assert xpath_round(2.5) == 3.0
        assert xpath_round(-2.5) == -2.0
        assert xpath_round(2.4) == 2.0

    def test_round_preserves_special_values(self):
        assert math.isnan(xpath_round(float("nan")))
        assert xpath_round(math.inf) == math.inf
