"""Unit and edge-case tests for the id-native Core XPath evaluator.

The differential properties live in
``tests/properties/test_property_idnative_core.py``; this module pins the
corners the issue calls out explicitly — empty frontiers, root-only
documents, and single-tag documents whose frontiers are dense enough to
ride the bitmask path — plus the id-level API surface.
"""

import pytest

from repro.errors import FragmentViolationError
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.core_nodeset import NodeSetCoreXPathEvaluator
from repro.xmlmodel import chain_document, parse_xml, wide_document
from repro.xmlmodel.idset import DENSITY_FACTOR, IdSet


class TestEmptyFrontier:
    def test_no_match_returns_empty_list(self):
        document = parse_xml("<a><b/></a>")
        assert CoreXPathEvaluator(document).evaluate_nodes("//zzz") == []

    def test_empty_frontier_short_circuits_later_steps(self):
        document = parse_xml("<a><b/></a>")
        evaluator = CoreXPathEvaluator(document)
        assert evaluator.evaluate_nodes("//zzz/child::b/child::b") == []
        # Only the steps up to the empty frontier are charged: the
        # descendant-or-self step of the // abbreviation plus child::zzz,
        # never the two child::b steps.
        assert evaluator.axis_applications == 2

    def test_empty_context_ids(self):
        document = parse_xml("<a><b/></a>")
        assert CoreXPathEvaluator(document).evaluate_ids("child::b", []) == []

    def test_condition_against_empty_set(self):
        document = parse_xml("<a><b/></a>")
        nodes = CoreXPathEvaluator(document).evaluate_nodes("//b[child::zzz]")
        assert nodes == []


class TestRootOnlyDocument:
    def test_single_element_document(self):
        document = parse_xml("<a/>")
        evaluator = CoreXPathEvaluator(document)
        assert [n.tag for n in evaluator.evaluate_nodes("/child::a")] == ["a"]
        assert evaluator.evaluate_nodes("//a/child::a") == []
        assert evaluator.evaluate_nodes("/descendant-or-self::node()") == list(
            document.nodes
        )

    def test_negation_over_tiny_universe(self):
        document = parse_xml("<a/>")
        nodes = CoreXPathEvaluator(document).evaluate_nodes("//a[not(child::a)]")
        assert [n.tag for n in nodes] == ["a"]


class TestDenseSingleTagDocuments:
    """Single-tag documents make every frontier a large fraction of the
    universe, forcing the IdSet algebra onto the bitmask path."""

    def test_wide_single_tag(self):
        document = wide_document(4 * DENSITY_FACTOR, tag="a")
        idnative = CoreXPathEvaluator(document)
        nodeset = NodeSetCoreXPathEvaluator(document)
        for query in ("//a", "//a[not(child::a)]", "//a[following-sibling::a]"):
            assert idnative.evaluate_nodes(query) == nodeset.evaluate_nodes(query)

    def test_deep_single_tag(self):
        document = chain_document(4 * DENSITY_FACTOR)
        idnative = CoreXPathEvaluator(document)
        nodeset = NodeSetCoreXPathEvaluator(document)
        for query in ("//a[child::a]", "//a/ancestor::a", "//a[not(descendant::a)]"):
            assert idnative.evaluate_nodes(query) == nodeset.evaluate_nodes(query)

    def test_full_universe_frontier_is_dense(self):
        document = wide_document(4 * DENSITY_FACTOR, tag="a")
        index = document.index
        everything = index.axis_idset(
            "descendant-or-self", IdSet.from_sorted([0], index.size)
        )
        assert len(everything) == index.size
        assert everything.is_dense


class TestIdLevelApi:
    def test_evaluate_ids_are_preorder_ranks(self):
        document = parse_xml("<a><b/><c><b/></c></a>")
        assert CoreXPathEvaluator(document).evaluate_ids("//b") == [2, 4]

    def test_context_ids_relative_query(self):
        document = parse_xml("<a><b><c/></b><b/></a>")
        evaluator = CoreXPathEvaluator(document)
        b_ids = evaluator.evaluate_ids("//b")
        assert evaluator.evaluate_ids("child::c", context_ids=b_ids) == [3]

    def test_axis_applications_counter_matches_nodeset(self):
        document = parse_xml("<a><b><c/></b><b/></a>")
        query = "//b[child::c and not(child::d)]/descendant::c"
        idnative = CoreXPathEvaluator(document)
        nodeset = NodeSetCoreXPathEvaluator(document)
        idnative.evaluate_nodes(query)
        nodeset.evaluate_nodes(query)
        assert idnative.axis_applications == nodeset.axis_applications


class TestFallbacks:
    def test_attribute_context_uses_nodeset_baseline(self):
        document = parse_xml('<a x="1"><b/></a>')
        attribute = document.attributes[0]
        evaluator = CoreXPathEvaluator(document)
        nodes = evaluator.evaluate_nodes("parent::a", [attribute])
        assert [n.tag for n in nodes] == ["a"]

    def test_out_of_range_context_ids_rejected(self):
        from repro.errors import XPathEvaluationError

        document = parse_xml("<a><b/></a>")
        evaluator = CoreXPathEvaluator(document)
        with pytest.raises(XPathEvaluationError):
            evaluator.evaluate_ids("child::b", context_ids=[999])
        with pytest.raises(XPathEvaluationError):
            evaluator.evaluate_ids("child::b", context_ids=[-2])

    def test_non_core_query_still_rejected(self):
        document = parse_xml("<a><b/></a>")
        with pytest.raises(FragmentViolationError):
            CoreXPathEvaluator(document).evaluate_nodes("//b[position() = 1]")
        with pytest.raises(FragmentViolationError):
            CoreXPathEvaluator(document).evaluate_ids("count(//b)")
