"""Differential properties: kernel backends are observationally identical.

For random documents and random Core XPath queries, the id-native
evaluator must return the same ids under the ``pure`` and ``vectorized``
backends, and both must agree with the node-set baseline
(:class:`NodeSetCoreXPathEvaluator`), which never touches the kernel
backends at all.  A second property drives the raw kernel surface
(axis application and IdSet algebra) on random id subsets.
"""

import pytest
from hypothesis import given, settings

from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.core_nodeset import NodeSetCoreXPathEvaluator
from repro.xmlmodel.idset import IdSet
from repro.xmlmodel.kernels import available_backends, use_backend

from tests.properties.strategies import (
    core_xpath_queries,
    documents,
    documents_with_node_subsets,
)

pytestmark = pytest.mark.skipif(
    "vectorized" not in available_backends(),
    reason="vectorized backend needs numpy",
)


class TestQueriesAgreeAcrossBackends:
    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=60, deadline=None)
    def test_evaluate_ids_identical(self, document, query):
        with use_backend("pure"):
            pure_ids = CoreXPathEvaluator(document).evaluate_ids(query)
        with use_backend("vectorized"):
            vectorized_ids = CoreXPathEvaluator(document).evaluate_ids(query)
        assert pure_ids == vectorized_ids
        assert all(isinstance(i, int) for i in vectorized_ids)

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_both_agree_with_nodeset_baseline(self, document, query):
        baseline = NodeSetCoreXPathEvaluator(document).evaluate_nodes(query)
        expected = [node.order for node in baseline]
        for backend in ("pure", "vectorized"):
            with use_backend(backend):
                nodes = CoreXPathEvaluator(document).evaluate_nodes(query)
            assert [node.order for node in nodes] == expected, backend

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_condition_sets_identical(self, document, query):
        with use_backend("pure"):
            pure_nodes = CoreXPathEvaluator(document).condition_nodes(query)
        with use_backend("vectorized"):
            vectorized_nodes = CoreXPathEvaluator(document).condition_nodes(query)
        assert pure_nodes == vectorized_nodes


_AXES = (
    "child",
    "parent",
    "descendant",
    "descendant-or-self",
    "ancestor",
    "ancestor-or-self",
    "following",
    "following-sibling",
    "preceding",
    "preceding-sibling",
)


class TestKernelSurfaceAgreesAcrossBackends:
    @given(documents_with_node_subsets(max_nodes=30))
    @settings(max_examples=50, deadline=None)
    def test_axis_idset_identical(self, document_and_subset):
        document, subset = document_and_subset
        index = document.index
        ids = sorted(index.id_of(node) for node in subset)
        frontier = IdSet.from_sorted(ids, index.size)
        for axis in _AXES:
            with use_backend("pure"):
                pure_result = index.axis_idset(axis, frontier).tolist()
            with use_backend("vectorized"):
                vectorized_result = index.axis_idset(axis, frontier).tolist()
            assert pure_result == vectorized_result, axis

    @given(documents_with_node_subsets(max_nodes=30))
    @settings(max_examples=50, deadline=None)
    def test_idset_algebra_identical(self, document_and_subset):
        document, subset = document_and_subset
        index = document.index
        size = index.size
        members = sorted(index.id_of(node) for node in subset)
        results = {}
        for backend in ("pure", "vectorized"):
            with use_backend(backend):
                a = IdSet.from_sorted(list(members), size)
                b = index.test_idset("*")
                results[backend] = (
                    (a & b).tolist(),
                    (a | b).tolist(),
                    (a - b).tolist(),
                    a.complement().tolist(),
                    IdSet.from_bits(a.bits, size).tolist(),
                )
        assert results["pure"] == results["vectorized"]
