"""Property-based tests: the hardness reductions are correct on random instances."""

from hypothesis import given, settings

from repro.evaluation import query_selects
from repro.graphs import is_reachable
from repro.reductions import (
    reduce_circuit_to_core_xpath,
    reduce_circuit_to_pwf_iterated,
    reduce_reachability_to_pf,
    reduce_sac1_to_positive_core_xpath,
)

from tests.properties.strategies import (
    circuits_with_assignments,
    graphs_with_endpoints,
    sac1_circuits_with_assignments,
)


class TestTheorem32Property:
    @given(circuits_with_assignments())
    @settings(max_examples=25, deadline=None)
    def test_query_nonempty_iff_circuit_true(self, instance):
        circuit, assignment = instance
        reduction = reduce_circuit_to_core_xpath(circuit, assignment)
        assert (
            query_selects(reduction.query, reduction.document, engine="core")
            == circuit.value(assignment)
        )

    @given(circuits_with_assignments())
    @settings(max_examples=15, deadline=None)
    def test_corollary_33_variant_agrees(self, instance):
        circuit, assignment = instance
        reduction = reduce_circuit_to_core_xpath(circuit, assignment, corollary_3_3=True)
        assert (
            query_selects(reduction.query, reduction.document, engine="core")
            == circuit.value(assignment)
        )


class TestTheorem42Property:
    @given(sac1_circuits_with_assignments())
    @settings(max_examples=20, deadline=None)
    def test_query_nonempty_iff_sac1_circuit_true(self, instance):
        circuit, assignment = instance
        reduction = reduce_sac1_to_positive_core_xpath(circuit, assignment)
        assert (
            query_selects(reduction.query, reduction.document, engine="core")
            == circuit.value(assignment)
        )


class TestTheorem57Property:
    @given(circuits_with_assignments())
    @settings(max_examples=15, deadline=None)
    def test_query_nonempty_iff_circuit_true(self, instance):
        circuit, assignment = instance
        reduction = reduce_circuit_to_pwf_iterated(circuit, assignment)
        assert (
            query_selects(reduction.query, reduction.document, engine="cvt")
            == circuit.value(assignment)
        )


class TestTheorem43Property:
    @given(graphs_with_endpoints())
    @settings(max_examples=25, deadline=None)
    def test_query_nonempty_iff_reachable(self, instance):
        graph, source, target = instance
        reduction = reduce_reachability_to_pf(graph, source, target)
        assert (
            query_selects(reduction.query, reduction.document, engine="core")
            == is_reachable(graph, source, target)
        )
