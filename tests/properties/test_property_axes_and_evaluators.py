"""Property-based tests for axis algebra and cross-evaluator agreement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import ContextValueTableEvaluator, CoreXPathEvaluator, NaiveEvaluator
from repro.evaluation.setaxes import NAVIGATIONAL_AXES, apply_axis_set
from repro.fragments import is_core_xpath
from repro.xmlmodel.axes import axis_nodes, inverse_axis

from tests.properties.strategies import core_xpath_queries, documents


class TestAxisAlgebraProperties:
    @given(documents(max_nodes=30), st.sampled_from(sorted(NAVIGATIONAL_AXES)))
    @settings(max_examples=40, deadline=None)
    def test_set_axes_agree_with_per_node_axes(self, document, axis):
        subset = set(document.nodes[::3])
        expected = set()
        for node in subset:
            expected.update(axis_nodes(node, axis))
        assert apply_axis_set(document, axis, subset) == expected

    @given(documents(max_nodes=25), st.sampled_from(sorted(NAVIGATIONAL_AXES - {"self"})))
    @settings(max_examples=40, deadline=None)
    def test_inverse_axis_is_the_converse_relation(self, document, axis):
        inverse = inverse_axis(axis)
        for x in document.nodes:
            for y in axis_nodes(x, axis):
                assert x in axis_nodes(y, inverse)

    @given(documents(max_nodes=25))
    @settings(max_examples=30, deadline=None)
    def test_document_partition_property(self, document):
        # For every node: self, ancestors, descendants, preceding and
        # following partition the document (XPath data model invariant).
        for node in document.nodes:
            groups = [
                {node},
                set(axis_nodes(node, "ancestor")),
                set(axis_nodes(node, "descendant")),
                set(axis_nodes(node, "preceding")),
                set(axis_nodes(node, "following")),
            ]
            assert set().union(*groups) == set(document.nodes)
            assert sum(len(group) for group in groups) == len(document.nodes)


class TestEvaluatorAgreementProperties:
    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=50, deadline=None)
    def test_cvt_and_core_agree_on_core_xpath(self, document, query):
        assert is_core_xpath(query)
        cvt_result = ContextValueTableEvaluator(document).evaluate_nodes(query)
        core_result = CoreXPathEvaluator(document).evaluate_nodes(query)
        assert [n.order for n in cvt_result] == [n.order for n in core_result]

    @given(documents(max_nodes=18), core_xpath_queries(allow_negation=False))
    @settings(max_examples=30, deadline=None)
    def test_naive_agrees_on_positive_queries(self, document, query):
        cvt_result = ContextValueTableEvaluator(document).evaluate_nodes(query)
        naive_result = NaiveEvaluator(document).evaluate_nodes(query)
        assert [n.order for n in cvt_result] == [n.order for n in naive_result]

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=30, deadline=None)
    def test_results_are_sorted_and_unique(self, document, query):
        result = ContextValueTableEvaluator(document).evaluate_nodes(query)
        orders = [node.order for node in result]
        assert orders == sorted(orders)
        assert len(orders) == len(set(orders))

    @given(documents(max_nodes=20), core_xpath_queries(allow_negation=True))
    @settings(max_examples=30, deadline=None)
    def test_monotone_under_negation_free_weakening(self, document, query):
        # Dropping all predicates can only enlarge the answer set.
        from repro.xpath.ast import LocationPath, Step

        stripped = LocationPath(
            query.absolute,
            tuple(Step(step.axis, step.node_test, ()) for step in query.steps),
        )
        full = set(ContextValueTableEvaluator(document).evaluate_nodes(query))
        relaxed = set(ContextValueTableEvaluator(document).evaluate_nodes(stripped))
        assert full <= relaxed
