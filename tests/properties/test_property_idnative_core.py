"""Differential suite: id-native core ≡ node-set core ≡ naive.

The id-native :class:`CoreXPathEvaluator` must be observationally
identical to the PR-1 node-set implementation
(:class:`NodeSetCoreXPathEvaluator`) on every Core XPath query, and both
must match the literal functional-semantics :class:`NaiveEvaluator` on
the positive fragment (the naive evaluator is the semantic ground truth;
negation-free queries keep it fast enough to run under Hypothesis).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import NaiveEvaluator
from repro.evaluation.core import CoreXPathEvaluator
from repro.evaluation.core_nodeset import NodeSetCoreXPathEvaluator
from repro.xmlmodel.idset import DENSITY_FACTOR

from tests.properties.strategies import core_xpath_queries, documents


def _orders(nodes):
    return [node.order for node in nodes]


class TestIdNativeAgainstNodeSet:
    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=60, deadline=None)
    def test_same_result_from_root(self, document, query):
        idnative = CoreXPathEvaluator(document).evaluate_nodes(query)
        nodeset = NodeSetCoreXPathEvaluator(document).evaluate_nodes(query)
        assert _orders(idnative) == _orders(nodeset)

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_same_result_from_random_context(self, document, query):
        context = document.nodes[len(document.nodes) // 2 :: 2]
        idnative = CoreXPathEvaluator(document).evaluate_nodes(query, context)
        nodeset = NodeSetCoreXPathEvaluator(document).evaluate_nodes(query, context)
        assert _orders(idnative) == _orders(nodeset)

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_condition_sets_agree(self, document, query):
        idnative = CoreXPathEvaluator(document).condition_nodes(query)
        nodeset = NodeSetCoreXPathEvaluator(document).condition_nodes(query)
        assert _orders(idnative) == _orders(nodeset)

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_evaluate_ids_matches_node_orders(self, document, query):
        evaluator = CoreXPathEvaluator(document)
        ids = evaluator.evaluate_ids(query)
        nodes = evaluator.evaluate_nodes(query)
        assert ids == sorted(ids)
        assert document.index.ids_to_node_list(ids) == nodes


class TestIdNativeAgainstNaive:
    @given(documents(max_nodes=18), core_xpath_queries(allow_negation=False))
    @settings(max_examples=30, deadline=None)
    def test_naive_agrees_on_positive_queries(self, document, query):
        idnative = CoreXPathEvaluator(document).evaluate_nodes(query)
        naive = NaiveEvaluator(document).evaluate_nodes(query)
        assert _orders(idnative) == _orders(naive)


class TestDensityTransitions:
    @given(
        documents(max_nodes=DENSITY_FACTOR * 8),
        core_xpath_queries(allow_negation=True),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_agreement_survives_repeated_evaluation(self, document, query, repeats):
        # Repeated evaluation exercises the cached (bitmask-materialised)
        # condition sets against a fresh node-set evaluator every time.
        evaluator = CoreXPathEvaluator(document)
        expected = _orders(NodeSetCoreXPathEvaluator(document).evaluate_nodes(query))
        for _ in range(repeats):
            assert _orders(evaluator.evaluate_nodes(query)) == expected
