"""Property-based tests for the XPath front end (parser/unparser invariants)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xpath.parser import parse
from repro.xpath.unparse import unparse

from tests.properties.strategies import core_xpath_queries


class TestParserRoundTrip:
    @given(core_xpath_queries(allow_negation=True))
    @settings(max_examples=60, deadline=None)
    def test_unparse_then_parse_is_identity(self, query):
        assert parse(unparse(query)) == query

    @given(core_xpath_queries(allow_negation=False))
    @settings(max_examples=40, deadline=None)
    def test_unparse_is_stable_under_reparsing(self, query):
        text = unparse(query)
        assert unparse(parse(text)) == text

    @given(core_xpath_queries())
    @settings(max_examples=40, deadline=None)
    def test_size_is_positive_and_walk_consistent(self, query):
        assert query.size() == len(list(query.walk()))
        assert query.size() >= 1


class TestArithmeticExpressions:
    @given(
        st.recursive(
            st.integers(min_value=0, max_value=9).map(float),
            lambda children: st.tuples(
                st.sampled_from(["+", "-", "*"]), children, children
            ),
            max_leaves=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_expression_round_trip(self, tree):
        def render(node) -> str:
            if isinstance(node, float):
                return str(int(node))
            operator, left, right = node
            return f"({render(left)} {operator} {render(right)})"

        def value(node) -> float:
            if isinstance(node, float):
                return node
            operator, left, right = node
            table = {"+": lambda a, b: a + b, "-": lambda a, b: a - b, "*": lambda a, b: a * b}
            return table[operator](value(left), value(right))

        text = render(tree)
        expr = parse(text)
        assert parse(unparse(expr)) == expr
        from repro.evaluation import evaluate
        from repro.xmlmodel import build_tree

        assert evaluate(expr, build_tree(("r",))) == value(tree)
