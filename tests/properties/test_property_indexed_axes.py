"""Differential properties: DocumentIndex vs. the object-walk axis code.

The indexed axis machinery (interval arithmetic and array-chain sweeps in
:mod:`repro.xmlmodel.index`) must be observationally identical to the
object-walk implementations it accelerates — both the set-at-a-time form
used by the Core XPath evaluator and the per-node, axis-ordered form used
by the context-value-table and naive evaluators.  Hypothesis drives both
over random documents, random node subsets and every navigational axis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.setaxes import NAVIGATIONAL_AXES, _AXIS_SET_FUNCTIONS
from repro.xmlmodel import axis_nodes, axis_step, node_test_matches
from repro.xmlmodel.index import DocumentIndex
from tests.properties.strategies import TAGS, documents, documents_with_node_subsets

AXES = sorted(NAVIGATIONAL_AXES)
NODE_TESTS = sorted(TAGS) + ["*", "node()", "text()"]


class TestSetAtATimeAgreement:
    @settings(max_examples=60, deadline=None)
    @given(documents_with_node_subsets(), st.sampled_from(AXES))
    def test_indexed_set_matches_object_walk(self, document_and_nodes, axis):
        document, nodes = document_and_nodes
        indexed = document.index.axis_node_set(axis, nodes)
        walked = _AXIS_SET_FUNCTIONS[axis](document, nodes)
        assert indexed == walked

    @settings(max_examples=60, deadline=None)
    @given(documents_with_node_subsets(), st.sampled_from(AXES))
    def test_id_level_matches_node_level(self, document_and_nodes, axis):
        document, nodes = document_and_nodes
        index = document.index
        ids = index.nodes_to_ids(nodes)
        from_ids = index.ids_to_nodes(index.axis_id_set(axis, ids))
        assert from_ids == index.axis_node_set(axis, nodes)


class TestPerNodeAgreement:
    @settings(max_examples=60, deadline=None)
    @given(documents(), st.sampled_from(AXES))
    def test_axis_ids_match_axis_nodes_in_axis_order(self, document, axis):
        index = document.index
        for node in document.nodes:
            expected = axis_nodes(node, axis)
            actual = index.ids_to_node_list(index.axis_ids(index.id_of(node), axis))
            assert actual == expected, (axis, node)

    @settings(max_examples=40, deadline=None)
    @given(
        documents(),
        st.sampled_from(AXES),
        st.sampled_from(NODE_TESTS),
    )
    def test_step_ids_match_axis_step(self, document, axis, node_test):
        index = document.index
        for node in document.nodes:
            expected = axis_step(node, axis, node_test)
            actual = index.ids_to_node_list(
                index.step_ids(index.id_of(node), axis, node_test)
            )
            assert actual == expected, (axis, node_test, node)


class TestIndexStructure:
    @settings(max_examples=60, deadline=None)
    @given(documents())
    def test_intervals_characterise_descendants(self, document):
        index = document.index
        for i, node in enumerate(document.nodes):
            lo, hi = index.descendant_interval(i)
            expected = list(node.iter_descendants())
            assert index.ids_to_node_list(range(lo, hi)) == expected

    @settings(max_examples=60, deadline=None)
    @given(documents())
    def test_pre_post_plane(self, document):
        """descendant(x, y)  ⇔  pre[y] > pre[x] and post[y] < post[x]."""
        index = document.index
        n = index.size
        for x in range(n):
            lo, hi = index.descendant_interval(x)
            for y in range(n):
                in_plane = y > x and index.post[y] < index.post[x]
                assert in_plane == (lo <= y < hi)

    @settings(max_examples=60, deadline=None)
    @given(documents())
    def test_structure_arrays_match_object_links(self, document):
        index = document.index
        for i, node in enumerate(document.nodes):
            parent = node.parent
            assert index.parent[i] == (-1 if parent is None else index.id_of(parent))
            first = node.children[0] if node.children else None
            assert index.first_child[i] == (
                -1 if first is None else index.id_of(first)
            )
        for tag, ids in index.ids_by_tag.items():
            assert index.ids_to_node_list(ids) == document.elements_with_tag(tag)

    @settings(max_examples=30, deadline=None)
    @given(documents())
    def test_tag_partition_interval_query(self, document):
        index = document.index
        for tag in TAGS:
            for i in range(index.size):
                lo, hi = index.descendant_interval(i)
                expected = [
                    j
                    for j in range(lo, hi)
                    if node_test_matches(index.nodes[j], "descendant", tag)
                ]
                assert index.tag_ids_in_interval(tag, lo, hi) == expected
