"""Hypothesis strategies shared by the property-based tests.

Three families of generated objects:

* random documents (via the seeded generator, so shrinking stays effective);
* random Core XPath / positive Core XPath query ASTs;
* random monotone circuits with input assignments.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.circuits.generators import random_monotone_circuit, random_sac1_circuit
from repro.graphs.generators import random_digraph
from repro.xmlmodel.generators import random_document
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    NodeTest,
    Step,
    XPathExpr,
)

TAGS = ("a", "b", "c", "d")

FORWARD_AXES = ("child", "descendant", "descendant-or-self", "self", "following-sibling")
ALL_AXES = FORWARD_AXES + ("parent", "ancestor", "ancestor-or-self", "preceding-sibling", "following", "preceding")


@st.composite
def documents(draw, max_nodes: int = 40):
    """A random document built from a drawn seed and node budget."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    budget = draw(st.integers(min_value=2, max_value=max_nodes))
    return random_document(budget, seed=seed, tags=TAGS)


@st.composite
def documents_with_node_subsets(draw, max_nodes: int = 40):
    """A random document plus a random subset of its tree nodes.

    The subset drives the differential tests of the indexed set-at-a-time
    axis operations: any axis applied to any subset must agree with the
    object-walk implementation.
    """
    document = draw(documents(max_nodes))
    population = document.nodes
    positions = draw(
        st.sets(
            st.integers(min_value=0, max_value=len(population) - 1),
            max_size=len(population),
        )
    )
    return document, {population[i] for i in positions}


def node_tests():
    return st.sampled_from(TAGS + ("*",)).map(
        lambda value: NodeTest("name", value)
    )


@st.composite
def steps(draw, condition_strategy=None, max_predicates: int = 1):
    axis = draw(st.sampled_from(ALL_AXES))
    node_test = draw(node_tests())
    predicates = ()
    if condition_strategy is not None:
        predicate_count = draw(st.integers(min_value=0, max_value=max_predicates))
        predicates = tuple(draw(condition_strategy) for _ in range(predicate_count))
    return Step(axis, node_test, predicates)


@st.composite
def location_paths(draw, condition_strategy=None, max_steps: int = 3):
    absolute = draw(st.booleans())
    count = draw(st.integers(min_value=1, max_value=max_steps))
    drawn_steps = tuple(draw(steps(condition_strategy)) for _ in range(count))
    return LocationPath(absolute, drawn_steps)


def core_conditions(allow_negation: bool) -> st.SearchStrategy[XPathExpr]:
    """Conditions of the Core XPath grammar (and/or/not over location paths)."""

    def extend(children: st.SearchStrategy[XPathExpr]) -> st.SearchStrategy[XPathExpr]:
        binary = st.builds(
            BinaryOp, st.sampled_from(["and", "or"]), children, children
        )
        options = [binary]
        if allow_negation:
            options.append(
                children.map(lambda expr: FunctionCall("not", (expr,)))
            )
        return st.one_of(options)

    base = location_paths(None, max_steps=2)
    return st.recursive(base, extend, max_leaves=4)


def core_xpath_queries(allow_negation: bool = True) -> st.SearchStrategy[LocationPath]:
    """Random Core XPath queries (positive Core XPath when negation is off)."""
    return location_paths(core_conditions(allow_negation), max_steps=3)


@st.composite
def circuits_with_assignments(draw):
    """A random monotone circuit plus a random input assignment."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_inputs = draw(st.integers(min_value=2, max_value=5))
    num_gates = draw(st.integers(min_value=1, max_value=6))
    circuit = random_monotone_circuit(num_inputs, num_gates, seed=seed)
    assignment = {
        name: draw(st.booleans()) for name in circuit.input_names
    }
    return circuit, assignment


@st.composite
def sac1_circuits_with_assignments(draw):
    """A random semi-unbounded circuit plus an input assignment."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_inputs = draw(st.integers(min_value=2, max_value=6))
    circuit = random_sac1_circuit(num_inputs, seed=seed)
    assignment = {name: draw(st.booleans()) for name in circuit.input_names}
    return circuit, assignment


@st.composite
def graphs_with_endpoints(draw):
    """A random digraph plus a (source, target) pair."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_vertices = draw(st.integers(min_value=2, max_value=5))
    probability = draw(st.sampled_from([0.15, 0.3, 0.5]))
    graph = random_digraph(num_vertices, probability, seed=seed)
    source = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    target = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    return graph, source, target
