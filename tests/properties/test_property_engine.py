"""Property: the engine façade ≡ the legacy free-function surface.

:class:`~repro.engine.XPathEngine` adds a registry, evaluator pools, a
private plan cache and result wrapping on top of the planner — none of
which may change a single answer.  Random documents and Core XPath
queries check the whole sandwich: a fresh engine (pools and caches
exercised across examples via a shared instance) must agree with the
legacy ``evaluate(engine="auto")`` wrapper and with a freshly compiled,
uncached :class:`~repro.planner.plan.QueryPlan`.
"""

from hypothesis import given, settings

from repro.engine import XPathEngine
from repro.evaluation import evaluate
from repro.planner import plan_query

from tests.properties.strategies import core_xpath_queries, documents

#: One engine shared across every drawn example, so plan-cache reuse and
#: evaluator pooling are themselves under test (a fresh engine per example
#: would never hit its own caches).
SHARED_ENGINE = XPathEngine(max_documents=16)


def _normalise(value):
    return [node.order for node in value] if isinstance(value, list) else value


class TestEngineMatchesLegacySurface:
    @given(documents(max_nodes=30), core_xpath_queries(allow_negation=True))
    @settings(max_examples=60, deadline=None)
    def test_engine_equals_legacy_auto_and_fresh_plan(self, document, query):
        engine_value = SHARED_ENGINE.evaluate(query, document).value
        legacy_value = evaluate(query, document, engine="auto")
        fresh_value = plan_query(query).run(document)
        assert _normalise(engine_value) == _normalise(legacy_value)
        assert _normalise(engine_value) == _normalise(fresh_value)

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=40, deadline=None)
    def test_ids_mode_matches_node_mode(self, document, query):
        ids = SHARED_ENGINE.evaluate(query, document, ids=True).ids
        nodes = SHARED_ENGINE.evaluate(query, document).nodes
        assert document.index.ids_to_node_list(ids) == nodes

    @given(documents(max_nodes=25), core_xpath_queries(allow_negation=True))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_serial(self, document, query):
        [batched] = SHARED_ENGINE.evaluate_batch([(query, document)])
        serial = SHARED_ENGINE.evaluate(query, document)
        assert _normalise(batched.value) == _normalise(serial.value)
