"""The mypy --strict surface: config sanity always, the run when available.

The container the tier-1 suite runs in does not ship mypy; CI's ``lint``
job installs it, so there the second test actually executes the strict
pass over the three typed leaf modules.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def mypy_table():
    tomllib = pytest.importorskip("tomllib", reason="stdlib tomllib is 3.11+")
    with open(REPO / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)["tool"]["mypy"]


def test_mypy_config_names_the_typed_leaf_modules():
    table = mypy_table()
    assert table["strict"] is True
    assert sorted(table["files"]) == [
        "src/repro/serving/wire.py",
        "src/repro/store/codec.py",
        "src/repro/xmlmodel/idset.py",
    ]
    for relative in table["files"]:
        assert (REPO / relative).is_file(), relative


def test_mypy_strict_passes_over_the_typed_modules():
    pytest.importorskip("mypy", reason="mypy is installed in CI's lint job")
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"\n{result.stdout}\n{result.stderr}"
