"""True-positive / true-negative fixtures for every shipped checker."""

import textwrap

from repro.analysis import analyze_source, analyze_sources, default_config


def rules_fired(text, path, **kwargs):
    return [f.rule for f in analyze_source(text, path=path, **kwargs)]


ENGINE = "src/repro/engine/engine.py"
SERVER = "src/repro/serving/server.py"
WORKER = "src/repro/serving/worker.py"


class TestLockDiscipline:
    def test_unlocked_shared_write_fires(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def bump(self):
                    self._queries += 1
            """
        )
        [finding] = analyze_source(text, path=ENGINE)
        assert finding.rule == "lock-discipline"
        assert "self._queries" in finding.message
        assert "_stats_lock" in finding.message

    def test_locked_shared_write_is_clean(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def bump(self):
                    with self._stats_lock:
                        self._queries += 1
            """
        )
        assert rules_fired(text, ENGINE) == []

    def test_construction_is_exempt(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def __init__(self):
                    self._queries = 0
            """
        )
        assert rules_fired(text, ENGINE) == []

    def test_wrong_lock_still_fires(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def bump(self):
                    with self._plan_lock:
                        self._queries += 1
            """
        )
        assert rules_fired(text, ENGINE) == ["lock-discipline"]

    def test_out_of_scope_path_is_ignored(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def bump(self):
                    self._queries += 1
            """
        )
        assert rules_fired(text, "src/repro/xmlmodel/engineish.py") == []

    def test_hierarchy_inversion_fires(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def wrong(self):
                    with self._stats_lock:
                        with self._lock:
                            pass
            """
        )
        [finding] = analyze_source(text, path=ENGINE)
        assert finding.rule == "lock-discipline"
        assert "acquires '_lock' while holding '_stats_lock'" in finding.message

    def test_hierarchy_inward_nesting_is_clean(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def right(self):
                    with self._lock:
                        with self._stats_lock:
                            pass
            """
        )
        assert rules_fired(text, ENGINE) == []

    def test_single_statement_multi_item_order_is_checked(self):
        bad = "def f(self):\n    with self._stats_lock, self._lock:\n        pass\n"
        good = "def f(self):\n    with self._lock, self._stats_lock:\n        pass\n"
        assert rules_fired(bad, ENGINE) == ["lock-discipline"]
        assert rules_fired(good, ENGINE) == []

    def test_locks_are_not_held_across_a_def_boundary(self):
        text = textwrap.dedent(
            """
            class XPathEngine:
                def outer(self):
                    with self._stats_lock:
                        def inner(self):
                            with self._lock:
                                pass
            """
        )
        assert rules_fired(text, ENGINE) == []

    def test_receiver_scoped_attr_needs_the_receivers_lock(self):
        bad = "def retire(handle):\n    handle._retired = True\n"
        good = (
            "def retire(handle):\n"
            "    with handle._stripe:\n"
            "        handle._retired = True\n"
        )
        other = (
            "def retire(handle, rival):\n"
            "    with rival._stripe:\n"
            "        handle._retired = True\n"
        )
        assert rules_fired(bad, ENGINE) == ["lock-discipline"]
        assert rules_fired(good, ENGINE) == []
        # Holding the *wrong object's* stripe does not cover the write.
        assert rules_fired(other, ENGINE) == ["lock-discipline"]


WIRE_FIXTURE = textwrap.dedent(
    """
    MSG_A = 1
    MSG_B = 2

    def encode_a(seq):
        return bytes([MSG_A, seq])
    """
)


def wire_config(**exempt):
    return default_config().with_overrides(
        wire_dispatch_exempt={
            WORKER.removeprefix("src/"): frozenset(exempt.get("worker", ())),
        }
    )


class TestWireExhaustive:
    def run(self, worker_text, config):
        return analyze_sources(
            {"src/repro/serving/wire.py": WIRE_FIXTURE, WORKER: worker_text},
            rules=["wire-exhaustive"],
            config=config,
        )

    def test_all_constants_touched_is_clean(self):
        worker = textwrap.dedent(
            """
            from repro.serving import wire

            def dispatch(message):
                if message.msg_type == wire.MSG_A:
                    return
                if message.msg_type == wire.MSG_B:
                    return
            """
        )
        assert self.run(worker, wire_config()) == []

    def test_missing_handler_fires(self):
        worker = textwrap.dedent(
            """
            from repro.serving import wire

            def dispatch(message):
                if message.msg_type == wire.MSG_A:
                    return
            """
        )
        [finding] = self.run(worker, wire_config())
        assert finding.rule == "wire-exhaustive"
        assert "'MSG_B'" in finding.message
        assert finding.path == WORKER

    def test_producing_via_encoder_counts_as_touching(self):
        worker = textwrap.dedent(
            """
            from repro.serving import wire

            def dispatch(message, connection):
                if message.msg_type == wire.MSG_B:
                    connection.send_bytes(wire.encode_a(message.seq))
            """
        )
        assert self.run(worker, wire_config()) == []

    def test_spec_exemption_covers_a_constant(self):
        worker = textwrap.dedent(
            """
            from repro.serving import wire

            def dispatch(message):
                if message.msg_type == wire.MSG_A:
                    return
            """
        )
        assert self.run(worker, wire_config(worker=("MSG_B",))) == []

    def test_exempting_an_unknown_constant_is_a_finding(self):
        worker = "from repro.serving import wire\nMSG_A\nMSG_B\n"
        [finding] = self.run(worker, wire_config(worker=("MSG_GHOST",)))
        assert "MSG_GHOST" in finding.message
        assert finding.path == "src/repro/serving/wire.py"


class TestAsyncBlocking:
    def test_blocking_call_in_async_body_fires(self):
        text = textwrap.dedent(
            """
            import time

            async def handle(reader, writer):
                time.sleep(0.1)
            """
        )
        [finding] = analyze_source(text, path=SERVER)
        assert finding.rule == "async-blocking"
        assert "time.sleep" in finding.message

    def test_awaited_sleep_is_clean(self):
        text = textwrap.dedent(
            """
            import asyncio

            async def handle(reader, writer):
                await asyncio.sleep(0.1)
            """
        )
        assert rules_fired(text, SERVER) == []

    def test_blocking_method_on_any_receiver_fires(self):
        text = textwrap.dedent(
            """
            async def handle(pool, batch):
                return pool.evaluate_batch(batch)
            """
        )
        [finding] = analyze_source(text, path=SERVER)
        assert "evaluate_batch" in finding.message

    def test_run_in_executor_arguments_are_sanctioned(self):
        text = textwrap.dedent(
            """
            async def handle(loop, pool, batch):
                return await loop.run_in_executor(
                    None, lambda: pool.evaluate_batch(batch)
                )
            """
        )
        assert rules_fired(text, SERVER) == []

    def test_nested_sync_def_runs_on_the_executor(self):
        text = textwrap.dedent(
            """
            async def handle(pool, batch):
                def work():
                    return pool.evaluate_batch(batch)
                return work
            """
        )
        assert rules_fired(text, SERVER) == []

    def test_sync_functions_are_out_of_scope(self):
        text = "import time\n\ndef handle():\n    time.sleep(0.1)\n"
        assert rules_fired(text, SERVER) == []

    def test_non_network_modules_are_out_of_scope(self):
        text = "import time\n\nasync def handle():\n    time.sleep(0.1)\n"
        assert rules_fired(text, WORKER) == []


class TestImmutability:
    def test_write_outside_hydration_path_fires(self):
        [finding] = analyze_source(
            "index.subtree_end = []\n", path="src/repro/evaluation/hot.py"
        )
        assert finding.rule == "immutability"
        assert "'.subtree_end'" in finding.message
        assert "repro/xmlmodel/index.py" in finding.message

    def test_hydration_module_may_write(self):
        assert rules_fired(
            "index.subtree_end = []\n", "src/repro/store/codec.py"
        ) == []

    def test_constructor_writes_are_construction(self):
        text = textwrap.dedent(
            """
            class Interner:
                def __init__(self):
                    self._ids = {}
            """
        )
        assert rules_fired(text, "src/repro/store/other.py") == []

    def test_non_constructor_method_write_fires(self):
        text = textwrap.dedent(
            """
            class Interner:
                def reset(self):
                    self._ids = {}
            """
        )
        assert rules_fired(text, "src/repro/store/other.py") == ["immutability"]

    def test_deletion_counts_as_a_write(self):
        [finding] = analyze_source(
            "del idset._bits\n", path="src/repro/evaluation/hot.py"
        )
        assert finding.message.startswith("deletes frozen attribute")

    def test_unregistered_attributes_are_free(self):
        assert rules_fired(
            "index.scratch = []\n", "src/repro/evaluation/hot.py"
        ) == []


class TestExceptionHygiene:
    def test_bare_except_fires_anywhere(self):
        text = "try:\n    work()\nexcept:\n    pass\n"
        [finding] = analyze_source(text, path="src/repro/planner/x.py")
        assert finding.rule == "exception-hygiene"
        assert "bare" in finding.message

    def test_broad_swallow_fires(self):
        text = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert rules_fired(text, "src/repro/planner/x.py") == [
            "exception-hygiene"
        ]

    def test_broad_reraise_is_clean(self):
        text = (
            "try:\n    work()\nexcept Exception:\n    cleanup()\n    raise\n"
        )
        assert rules_fired(text, "src/repro/planner/x.py") == []

    def test_broad_logging_is_clean(self):
        text = (
            "try:\n    work()\n"
            "except Exception:\n    logger.exception('work failed')\n"
        )
        assert rules_fired(text, "src/repro/planner/x.py") == []

    def test_using_the_bound_error_is_clean_outside_loops(self):
        text = (
            "try:\n    work()\n"
            "except Exception as error:\n    reply = wrap(error)\n"
        )
        assert rules_fired(text, "src/repro/planner/x.py") == []

    def test_typed_excepts_are_untouched(self):
        text = "try:\n    work()\nexcept (OSError, ValueError):\n    pass\n"
        assert rules_fired(text, "src/repro/planner/x.py") == []

    def test_serving_loop_must_log_or_raise(self):
        text = textwrap.dedent(
            """
            def worker_main(connection):
                while True:
                    try:
                        step(connection)
                    except Exception as error:
                        connection.send_bytes(encode(error))
            """
        )
        [finding] = analyze_source(text, path=WORKER)
        assert finding.rule == "exception-hygiene"
        assert "worker_main" in finding.message

    def test_serving_loop_logging_is_clean(self):
        text = textwrap.dedent(
            """
            def worker_main(connection):
                while True:
                    try:
                        step(connection)
                    except Exception:
                        logger.exception("worker step failed")
            """
        )
        assert rules_fired(text, WORKER) == []

    def test_same_code_outside_the_loop_function_uses_the_lax_tier(self):
        text = textwrap.dedent(
            """
            def helper(connection):
                try:
                    step(connection)
                except Exception as error:
                    connection.send_bytes(encode(error))
            """
        )
        assert rules_fired(text, WORKER) == []


def api_config(**overrides):
    base = dict(
        public_modules=("repro/__init__.py", "repro/sub/__init__.py"),
        docs_api_tables=(),
    )
    base.update(overrides)
    return default_config().with_overrides(**base)


class TestApiSurface:
    def run(self, top, sub, config=None):
        return analyze_sources(
            {
                "src/repro/__init__.py": top,
                "src/repro/sub/__init__.py": sub,
            },
            rules=["api-surface"],
            config=config or api_config(),
        )

    GOOD_TOP = (
        "from repro.sub import thing\n\n__all__ = [\"thing\"]\n"
    )
    GOOD_SUB = "def thing():\n    pass\n\n__all__ = [\"thing\"]\n"

    def test_consistent_surface_is_clean(self):
        assert self.run(self.GOOD_TOP, self.GOOD_SUB) == []

    def test_stale_all_entry_fires(self):
        sub = "def thing():\n    pass\n\n__all__ = [\"thing\", \"ghost\"]\n"
        [finding] = self.run(self.GOOD_TOP, sub)
        assert finding.rule == "api-surface"
        assert "'ghost'" in finding.message

    def test_missing_all_declaration_fires(self):
        sub = "def thing():\n    pass\n"
        [finding] = self.run(self.GOOD_TOP, sub)
        assert "declares no __all__" in finding.message

    def test_import_without_export_fires(self):
        top = "from repro.sub import thing\n\n__all__ = []\n"
        [finding] = self.run(top, self.GOOD_SUB)
        assert "does not list it in __all__" in finding.message

    def test_reexport_missing_from_subpackage_all_fires(self):
        sub = "def thing():\n    pass\n\n__all__ = []\n"
        [finding] = self.run(self.GOOD_TOP, sub)
        assert "does not list in its own __all__" in finding.message

    def test_docs_table_naming_a_dead_api_fires(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "engine.md").write_text(
            "| old | new |\n| --- | --- |\n"
            "| `legacy(...)` | `repro.vanished` |\n",
            encoding="utf-8",
        )
        config = api_config(docs_api_tables=("docs/engine.md",))
        findings = self.run(self.GOOD_TOP, self.GOOD_SUB, config=config)
        assert sorted(f.message for f in findings) == [
            "docs table references 'legacy', which no public __all__ exports",
            "docs table references 'vanished', which no public __all__ "
            "exports",
        ]

    def test_docs_table_naming_live_api_is_clean(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "engine.md").write_text(
            "| old | new |\n| --- | --- |\n"
            "| `thing(...)` | `repro.thing` |\n",
            encoding="utf-8",
        )
        config = api_config(docs_api_tables=("docs/engine.md",))
        assert self.run(self.GOOD_TOP, self.GOOD_SUB, config=config) == []
