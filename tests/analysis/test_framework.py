"""Framework mechanics: suppressions, budget, baseline, determinism."""

import pytest

from repro.analysis import analyze_source, analyze_sources, default_config
from repro.analysis.framework import (
    Finding,
    build_project,
    load_baseline,
    run_rules,
    write_baseline,
)

# A one-line true positive for the immutability rule: `_bits` is an
# IdSet slot and this path is not its hydration module.
BAD = "value._bits = 1\n"
BAD_PATH = "src/repro/evaluation/example.py"


def findings_of(text, path=BAD_PATH, **kwargs):
    return analyze_source(text, path=path, **kwargs)


class TestFinding:
    def test_render_is_path_line_rule_message(self):
        finding = Finding("src/a.py", 3, "immutability", "boom")
        assert finding.render() == "src/a.py:3 immutability boom"

    def test_identity_drops_the_line_number(self):
        finding = Finding("src/a.py", 3, "immutability", "boom")
        assert finding.identity() == ("src/a.py", "immutability", "boom")

    def test_orders_by_path_then_line(self):
        unsorted = [
            Finding("src/b.py", 1, "r", "m"),
            Finding("src/a.py", 9, "r", "m"),
            Finding("src/a.py", 2, "r", "m"),
        ]
        ordered = sorted(unsorted)
        assert [(f.path, f.line) for f in ordered] == [
            ("src/a.py", 2), ("src/a.py", 9), ("src/b.py", 1)
        ]


class TestSuppressions:
    def test_unsuppressed_finding_fires(self):
        assert len(findings_of(BAD)) == 1

    def test_same_line_suppression_silences(self):
        text = "value._bits = 1  # repro: allow[immutability] -- fixture\n"
        assert findings_of(text) == []

    def test_line_above_suppression_silences(self):
        text = (
            "# repro: allow[immutability] -- fixture\n"
            "value._bits = 1\n"
        )
        assert findings_of(text) == []

    def test_two_lines_above_does_not_reach(self):
        text = (
            "# repro: allow[immutability] -- fixture\n"
            "\n"
            "value._bits = 1\n"
        )
        assert len(findings_of(text)) == 1

    def test_file_scope_suppression_silences_everywhere(self):
        text = (
            "# repro: allow-file[immutability] -- fixture\n"
            "value._bits = 1\n"
            "\n"
            "other._bits = 2\n"
        )
        assert findings_of(text) == []

    def test_malformed_comment_is_a_finding(self):
        text = "x = 1  # repro: allow immutability\n"
        [finding] = findings_of(text)
        assert finding.rule == "suppression"
        assert "malformed" in finding.message

    def test_missing_reason_is_a_finding(self):
        text = "value._bits = 1  # repro: allow[immutability]\n"
        rules = {f.rule for f in findings_of(text)}
        # The reason-less comment does not suppress, so both the meta
        # finding and the original one survive.
        assert rules == {"suppression", "immutability"}

    def test_unknown_rule_is_a_finding(self):
        text = "x = 1  # repro: allow[no-such-rule] -- why not\n"
        [finding] = findings_of(text)
        assert finding.rule == "suppression"
        assert "unknown rule" in finding.message

    def test_the_meta_rule_is_not_suppressible(self):
        text = "x = 1  # repro: allow[suppression] -- nice try\n"
        [finding] = findings_of(text)
        assert finding.rule == "suppression"
        assert "cannot itself be suppressed" in finding.message

    def test_docstring_mentioning_the_syntax_is_not_a_comment(self):
        text = '"""Docs show `# repro: allow[bogus]` examples."""\n'
        assert findings_of(text) == []

    def test_suppressing_a_different_rule_does_not_silence(self):
        text = (
            "value._bits = 1  # repro: allow[exception-hygiene] -- wrong\n"
        )
        [finding] = findings_of(text)
        assert finding.rule == "immutability"


class TestBudget:
    def test_over_budget_is_a_finding(self):
        config = default_config().with_overrides(max_suppressions=1)
        text = (
            "a._bits = 1  # repro: allow[immutability] -- one\n"
            "b._bits = 2  # repro: allow[immutability] -- two\n"
        )
        [finding] = findings_of(text, config=config)
        assert finding.rule == "suppression"
        assert "budget exceeded: 2 in force, budget is 1" in finding.message
        assert finding.line == 2  # anchored at the first one over budget

    def test_within_budget_is_clean(self):
        config = default_config().with_overrides(max_suppressions=2)
        text = (
            "a._bits = 1  # repro: allow[immutability] -- one\n"
            "b._bits = 2  # repro: allow[immutability] -- two\n"
        )
        assert findings_of(text, config=config) == []


class TestRunResult:
    def run(self, sources):
        project = build_project(sorted(sources.items()), default_config())
        return run_rules(project)

    def test_suppressed_findings_are_kept_aside(self):
        text = "value._bits = 1  # repro: allow[immutability] -- fixture\n"
        result = self.run({BAD_PATH: text})
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["immutability"]
        assert len(result.suppressions) == 1

    def test_exit_code_follows_error_findings(self):
        assert self.run({BAD_PATH: BAD}).exit_code == 1
        assert self.run({BAD_PATH: "x = 1\n"}).exit_code == 0

    def test_syntax_error_is_reported_as_a_finding(self):
        result = self.run({BAD_PATH: "def broken(:\n"})
        assert [f.rule for f in result.findings] == ["syntax"]
        assert result.exit_code == 1

    def test_findings_are_deterministically_sorted(self):
        sources = {
            "src/repro/zz.py": BAD,
            "src/repro/aa.py": BAD + "\n" + BAD,
        }
        result = self.run(sources)
        assert result.findings == sorted(result.findings)
        assert result.findings[0].path == "src/repro/aa.py"


class TestBaseline:
    def test_roundtrip_drops_known_findings(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        project = build_project([(BAD_PATH, BAD)], default_config())
        first = run_rules(project)
        assert first.exit_code == 1
        write_baseline(str(baseline_file), first.findings)

        known = load_baseline(str(baseline_file))
        assert known == {f.identity() for f in first.findings}

        again = run_rules(
            build_project([(BAD_PATH, BAD)], default_config()),
            baseline=known,
        )
        assert again.findings == []
        assert [f.rule for f in again.suppressed] == ["immutability"]

    def test_new_findings_still_fail_against_a_baseline(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        project = build_project([(BAD_PATH, BAD)], default_config())
        write_baseline(str(baseline_file), run_rules(project).findings)
        known = load_baseline(str(baseline_file))

        fresh = BAD + "other.universe = None\n"
        result = run_rules(
            build_project([(BAD_PATH, fresh)], default_config()),
            baseline=known,
        )
        assert result.exit_code == 1
        assert ["universe" in f.message for f in result.findings] == [True]


class TestEmbeddingApi:
    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            analyze_source("x = 1\n", rules=["no-such-rule"])

    def test_rule_selection_limits_the_run(self):
        text = BAD + "try:\n    pass\nexcept:\n    pass\n"
        only = analyze_sources({BAD_PATH: text}, rules=["immutability"])
        assert {f.rule for f in only} == {"immutability"}
        both = analyze_sources({BAD_PATH: text})
        assert {"immutability", "exception-hygiene"} <= {f.rule for f in both}
