"""The ``python -m repro.analysis`` command line, end to end."""

import json
from pathlib import Path

import pytest

from repro.analysis import main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

CLEAN = "def fine():\n    return 1\n"
DIRTY = "value._bits = 1\n"


def write_tree(tmp_path, files):
    for relative, text in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return tmp_path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"src/repro/clean.py": CLEAN})
        assert main([str(tree / "src")]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 finding(s)" in captured.err

    def test_finding_exits_one(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"src/repro/engine/dirty.py": DIRTY})
        assert main([str(tree / "src")]) == 1
        line = capsys.readouterr().out.strip()
        assert " immutability " in line
        assert line.startswith(str(tree / "src"))
        assert ":1 " in line

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        tree = write_tree(tmp_path, {"src/repro/clean.py": CLEAN})
        with pytest.raises(SystemExit) as excinfo:
            main([str(tree / "src"), "--rule", "no-such-rule"])
        assert excinfo.value.code == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nowhere")])
        assert excinfo.value.code == 2

    def test_missing_baseline_is_a_usage_error(self, tmp_path):
        tree = write_tree(tmp_path, {"src/repro/clean.py": CLEAN})
        with pytest.raises(SystemExit) as excinfo:
            main(
                [str(tree / "src"), "--baseline", str(tmp_path / "no.json")]
            )
        assert excinfo.value.code == 2


class TestOptions:
    def test_list_rules_names_every_checker(self, tmp_path, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "lock-discipline", "wire-exhaustive", "async-blocking",
            "immutability", "exception-hygiene", "api-surface",
            "suppression",
        ):
            assert f"{name}:" in out

    def test_rule_selection_limits_the_run(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"src/repro/engine/dirty.py": DIRTY})
        assert main([str(tree / "src"), "--rule", "exception-hygiene"]) == 0
        assert main([str(tree / "src"), "--rule", "immutability"]) == 1

    def test_output_is_deterministic(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path,
            {
                "src/repro/engine/bb.py": DIRTY,
                "src/repro/engine/aa.py": DIRTY + "other.universe = 1\n",
            },
        )
        main([str(tree / "src")])
        first = capsys.readouterr().out
        main([str(tree / "src")])
        second = capsys.readouterr().out
        assert first == second
        assert first.splitlines() == sorted(first.splitlines())
        assert len(first.splitlines()) == 3

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"src/repro/engine/dirty.py": DIRTY})
        assert main([str(tree / "src"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        [finding] = payload["findings"]
        assert finding["rule"] == "immutability"
        assert finding["line"] == 1
        assert finding["severity"] == "error"

    def test_baseline_roundtrip(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"src/repro/engine/dirty.py": DIRTY})
        baseline = tmp_path / "baseline.json"
        assert main([str(tree / "src"), "--write-baseline", str(baseline)]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        assert main([str(tree / "src"), "--baseline", str(baseline)]) == 0
        # A new finding is not covered by the old baseline.
        (tree / "src/repro/engine/dirty.py").write_text(
            DIRTY + "other.universe = 1\n", encoding="utf-8"
        )
        assert main([str(tree / "src"), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "universe" in out
        assert "_bits" not in out

    def test_show_suppressed_lists_the_silenced(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path,
            {
                "src/repro/engine/dirty.py": (
                    "value._bits = 1"
                    "  # repro: allow[immutability] -- fixture\n"
                )
            },
        )
        assert main([str(tree / "src"), "--show-suppressed"]) == 0
        captured = capsys.readouterr()
        assert "[suppressed]" in captured.out
        assert "1 suppression(s) in force" in captured.err

    def test_max_suppressions_override(self, tmp_path):
        tree = write_tree(
            tmp_path,
            {
                "src/repro/engine/dirty.py": (
                    "a._bits = 1  # repro: allow[immutability] -- one\n"
                    "b._bits = 2  # repro: allow[immutability] -- two\n"
                )
            },
        )
        assert main([str(tree / "src")]) == 0
        assert main([str(tree / "src"), "--max-suppressions", "1"]) == 1


class TestAgainstTheRealTree:
    """The acceptance gates: src is clean, and sabotage is caught."""

    def test_the_shipped_source_tree_is_clean(self, capsys):
        assert main([str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def copy_serving(self, tmp_path, mutate=None):
        files = {}
        for name in ("wire.py", "worker.py", "server.py", "client.py"):
            text = (SRC / "repro/serving" / name).read_text(encoding="utf-8")
            if mutate is not None:
                text = mutate(name, text)
            files[f"src/repro/serving/{name}"] = text
        return write_tree(tmp_path, files)

    def test_intact_serving_copy_is_clean(self, tmp_path):
        tree = self.copy_serving(tmp_path)
        assert main([str(tree / "src"), "--rule", "wire-exhaustive"]) == 0

    def test_deleting_a_worker_handler_arm_fails_lint(self, tmp_path, capsys):
        def strip_ping(name, text):
            if name == "worker.py":
                return text.replace("MSG_PING", "NOT_A_FRAME")
            return text

        tree = self.copy_serving(tmp_path, strip_ping)
        assert main([str(tree / "src"), "--rule", "wire-exhaustive"]) == 1
        out = capsys.readouterr().out
        assert "MSG_PING" in out
        assert "worker.py" in out

    def test_moving_a_shared_write_outside_its_lock_fails_lint(
        self, tmp_path, capsys
    ):
        engine = (SRC / "repro/engine/engine.py").read_text(encoding="utf-8")
        sabotaged = engine.replace("with self._store_lock:", "if True:")
        assert sabotaged != engine
        tree = write_tree(
            tmp_path, {"src/repro/engine/engine.py": sabotaged}
        )
        assert main([str(tree / "src"), "--rule", "lock-discipline"]) == 1
        out = capsys.readouterr().out
        assert "lock-discipline" in out
        assert "_store" in out
