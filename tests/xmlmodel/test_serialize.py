"""Unit tests for XML serialisation."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.xmlmodel.document import build_tree
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import escape_attribute, escape_text, serialize


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute_also_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(build_tree(("a",))) == "<a/>"

    def test_attributes_and_children(self):
        document = build_tree(("a", {"x": "1"}, [("b", ["hi"]), ("c",)]))
        assert serialize(document) == '<a x="1"><b>hi</b><c/></a>'

    def test_text_is_escaped(self):
        document = build_tree(("a", ["1 < 2 & 3"]))
        assert serialize(document) == "<a>1 &lt; 2 &amp; 3</a>"

    def test_comment_and_pi(self):
        document = parse_xml("<a><!--note--><?pi data?></a>")
        assert serialize(document) == "<a><!--note--><?pi data?></a>"

    def test_pretty_printing_indents(self):
        document = build_tree(("a", [("b", [("c",)])]))
        pretty = serialize(document, indent="  ")
        assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"

    def test_pretty_printing_preserves_mixed_content(self):
        document = build_tree(("a", [("b", ["hello"])]))
        pretty = serialize(document, indent="  ")
        assert "<b>hello</b>" in pretty

    def test_output_is_well_formed_for_elementtree(self):
        document = parse_xml(
            '<site a="1 &amp; 2"><x>text &lt;tag&gt;</x><y><z k="v"/></y></site>'
        )
        parsed = ElementTree.fromstring(serialize(document))
        assert parsed.tag == "site"
        assert parsed.attrib["a"] == "1 & 2"
        assert parsed.find("x").text == "text <tag>"

    def test_roundtrip_preserves_structure(self):
        source = '<a x="1"><b>text</b><c><d/></c><!--note--></a>'
        document = parse_xml(source)
        assert serialize(parse_xml(serialize(document))) == serialize(document)
