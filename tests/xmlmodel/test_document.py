"""Unit tests for Document, DocumentBuilder and build_tree."""

import pytest

from repro.xmlmodel.document import Document, DocumentBuilder, build_tree
from repro.xmlmodel.nodes import ElementNode, NodeType, RootNode


class TestDocumentBuilder:
    def test_basic_construction(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.add_element("b", {"x": "1"})
        builder.text("hello")
        builder.comment("note")
        builder.processing_instruction("pi", "data")
        builder.end_element()
        document = builder.finish()
        a = document.root.document_element()
        assert a.tag == "a"
        kinds = [child.node_type for child in a.children]
        assert kinds == [
            NodeType.ELEMENT,
            NodeType.TEXT,
            NodeType.COMMENT,
            NodeType.PROCESSING_INSTRUCTION,
        ]

    def test_unbalanced_end_raises(self):
        builder = DocumentBuilder()
        with pytest.raises(ValueError):
            builder.end_element()

    def test_finish_with_open_elements_raises(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        with pytest.raises(ValueError):
            builder.finish()

    def test_builder_unusable_after_finish(self):
        builder = DocumentBuilder()
        builder.add_element("a")
        builder.finish()
        with pytest.raises(ValueError):
            builder.add_element("b")

    def test_current_tracks_open_element(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.start_element("b")
        assert builder.current.tag == "b"
        builder.end_element()
        assert builder.current.tag == "a"


class TestDocument:
    def test_requires_root_node(self):
        with pytest.raises(TypeError):
            Document(ElementNode("a"))  # type: ignore[arg-type]

    def test_document_order_is_preorder(self):
        document = build_tree(("a", [("b", [("c",)]), ("d",)]))
        tags = [getattr(node, "tag", "#root") for node in document.nodes]
        assert tags == ["#root", "a", "b", "c", "d"]
        orders = [node.order for node in document.nodes]
        assert orders == sorted(orders)

    def test_attribute_order_follows_owner(self):
        document = build_tree(("a", {"x": "1", "y": "2"}, [("b",)]))
        a = document.root.document_element()
        b = a.children[0]
        assert all(a.order < attr.order < b.order for attr in a.attributes)

    def test_size_counts_attributes(self):
        document = build_tree(("a", {"x": "1"}, [("b",)]))
        # root + a + b + one attribute
        assert document.size == 4
        assert len(document) == 4

    def test_dom_contains_root_and_elements_only(self):
        document = build_tree(("a", [("b", ["text"])]))
        kinds = {node.node_type for node in document.dom()}
        assert kinds == {NodeType.ROOT, NodeType.ELEMENT}

    def test_elements_with_tag(self):
        document = build_tree(("a", [("b",), ("b",), ("c",)]))
        assert len(document.elements_with_tag("b")) == 2
        assert document.elements_with_tag("zzz") == []

    def test_elements_property(self):
        document = build_tree(("a", [("b", ["x"]), ("c",)]))
        assert [element.tag for element in document.elements] == ["a", "b", "c"]

    def test_iteration_yields_nodes(self):
        document = build_tree(("a",))
        assert list(iter(document)) == document.nodes


class TestBuildTree:
    def test_nested_spec(self):
        document = build_tree(("a", {"k": "v"}, [("b", ["hi"]), ("c", [("d",)])]))
        a = document.root.document_element()
        assert a.get_attribute("k") == "v"
        assert [child.tag for child in a.element_children()] == ["b", "c"]

    def test_string_spec_is_text(self):
        document = build_tree(("a", ["hello"]))
        assert document.root.string_value() == "hello"

    def test_invalid_spec_raises(self):
        with pytest.raises(TypeError):
            build_tree(42)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            build_tree(("a", object()))  # type: ignore[arg-type]
